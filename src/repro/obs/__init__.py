"""``repro.obs``: the unified observability layer.

Causal spans over the trace log (:mod:`repro.obs.spans`), the
instrumentation facade substrates are wired with
(:mod:`repro.obs.instrument`), request-scoped trace propagation and
deterministic sampling (:mod:`repro.obs.context`), windowed telemetry
on the virtual clock (:mod:`repro.obs.timeseries`), declarative SLOs
with burn-rate alerting (:mod:`repro.obs.slo`), and exporters — JSONL
traces, Prometheus-style metrics text, transparency and per-request
critical-path reports (:mod:`repro.obs.exporters`).

The paper's §IV-C requires that "all the active parts of the metaverse
(including code) should be transparent and understandable to any
platform member"; this package is how the reproduction meets that: every
substrate emits spans and metrics through one shared pipeline, every
request carries a deterministic trace id, platform guarantees are
machine-checked SLOs, and every export is deterministic for a seeded
run.
"""

from repro.obs.context import (
    REQUEST_ROOT_NAME,
    REQUEST_SOURCE,
    STAGE_PREFIX,
    RequestContext,
    RequestTraceSampler,
    SamplingPolicy,
    derive_trace_id,
    head_sampled,
    request_span_id,
)
from repro.obs.exporters import (
    REQUEST_STAGES,
    SpanNode,
    critical_path_report,
    escape_label_value,
    export_trace_jsonl,
    hot_handlers_report,
    latency_report,
    load_trace_jsonl,
    prometheus_text,
    request_breakdowns,
    span_forest,
    trace_to_jsonl,
    transparency_report,
)
from repro.obs.imbalance import ShardImbalance
from repro.obs.instrument import NULL_OBS, Instrumentation, NullInstrumentation
from repro.obs.shipcost import ShipCost
from repro.obs.slo import (
    DEFAULT_SLOS,
    AlertEvent,
    SLOEngine,
    SLOReport,
    SLOSpec,
    thresholds_for,
)
from repro.obs.spans import SPAN_KIND, Span, SpanContext, Tracer
from repro.obs.timeseries import WindowedTelemetry

__all__ = [
    "SPAN_KIND",
    "Span",
    "SpanContext",
    "Tracer",
    "ShardImbalance",
    "ShipCost",
    "Instrumentation",
    "NullInstrumentation",
    "NULL_OBS",
    "SpanNode",
    "span_forest",
    "trace_to_jsonl",
    "export_trace_jsonl",
    "load_trace_jsonl",
    "prometheus_text",
    "escape_label_value",
    "transparency_report",
    "latency_report",
    "hot_handlers_report",
    "request_breakdowns",
    "critical_path_report",
    "REQUEST_STAGES",
    "RequestContext",
    "RequestTraceSampler",
    "SamplingPolicy",
    "derive_trace_id",
    "head_sampled",
    "request_span_id",
    "REQUEST_SOURCE",
    "REQUEST_ROOT_NAME",
    "STAGE_PREFIX",
    "WindowedTelemetry",
    "SLOSpec",
    "SLOEngine",
    "SLOReport",
    "AlertEvent",
    "DEFAULT_SLOS",
    "thresholds_for",
]
