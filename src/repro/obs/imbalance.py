"""Shard-imbalance metric: max/mean shard wall time per phase.

At every epoch barrier the slowest shard sets the wall-clock, so the
number that matters for elastic sharding is not total time but *skew*:

    ``imbalance(phase) = max_s T(phase, s) / mean_s T(phase, s)``

where ``T(phase, s)`` is shard ``s``'s wall seconds in ``phase`` summed
over the run.  1.0 is a perfectly balanced phase; 2.0 means half the
cores idle at that phase's barrier.  The ``"epoch"`` row aggregates all
phases over the whole run — the figure the scaling suite's balance tier
gates (≤1.25x under the weighted plan at the 100k tier; multiple epochs
are summed because single-epoch shard timings of ~0.1s are too noisy to
gate).  The ``"final_epoch"`` row aggregates the *last recorded epoch*
only and is reported alongside to show that cost-weighted replanning has
converged after its first epoch of observed profile.

This is *observability only*: wall-clock measurements are collected
from worker results (``ShardEpochResult.phase_seconds``) and must never
flow into metrics, traces, or any replay-compared payload — callers
stash the report in non-compared fields (see ``LoadRunResult.imbalance``,
a ``field(compare=False)``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = ["ShardImbalance"]


class ShardImbalance:
    """Accumulates per-(phase, shard) wall seconds across epochs."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.epochs = 0
        self._phase_shard: Dict[str, List[float]] = {}
        self._final_epoch_totals: List[float] = [0.0] * n_shards

    def record_epoch(self, results: Iterable) -> None:
        """Fold one epoch's shard results (each with ``phase_seconds``)."""
        self.epochs += 1
        self._final_epoch_totals = [0.0] * self.n_shards
        for result in results:
            for phase, seconds in result.phase_seconds.items():
                row = self._phase_shard.get(phase)
                if row is None:
                    row = [0.0] * self.n_shards
                    self._phase_shard[phase] = row
                row[result.shard] += float(seconds)
                self._final_epoch_totals[result.shard] += float(seconds)

    def shard_seconds(self, phase: str) -> List[float]:
        """Per-shard wall seconds for ``phase`` (zeros if never seen)."""
        return list(self._phase_shard.get(phase, [0.0] * self.n_shards))

    def report(self) -> Dict[str, Dict[str, float]]:
        """Max/mean/imbalance per phase plus two aggregate rows:
        ``"epoch"`` (all phases, whole run) and ``"final_epoch"`` (all
        phases, last recorded epoch — the post-replan steady state).

        A phase whose mean is ~0 (never ran, or ran in microseconds)
        reports imbalance 1.0 — there is no barrier to wait at.
        """
        rows: Dict[str, Dict[str, float]] = {}
        totals = [0.0] * self.n_shards
        for phase in sorted(self._phase_shard):
            row = self._phase_shard[phase]
            for shard, seconds in enumerate(row):
                totals[shard] += seconds
            rows[phase] = self._row_stats(row)
        rows["epoch"] = self._row_stats(totals)
        rows["final_epoch"] = self._row_stats(self._final_epoch_totals)
        return rows

    @staticmethod
    def _row_stats(row: List[float]) -> Dict[str, float]:
        peak = max(row) if row else 0.0
        mean = (sum(row) / len(row)) if row else 0.0
        imbalance = (peak / mean) if mean > 1e-9 else 1.0
        return {
            "max_seconds": peak,
            "mean_seconds": mean,
            "imbalance": imbalance,
        }
