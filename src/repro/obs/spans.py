"""Causal spans over the structured trace log.

The paper's §IV-C transparency requirement ("all the active parts of the
metaverse (including code) should be transparent and understandable to
any platform member") needs more than flat event records: an auditor
following a DAO proposal must see the whole causal chain — voting →
treasury → ledger transaction → block inclusion — as one tree.  This
module layers OpenTelemetry-style spans on :class:`repro.sim.TraceLog`.

Determinism contract
--------------------
Span ids are derived from ``sha256(run_id : start_time : sequence)``
truncated to 16 hex characters.  The sequence is a per-:class:`Tracer`
counter and ``start_time`` is *simulated* time, so two runs of the same
seeded scenario produce byte-identical span ids — no wall clock, no
process state, no randomness.  (Wall-clock measurements belong to the
engine profiler, which is deliberately kept out of the trace log.)

A span is recorded as **one** trace record at the moment it ends
(``kind="span"``), carrying its id, parent id, trace (root) id, name,
start/end simulated times, status, and free-form attributes.  Tree
reconstruction therefore needs only the exported records — see
:func:`repro.obs.exporters.span_forest`.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.sim.tracing import TraceLog

__all__ = ["SpanContext", "Span", "Tracer", "SPAN_KIND"]

# The trace-record kind under which finished spans are emitted.
SPAN_KIND = "span"


def _derive_span_id(run_id: str, start_time: float, seq: int) -> str:
    digest = hashlib.sha256(
        f"{run_id}:{start_time!r}:{seq}".encode("utf-8")
    ).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class SpanContext:
    """Identity of one span within a trace tree.

    ``trace_id`` is the span id of the tree's root, so every span of one
    causal tree shares it and grouping exported records by tree is a
    single dict pass.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None


class Span:
    """One timed, attributed unit of work.

    Spans are context managers; entering pushes the span onto its
    tracer's stack (so nested work becomes children) and exiting emits
    the span record.  An exception escaping the body marks the span
    ``status="error"`` and re-raises.
    """

    __slots__ = (
        "context",
        "source",
        "name",
        "start_time",
        "end_time",
        "status",
        "attributes",
        "_tracer",
        "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        context: SpanContext,
        source: str,
        name: str,
        start_time: float,
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.context = context
        self.source = source
        self.name = name
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.status = "ok"
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self._tracer = tracer
        self._ended = False

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the span."""
        self.attributes[key] = value

    def set_status(self, status: str) -> None:
        self.status = status

    # ------------------------------------------------------------------
    # Context-manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error_type", exc_type.__name__)
        self._tracer._pop(self)
        return False  # never swallow

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Span({self.source}/{self.name}, id={self.context.span_id}, "
            f"parent={self.context.parent_id})"
        )


class Tracer:
    """Creates spans with deterministic ids and parent/child linkage.

    The tracer keeps a stack of active spans; a span opened while
    another is active becomes its child.  Spans opened with no active
    parent are roots — each root is one causal tree in the export.

    Parameters
    ----------
    trace:
        The :class:`TraceLog` finished spans are emitted into.
    clock:
        Zero-argument callable returning current *simulated* time; used
        when a span is opened or closed without an explicit time.
    run_id:
        Namespace mixed into span ids so concurrent platforms federated
        over one log stay distinguishable.  Must itself be derived from
        the seed (never from wall clock) to preserve determinism.
    """

    def __init__(
        self,
        trace: TraceLog,
        clock: Optional[Callable[[], float]] = None,
        run_id: str = "run",
    ):
        self.trace = trace
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._run_id = str(run_id)
        self._seq = itertools.count()
        self._stack: List[Span] = []
        self.started_count = 0
        self.finished_count = 0

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(
        self,
        source: str,
        name: str,
        time: Optional[float] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span (use as a context manager).

        ``time`` overrides the clock for the start timestamp — substrate
        methods that receive an explicit simulated time should pass it.
        """
        start = float(time) if time is not None else float(self._clock())
        span_id = _derive_span_id(self._run_id, start, next(self._seq))
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            context = SpanContext(
                trace_id=parent.context.trace_id,
                span_id=span_id,
                parent_id=parent.context.span_id,
            )
        else:
            context = SpanContext(trace_id=span_id, span_id=span_id)
        self.started_count += 1
        return Span(self, context, source, name, start, attributes)

    def span_in_trace(
        self,
        source: str,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str] = None,
        time: Optional[float] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span with a caller-supplied identity.

        The request-tracing layer derives span/trace ids as pure
        functions of the request's trace id (see
        :mod:`repro.obs.context`), so the exported forest is invariant
        across reruns and worker counts; this constructor accepts those
        forced ids instead of drawing from the tracer's sequence.  The
        span still participates in the stack, so substrate spans opened
        inside it become its children.
        """
        start = float(time) if time is not None else float(self._clock())
        context = SpanContext(
            trace_id=trace_id, span_id=span_id, parent_id=parent_id
        )
        self.started_count += 1
        return Span(self, context, source, name, start, attributes)

    def emit_merged(
        self,
        payloads: List[Dict[str, Any]],
        default_source: str = "parallel.worker",
    ) -> int:
        """Adopt spans recorded outside this tracer (e.g. in workers).

        Worker processes cannot share the parent's id counter, so they
        report finished spans as plain payload dicts (``source``,
        ``name``, ``start``, ``end``, ``status``, ``attributes``).  This
        method assigns each one a deterministic id from *this* tracer's
        sequence and emits it — parented under the currently active span
        if any.  A payload carrying its own ``trace_id`` (a request- or
        shard-scoped id derived as a pure function of the seed) keeps it
        verbatim, so request identity survives the worker merge.
        Callers must present payloads in a deterministic order (the
        parallel layer's ordered reduction guarantees shard order),
        which makes merged ids independent of scheduling and worker
        count.  Returns the number of spans emitted.
        """
        parent = self._stack[-1] if self._stack else None
        for payload in payloads:
            start = float(payload["start"])
            span_id = _derive_span_id(self._run_id, start, next(self._seq))
            end = float(payload.get("end", start))
            own_trace_id = payload.get("trace_id")
            if own_trace_id is not None:
                trace_id = str(own_trace_id)
            elif parent is not None:
                trace_id = parent.context.trace_id
            else:
                trace_id = span_id
            self.started_count += 1
            self.finished_count += 1
            self.trace.emit(
                start,
                str(payload.get("source", default_source)),
                SPAN_KIND,
                span_id=span_id,
                parent_id=parent.context.span_id if parent else None,
                trace_id=trace_id,
                name=str(payload.get("name", "merged")),
                start=start,
                end=max(end, start),
                status=str(payload.get("status", "ok")),
                attributes=dict(payload.get("attributes", {})),
            )
        return len(payloads)

    @property
    def current(self) -> Optional[Span]:
        """The innermost active span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def current_span_id(self) -> Optional[str]:
        return self._stack[-1].context.span_id if self._stack else None

    # ------------------------------------------------------------------
    # Stack management (called by Span.__enter__/__exit__)
    # ------------------------------------------------------------------
    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (generators, exceptions): unwind to
        # the span being closed rather than corrupting the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._emit(span)

    def _emit(self, span: Span) -> None:
        if span._ended:
            return
        span._ended = True
        span.end_time = float(self._clock())
        if span.end_time < span.start_time:
            span.end_time = span.start_time
        self.finished_count += 1
        self.trace.emit(
            span.start_time,
            span.source,
            SPAN_KIND,
            span_id=span.context.span_id,
            parent_id=span.context.parent_id,
            trace_id=span.context.trace_id,
            name=span.name,
            start=span.start_time,
            end=span.end_time,
            status=span.status,
            attributes=dict(span.attributes),
        )
