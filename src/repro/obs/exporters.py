"""Trace and metrics exporters: JSONL, Prometheus text, and reports.

Three consumers, three formats:

* **JSONL traces** — one JSON object per trace record, keys sorted, so a
  seeded scenario exports byte-identical bytes on every run (the
  ``make obs-check`` gate relies on this).  :func:`load_trace_jsonl`
  round-trips the export and :func:`span_forest` rebuilds the causal
  span trees from it.
* **Prometheus-style text** — :func:`prometheus_text` renders the
  shared :class:`MetricsRegistry` in the exposition format scrapers
  expect (counters as ``_total``, histogram summaries as quantiles).
* **Transparency report** — :func:`transparency_report` produces the
  per-module activity table the paper's §IV-C transparency requirement
  asks for, on the same :class:`~repro.analysis.tables.ResultTable`
  machinery the experiment harness prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.tables import ResultTable
from repro.obs.context import REQUEST_ROOT_NAME, REQUEST_SOURCE, STAGE_PREFIX
from repro.obs.spans import SPAN_KIND
from repro.sim.metrics import MetricsRegistry
from repro.sim.tracing import TraceLog, TraceRecord

__all__ = [
    "trace_to_jsonl",
    "export_trace_jsonl",
    "load_trace_jsonl",
    "SpanNode",
    "span_forest",
    "prometheus_text",
    "escape_label_value",
    "transparency_report",
    "latency_report",
    "request_breakdowns",
    "critical_path_report",
    "hot_handlers_report",
]


# ----------------------------------------------------------------------
# JSONL traces
# ----------------------------------------------------------------------
def _record_to_dict(record: TraceRecord) -> Dict[str, Any]:
    return {
        "time": record.time,
        "source": record.source,
        "kind": record.kind,
        "payload": record.payload,
    }


def trace_to_jsonl(trace: Union[TraceLog, Iterable[TraceRecord]]) -> str:
    """Serialise every record as one sorted-key JSON line.

    Payload values must be JSON-serialisable primitives/containers
    (which is what every built-in instrumentation point emits);
    anything else is stringified via ``default=str`` as a last resort.
    """
    lines = [
        json.dumps(_record_to_dict(r), sort_keys=True, default=str)
        for r in trace
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def export_trace_jsonl(
    trace: Union[TraceLog, Iterable[TraceRecord]], path: Union[str, Path]
) -> int:
    """Write the JSONL export to ``path``; returns the record count."""
    text = trace_to_jsonl(trace)
    Path(path).write_text(text)
    return 0 if not text else text.count("\n")


def load_trace_jsonl(
    source: Union[str, Path, Iterable[str]]
) -> List[TraceRecord]:
    """Parse a JSONL export (a path, the text, or lines) back into
    :class:`TraceRecord` objects."""
    if isinstance(source, Path):
        lines: Iterable[str] = source.read_text().splitlines()
    elif isinstance(source, str):
        lines = source.splitlines()
    else:
        lines = source
    records = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        records.append(
            TraceRecord(
                time=float(obj["time"]),
                source=str(obj["source"]),
                kind=str(obj["kind"]),
                payload=dict(obj.get("payload", {})),
            )
        )
    return records


# ----------------------------------------------------------------------
# Span-tree reconstruction
# ----------------------------------------------------------------------
@dataclass
class SpanNode:
    """One reconstructed span with its children and attached events."""

    span_id: str
    parent_id: Optional[str]
    trace_id: str
    source: str
    name: str
    start: float
    end: float
    status: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)
    events: List[TraceRecord] = field(default_factory=list)

    def walk(self) -> Iterable["SpanNode"]:
        """Yield this node and every descendant (pre-order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def size(self) -> int:
        return sum(1 for _ in self.walk())


def span_forest(
    records: Iterable[TraceRecord],
) -> Tuple[List[SpanNode], List[SpanNode]]:
    """Rebuild causal trees from exported records.

    Returns ``(roots, orphans)``: roots are spans without a parent;
    orphans claim a parent id that is absent from the record set (a
    healthy export has none — the span-integrity tests assert this).
    Children keep emit order, which equals causal completion order.
    Non-span records carrying a ``span_id`` payload key are attached to
    that span's ``events``.
    """
    nodes: Dict[str, SpanNode] = {}
    span_records: List[TraceRecord] = []
    event_records: List[TraceRecord] = []
    for record in records:
        if record.kind == SPAN_KIND and "span_id" in record.payload:
            span_records.append(record)
        elif "span_id" in record.payload:
            event_records.append(record)
    for record in span_records:
        payload = record.payload
        node = SpanNode(
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            trace_id=str(payload.get("trace_id", payload["span_id"])),
            source=record.source,
            name=str(payload.get("name", "")),
            start=float(payload.get("start", record.time)),
            end=float(payload.get("end", record.time)),
            status=str(payload.get("status", "ok")),
            attributes=dict(payload.get("attributes", {})),
        )
        nodes[node.span_id] = node
    roots: List[SpanNode] = []
    orphans: List[SpanNode] = []
    for record in span_records:  # preserve emit order deterministically
        node = nodes[str(record.payload["span_id"])]
        if node.parent_id is None:
            roots.append(node)
        elif node.parent_id in nodes:
            nodes[node.parent_id].children.append(node)
        else:
            orphans.append(node)
    for record in event_records:
        owner = nodes.get(str(record.payload.get("span_id")))
        if owner is not None:
            owner.events.append(record)
    return roots, orphans


# ----------------------------------------------------------------------
# Prometheus-style text metrics
# ----------------------------------------------------------------------
def _prom_name(name: str, prefix: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    return f"{prefix}_{cleaned}" if prefix else cleaned


def escape_label_value(value: Any) -> str:
    """Escape one label value per the Prometheus exposition format.

    Backslash, double quote, and newline are the three characters the
    format requires escaped inside a quoted label value; raw
    interpolation of any of them produces unparseable exposition text.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: Optional[Dict[str, Any]]) -> str:
    """``{k="v",...}`` with escaped values, keys sorted; "" when empty."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def prometheus_text(
    metrics: MetricsRegistry,
    prefix: str = "repro",
    labels: Optional[Dict[str, Any]] = None,
) -> str:
    """Render the registry in the Prometheus exposition text format.

    Counters gain the conventional ``_total`` suffix; histograms render
    as summaries (count, sum, and p50/p95 quantile gauges).  Output is
    sorted by metric name, so it is deterministic for a seeded run.
    ``labels`` (e.g. ``{"run": "serve-42"}``) are attached to every
    sample with values escaped per the exposition format.
    """
    base = _render_labels(labels)
    lines: List[str] = []
    for name, value in metrics.counters().items():
        prom = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom}{base} {value:g}")
    for name, value in metrics.gauges().items():
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom}{base} {value:g}")
    for name, summ in metrics.histograms().items():
        prom = _prom_name(name, prefix)
        quant_50 = _render_labels(dict(labels or {}, quantile="0.5"))
        quant_95 = _render_labels(dict(labels or {}, quantile="0.95"))
        lines.append(f"# TYPE {prom} summary")
        lines.append(f'{prom}{quant_50} {summ["p50"]:g}')
        lines.append(f'{prom}{quant_95} {summ["p95"]:g}')
        lines.append(f"{prom}_count{base} {summ['count']:g}")
        lines.append(f"{prom}_sum{base} {summ['mean'] * summ['count']:g}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Transparency report
# ----------------------------------------------------------------------
def transparency_report(
    trace: Union[TraceLog, Iterable[TraceRecord]],
    metrics: Optional[MetricsRegistry] = None,
) -> ResultTable:
    """Per-module activity table: the §IV-C "understandable to any
    platform member" view of what every substrate did.

    One row per trace source: record count, distinct kinds, span count,
    error-span count, and the simulated-time window of activity.  When
    ``metrics`` is given, the module's counter total (counters whose
    name starts with ``source.``) is joined in.
    """
    per_source: Dict[str, Dict[str, Any]] = {}
    for record in trace:
        row = per_source.setdefault(
            record.source,
            {
                "records": 0,
                "kinds": set(),
                "spans": 0,
                "errors": 0,
                "first": record.time,
                "last": record.time,
            },
        )
        row["records"] += 1
        row["kinds"].add(record.kind)
        row["first"] = min(row["first"], record.time)
        row["last"] = max(row["last"], record.time)
        if record.kind == SPAN_KIND:
            row["spans"] += 1
            if record.payload.get("status") != "ok":
                row["errors"] += 1

    counter_totals: Dict[str, float] = {}
    if metrics is not None:
        for name, value in metrics.counters().items():
            module = name.split(".", 1)[0]
            counter_totals[module] = counter_totals.get(module, 0.0) + value

    table = ResultTable(
        "transparency report (per-module activity)",
        columns=[
            "module",
            "records",
            "kinds",
            "spans",
            "error_spans",
            "counter_total",
            "first_time",
            "last_time",
        ],
    )
    for source in sorted(per_source):
        row = per_source[source]
        table.add_row(
            module=source,
            records=row["records"],
            kinds=len(row["kinds"]),
            spans=row["spans"],
            error_spans=row["errors"],
            counter_total=counter_totals.get(source.split(".", 1)[0], 0.0),
            first_time=row["first"],
            last_time=row["last"],
        )
    return table


def latency_report(
    metrics: MetricsRegistry, prefix: str = "serving.latency_ms"
) -> ResultTable:
    """Per-endpoint latency table from the serving gateway's histograms.

    Summarises every ``<prefix>.<endpoint>`` histogram in the registry
    (simulated-time milliseconds for the serving tier, so the table is
    deterministic for a seeded run).  Uses :meth:`peek_histogram` —
    reporting never grows the registry it is summarising.
    """
    table = ResultTable(
        f"latency by endpoint ({prefix})",
        columns=["endpoint", "count", "mean_ms", "p50_ms", "p99_ms", "max_ms"],
    )
    dotted = prefix + "."
    for name in sorted(metrics.histograms()):
        if not name.startswith(dotted):
            continue
        histogram = metrics.peek_histogram(name)
        if histogram is None or histogram.count == 0:
            continue
        table.add_row(
            endpoint=name[len(dotted):],
            count=histogram.count,
            mean_ms=histogram.mean,
            p50_ms=histogram.percentile(50.0),
            p99_ms=histogram.percentile(99.0),
            max_ms=histogram.maximum,
        )
    return table


# ----------------------------------------------------------------------
# Per-request critical paths
# ----------------------------------------------------------------------
#: The named stages a request's latency decomposes into (fixed column
#: order for the report table).
REQUEST_STAGES = ("validation", "cache", "admission", "queue", "substrate")


def request_breakdowns(
    records: Union[TraceLog, Iterable[TraceRecord]],
) -> List[Dict[str, Any]]:
    """Stage-by-stage latency attribution for every sampled request.

    Walks the exported span forest, takes each ``request`` root (see
    :mod:`repro.obs.context`), and sums its direct ``stage.*`` children
    into named buckets.  ``coverage`` is attributed-over-total latency —
    the gateway's decompositions cover the full latency by construction,
    so the slo-check gate asserts coverage ≥ 0.95 for every request.
    Results are sorted by ``(start, trace_id)`` — deterministic for a
    seeded run.
    """
    roots, _orphans = span_forest(records)
    out: List[Dict[str, Any]] = []
    for root in roots:
        if root.source != REQUEST_SOURCE or root.name != REQUEST_ROOT_NAME:
            continue
        latency_ms = (root.end - root.start) * 1e3
        stages_ms: Dict[str, float] = {}
        for child in root.children:
            if not child.name.startswith(STAGE_PREFIX):
                continue
            stage = child.name[len(STAGE_PREFIX):]
            stages_ms[stage] = (
                stages_ms.get(stage, 0.0) + (child.end - child.start) * 1e3
            )
        attributed_ms = sum(stages_ms.values())
        out.append({
            "trace_id": root.trace_id,
            "endpoint": root.attributes.get("endpoint", ""),
            "status": int(root.attributes.get("http_status", 0)),
            "kept_by": root.attributes.get("kept_by", ""),
            "cached": bool(root.attributes.get("cached", False)),
            "start": root.start,
            "latency_ms": latency_ms,
            "stages_ms": stages_ms,
            "attributed_ms": attributed_ms,
            "coverage": (
                attributed_ms / latency_ms if latency_ms > 0 else 1.0
            ),
        })
    out.sort(key=lambda row: (row["start"], row["trace_id"]))
    return out


def critical_path_report(
    records: Union[TraceLog, Iterable[TraceRecord]],
    top_n: Optional[int] = None,
) -> ResultTable:
    """Per-request critical-path table from an exported trace.

    One row per sampled request — where its latency went, stage by
    stage.  ``top_n`` keeps only the slowest ``n`` requests (ties broken
    by trace id), which is the operator's "show me the worst offenders"
    view.
    """
    breakdowns = request_breakdowns(records)
    if top_n is not None:
        breakdowns = sorted(
            breakdowns, key=lambda r: (-r["latency_ms"], r["trace_id"])
        )[:top_n]
    table = ResultTable(
        "per-request critical paths (ms)",
        columns=(
            ["trace_id", "endpoint", "status", "kept_by", "latency_ms"]
            + [f"{stage}_ms" for stage in REQUEST_STAGES]
            + ["coverage"]
        ),
    )
    for row in breakdowns:
        cells = {
            "trace_id": row["trace_id"],
            "endpoint": row["endpoint"],
            "status": row["status"],
            "kept_by": row["kept_by"],
            "latency_ms": row["latency_ms"],
            "coverage": row["coverage"],
        }
        for stage in REQUEST_STAGES:
            cells[f"{stage}_ms"] = row["stages_ms"].get(stage, 0.0)
        table.add_row(**cells)
    return table


def hot_handlers_report(simulator, top_n: int = 10) -> ResultTable:
    """Top-N hottest event handlers from a profiling-enabled simulator.

    Wall-clock measurements — useful for finding hot paths, excluded
    from deterministic exports by construction (they never enter the
    trace log or the shared metrics registry).
    """
    table = ResultTable(
        f"hottest handlers (top {top_n}, wall time)",
        columns=["handler", "calls", "total_ms", "mean_us", "p95_us", "max_us"],
    )
    for entry in simulator.hottest_handlers(top_n):
        table.add_row(
            handler=entry["name"],
            calls=entry["count"],
            total_ms=entry["total_seconds"] * 1e3,
            mean_us=entry["mean_seconds"] * 1e6,
            p95_us=entry["p95_seconds"] * 1e6,
            max_us=entry["max_seconds"] * 1e6,
        )
    return table
