"""Request-scoped trace propagation and deterministic sampling.

The serving tier answers the paper's per-decision accountability bar
(§IV-C) at request granularity: every arrival carries a
:class:`RequestContext` whose ``trace_id`` is a **pure function of
(seed, user, arrival seq)** — the traffic generator derives it, the
gateway threads it through the middleware chain and the event loop's
queue/service phases, and the sampled requests are exported as span
trees that :func:`repro.obs.exporters.span_forest` reconstructs into a
per-request critical path (queue wait vs cache vs admission vs
substrate time).

Sampling is split the way production tracers split it:

* **Head sampling** — :func:`head_sampled` hashes nothing at decision
  time: the trace id *is* the hash, so the decision is a pure function
  of the trace id (and therefore identical across reruns, worker
  counts, and even independent consumers of the exported ids).
* **Tail-based keep rules** — shed (429) and error (500) responses are
  always kept, and the top-``k`` highest-latency requests of the run
  are kept regardless of the head decision (a bounded min-heap; emitted
  deterministically at :meth:`RequestTraceSampler.finalize`).

Span ids inside a request tree are pure functions of the trace id
(``sha256(trace_id : part)``), so two runs — or a run and its
``workers=2`` twin — export byte-identical request forests.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.spans import SPAN_KIND
from repro.sim.tracing import TraceLog

__all__ = [
    "RequestContext",
    "SamplingPolicy",
    "RequestTraceSampler",
    "derive_trace_id",
    "request_span_id",
    "head_sampled",
    "REQUEST_SOURCE",
    "REQUEST_ROOT_NAME",
    "STAGE_PREFIX",
]

#: Source tag on every request-scoped span record.
REQUEST_SOURCE = "serving.request"
#: Root span name of a request tree (the critical-path reports key on it).
REQUEST_ROOT_NAME = "request"
#: Stage spans are named ``stage.<name>`` under the request root.
STAGE_PREFIX = "stage."

#: Hex digits kept from the sha256 — matches the tracer's span-id width.
_ID_HEX = 16
#: Hex digits folded into the head-sampling bucket (52 bits: exact as a
#: float, so the decision threshold is platform-independent).
_HEAD_HEX = 13


def derive_trace_id(*parts: Any) -> str:
    """A 16-hex trace id from any tuple of primitive parts.

    Pure function of its inputs — the serving tier uses
    ``(seed, user, seq)``, the parallel workers ``(seed, shard, epoch)``
    — so the id survives reruns, resharding, and worker merges.
    """
    text = "trace:" + ":".join(repr(part) for part in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_ID_HEX]


def request_span_id(trace_id: str, part: str) -> str:
    """The deterministic span id for one named part of a request tree."""
    digest = hashlib.sha256(f"{trace_id}:{part}".encode("utf-8")).hexdigest()
    return digest[:_ID_HEX]


def head_sampled(trace_id: str, rate: float) -> bool:
    """The head-sampling decision: a pure function of the trace id.

    The first 52 bits of the id are mapped to ``[0, 1)``; ids below
    ``rate`` are sampled.  No RNG stream is consumed, so sampling can
    never perturb any other seeded draw.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    bucket = int(trace_id[:_HEAD_HEX], 16) / float(16 ** _HEAD_HEX)
    return bucket < rate


@dataclass
class RequestContext:
    """Per-request causal identity, threaded arrival → response.

    Mutable on purpose: the gateway stamps the phase boundaries
    (``service_start``) as the request crosses them, and the sampler
    reads them back when it assembles the stage spans.
    """

    __slots__ = (
        "trace_id",
        "user",
        "seq",
        "sampled",
        "arrived",
        "service_start",
        "substrate_traced",
    )

    trace_id: str
    user: int
    seq: int
    sampled: bool
    arrived: float
    service_start: float
    substrate_traced: bool

    @classmethod
    def for_request(
        cls, seed: int, user: int, seq: int, head_rate: float
    ) -> "RequestContext":
        trace_id = derive_trace_id(seed, user, seq)
        return cls(
            trace_id=trace_id,
            user=user,
            seq=seq,
            sampled=head_sampled(trace_id, head_rate),
            arrived=0.0,
            service_start=0.0,
            substrate_traced=False,
        )


@dataclass(frozen=True)
class SamplingPolicy:
    """How the serving tier decides which request traces to keep.

    ``head_rate`` drives the pure-function head decision (default 1%,
    the production-style rate the observability-overhead gate in
    ``benchmarks/regression.py`` budgets for); ``keep_statuses`` are
    the tail rules that always keep a trace (429/500 by default —
    exactly the responses an operator pages on); ``top_k_latency``
    keeps the slowest ``k`` requests of the run even when neither rule
    hit.
    """

    head_rate: float = 0.01
    keep_statuses: Tuple[int, ...] = (429, 500)
    top_k_latency: int = 25

    def __post_init__(self) -> None:
        if not 0.0 <= self.head_rate <= 1.0:
            raise ValueError(
                f"head_rate must be in [0, 1], got {self.head_rate}"
            )
        if self.top_k_latency < 0:
            raise ValueError(
                f"top_k_latency must be >= 0, got {self.top_k_latency}"
            )


# One buffered tail candidate: orderable by (latency, trace_id) so heap
# ties never compare payload dicts.
_TailEntry = Tuple[float, str, Tuple]


class RequestTraceSampler:
    """Emits sampled request trees into a :class:`TraceLog`.

    Head-kept and status-kept traces are emitted at response time (the
    deterministic completion order of the virtual clock); top-latency
    tail keeps are buffered in a bounded min-heap and emitted at
    :meth:`finalize` in ``(-latency, trace_id)`` order — byte-identical
    across reruns.
    """

    def __init__(
        self, trace: TraceLog, policy: Optional[SamplingPolicy] = None
    ):
        self.trace = trace
        self.policy = policy if policy is not None else SamplingPolicy()
        self._keep_statuses = frozenset(self.policy.keep_statuses)
        # Read once per response — skip the frozen-dataclass attribute
        # walk on the hot drop path.
        self._top_k = self.policy.top_k_latency
        self._tail_heap: List[_TailEntry] = []
        self._emitted_ids: set = set()
        self.kept_head = 0
        self.kept_status = 0
        self.kept_tail = 0
        self.seen = 0

    # ------------------------------------------------------------------
    # Per-response hook (called by the gateway)
    # ------------------------------------------------------------------
    def context(self, seed: int, user: int, seq: int) -> RequestContext:
        """A request context carrying this policy's head decision."""
        return RequestContext.for_request(
            seed, user, seq, self.policy.head_rate
        )

    def on_response(
        self,
        ctx: RequestContext,
        endpoint: str,
        status: int,
        arrived: float,
        completed: float,
        stages: Optional[Tuple[Tuple[str, float, float], ...]],
        cached: bool = False,
    ) -> None:
        """Decide keep/drop for one finished request.

        ``stages`` is the gateway's critical-path decomposition:
        ``(name, start, end)`` triples covering the request's latency —
        or ``None``, the served-path marker, in which case the standard
        admission/queue/substrate decomposition is derived from the
        context at emit time (and only for kept traces, keeping the
        per-response drop path allocation-free).
        """
        self.seen += 1
        if ctx.sampled:
            self.kept_head += 1
            self._emit_tree(
                ctx, endpoint, status, arrived, completed, stages, cached,
                kept_by="head",
            )
            return
        if status in self._keep_statuses:
            self.kept_status += 1
            self._emit_tree(
                ctx, endpoint, status, arrived, completed, stages, cached,
                kept_by="status",
            )
            return
        k = self._top_k
        if k <= 0:
            return
        heap = self._tail_heap
        latency = completed - arrived
        if len(heap) >= k:
            # Fast drop: almost every response loses to the current
            # top-k floor — decide before building the payload tuple.
            floor = heap[0]
            floor_latency = floor[0]
            if latency < floor_latency or (
                latency == floor_latency and ctx.trace_id <= floor[1]
            ):
                return
            heapq.heapreplace(heap, (
                latency,
                ctx.trace_id,
                (ctx, endpoint, status, arrived, completed, stages, cached),
            ))
        else:
            heapq.heappush(heap, (
                latency,
                ctx.trace_id,
                (ctx, endpoint, status, arrived, completed, stages, cached),
            ))

    def finalize(self) -> int:
        """Emit the buffered top-latency traces; returns how many.

        Ordered by descending latency (trace id breaks exact ties), so
        the emission order — and therefore the exported bytes — is a
        deterministic function of the run.
        """
        ordered = sorted(
            self._tail_heap, key=lambda e: (-e[0], e[1])
        )
        self._tail_heap = []
        for _latency, _tid, payload in ordered:
            self.kept_tail += 1
            self._emit_tree(*payload, kept_by="tail_latency")
        return self.kept_tail

    @property
    def kept(self) -> int:
        return self.kept_head + self.kept_status + self.kept_tail

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit_tree(
        self,
        ctx: RequestContext,
        endpoint: str,
        status: int,
        arrived: float,
        completed: float,
        stages: Optional[Tuple[Tuple[str, float, float], ...]],
        cached: bool,
        kept_by: str,
    ) -> None:
        """One request root plus its stage children, ids pure functions
        of the trace id."""
        if stages is None:  # the served-path decomposition, derived late
            service_start = ctx.service_start
            stages = (
                ("admission", arrived, arrived),
                ("queue", arrived, service_start),
                ("substrate", service_start, completed),
            )
        trace_id = ctx.trace_id
        if trace_id in self._emitted_ids:  # defensive: never double-emit
            return
        self._emitted_ids.add(trace_id)
        root_id = request_span_id(trace_id, "root")
        self.trace.emit(
            arrived,
            REQUEST_SOURCE,
            SPAN_KIND,
            span_id=root_id,
            parent_id=None,
            trace_id=trace_id,
            name=REQUEST_ROOT_NAME,
            start=arrived,
            end=completed,
            status="error" if status >= 500 else "ok",
            attributes={
                "endpoint": endpoint,
                "http_status": int(status),
                "cached": bool(cached),
                "user": ctx.user,
                "seq": ctx.seq,
                "latency_ms": (completed - arrived) * 1e3,
                "kept_by": kept_by,
            },
        )
        for name, start, end in stages:
            if name == "substrate" and ctx.substrate_traced:
                # The live wrapper span already carries this stage (and
                # parents the substrate's own spans under it).
                continue
            self.trace.emit(
                start,
                REQUEST_SOURCE,
                SPAN_KIND,
                span_id=request_span_id(trace_id, f"stage:{name}"),
                parent_id=root_id,
                trace_id=trace_id,
                name=f"{STAGE_PREFIX}{name}",
                start=start,
                end=max(end, start),
                status="ok",
                attributes={},
            )
