"""Windowed telemetry: metrics-over-time on the virtual clock.

End-of-run aggregates (PR 6's ``ServingRunResult``) say *whether* the
tier kept up; operators need to know *when* it did not.  This module
rolls every response into fixed-width virtual-clock windows — per
endpoint and platform-wide — so p50/p99, goodput, shed rate, and queue
depth become a queryable, exportable time series.

Design points:

* **Virtual clock only.**  A response lands in the window of its
  *completion* time; queue-depth samples in the window of the
  observation.  No wall clock, so the exported series is byte-identical
  for a seeded run — the ``make slo-check`` gate compares the JSON
  export bytewise across reruns.
* **Sketch-backed percentiles.**  Each (window, scope) keeps a bounded
  :class:`~repro.sim.metrics.SketchHistogram` (or the exact backend on
  request), so memory is O(windows × endpoints × compression) no matter
  how heavy the traffic.
* **Exact threshold counts.**  SLO evaluation needs "how many requests
  exceeded X ms" *exactly* (a sketch would approximate it); declared
  ``latency_thresholds_ms`` are counted per window at observe time.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.metrics import Histogram, SketchHistogram

__all__ = ["WindowedTelemetry", "WindowScope"]

#: Status-code → snapshot field mapping (HTTP-style, see serving.schemas).
_STATUS_FIELDS = {200: "ok", 400: "invalid", 409: "refused", 429: "shed",
                  500: "error"}


class WindowScope:
    """Accumulated stats for one (window, scope) cell.

    A scope is either one endpoint or the platform-wide ``"all"``;
    latency is observed for every non-shed response (sheds complete at
    arrival, so their zero latency would only distort the tail).
    """

    __slots__ = (
        "count", "ok", "invalid", "refused", "shed", "error", "cached",
        "latency", "over", "queue_depth_max", "queue_depth_last",
    )

    def __init__(
        self,
        thresholds: Tuple[float, ...],
        backend: str,
        compression: int,
    ):
        self.count = 0
        self.ok = 0
        self.invalid = 0
        self.refused = 0
        self.shed = 0
        self.error = 0
        self.cached = 0
        if backend == "sketch":
            self.latency = SketchHistogram("window", compression=compression)
        else:
            self.latency = Histogram("window")
        self.over = [0] * len(thresholds)
        self.queue_depth_max = 0.0
        self.queue_depth_last = 0.0

    def record(
        self,
        status: int,
        latency_ms: float,
        cached: bool,
        thresholds: Tuple[float, ...],
    ) -> None:
        self.count += 1
        # Explicit branches, not setattr(_STATUS_FIELDS[...]): this runs
        # twice per served response, and dynamic attribute dispatch is
        # measurably slower on the request path.
        if status == 200:
            self.ok += 1
        elif status == 429:
            self.shed += 1
        elif status == 400:
            self.invalid += 1
        elif status == 409:
            self.refused += 1
        elif status == 500:
            self.error += 1
        if cached:
            self.cached += 1
        if status != 429:
            self.latency.observe(latency_ms)
            if thresholds:
                for i, threshold in enumerate(thresholds):
                    if latency_ms > threshold:
                        self.over[i] += 1

    def record_batch(
        self,
        statuses: List[int],
        latencies_ms: List[float],
        cached: int,
        thresholds: Tuple[float, ...],
    ) -> None:
        """Fold one window's buffered columns in bulk — equivalent to
        :meth:`record` per row (same counts, same observed values, same
        order), but the counting runs at C speed (numpy count_nonzero
        and one bulk sketch observe) so the amortised per-response cost
        stays small.
        """
        n = len(statuses)
        self.count += n
        status_arr = np.asarray(statuses, dtype=np.int64)
        self.ok += int(np.count_nonzero(status_arr == 200))
        self.invalid += int(np.count_nonzero(status_arr == 400))
        self.refused += int(np.count_nonzero(status_arr == 409))
        shed = int(np.count_nonzero(status_arr == 429))
        self.shed += shed
        self.error += int(np.count_nonzero(status_arr == 500))
        self.cached += cached
        if shed < n:
            latency_arr = np.asarray(latencies_ms, dtype=np.float64)
            if shed:
                latency_arr = latency_arr[status_arr != 429]
            self.latency.observe_many(latency_arr)
            for i, threshold in enumerate(thresholds):
                self.over[i] += int(np.count_nonzero(latency_arr > threshold))

    def snapshot(
        self, width: float, thresholds: Tuple[float, ...]
    ) -> Dict[str, float]:
        summary = self.latency.summary()
        out: Dict[str, float] = {
            "count": float(self.count),
            "ok": float(self.ok),
            "invalid": float(self.invalid),
            "refused": float(self.refused),
            "shed": float(self.shed),
            "error": float(self.error),
            "cached": float(self.cached),
            "goodput_rps": self.ok / width,
            "shed_rate": (self.shed / self.count) if self.count else 0.0,
            "latency_count": summary["count"],
            "p50_ms": summary["p50"],
            "p99_ms": (
                self.latency.percentile(99.0) if self.latency.count else 0.0
            ),
            "max_ms": summary["max"],
        }
        for threshold, over in zip(thresholds, self.over):
            out[f"over_{threshold:g}ms"] = float(over)
        return out


class WindowedTelemetry:
    """Fixed-width rollups of serving responses on the virtual clock.

    Parameters
    ----------
    window:
        Window width in simulated seconds.
    latency_thresholds_ms:
        Latency cut-offs counted exactly per window (the SLO engine's
        latency SLIs declare theirs here via
        :func:`repro.obs.slo.thresholds_for`).
    backend:
        ``"sketch"`` (default, bounded memory) or ``"exact"``.
    compression:
        Sketch compression per (window, scope) cell.
    """

    def __init__(
        self,
        window: float = 1.0,
        latency_thresholds_ms: Tuple[float, ...] = (),
        backend: str = "sketch",
        compression: int = 100,
    ):
        if window <= 0 or not math.isfinite(window):
            raise ValueError(f"window must be positive, got {window}")
        if backend not in ("sketch", "exact"):
            raise ValueError(
                f"backend must be 'sketch' or 'exact', got {backend!r}"
            )
        self.window = float(window)
        # Deduplicate but preserve declaration order determinism: sort.
        self.thresholds: Tuple[float, ...] = tuple(
            sorted({float(t) for t in latency_thresholds_ms})
        )
        self.backend = backend
        self.compression = compression
        self._windows: Dict[int, Dict[str, WindowScope]] = {}
        self.responses = 0
        # Ingest fast path: responses complete in non-decreasing virtual
        # time, so the whole run is buffered as raw rows with window
        # *boundary markers* recorded as the clock crosses them, and the
        # fold into scope cells is deferred until the first query (every
        # reader flushes first).  Per-response cost on the request path
        # is one tuple append — the observability-overhead gate in
        # ``benchmarks/regression.py`` bounds this path — and the fold
        # itself runs once, off the request path, at C speed (numpy
        # counting and one bulk sketch observe per cell).
        self._rows: List[Tuple[str, int, float, bool]] = []
        # (start position in _rows, window index) per contiguous segment.
        self._boundaries: List[Tuple[int, int]] = []
        self._row_index: Optional[int] = None
        # Current segment's half-open [start, limit) time bounds: the
        # common case is one float compare, not a floordiv per response.
        self._row_start = math.inf
        self._row_limit = -math.inf
        # Queue-depth samples hit the same (window, "all") cell many
        # times in a row; cache it (with the window's time bounds, so
        # the common case is one float compare).
        self._depth_cell: Optional[WindowScope] = None
        self._depth_start = math.inf
        self._depth_limit = -math.inf

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def window_index(self, time: float) -> int:
        return int(time // self.window)

    def _scope(self, index: int, scope: str) -> WindowScope:
        per_window = self._windows.get(index)
        if per_window is None:
            per_window = {}
            self._windows[index] = per_window
        cell = per_window.get(scope)
        if cell is None:
            cell = WindowScope(self.thresholds, self.backend, self.compression)
            per_window[scope] = cell
        return cell

    def record_response(
        self,
        endpoint: str,
        status: int,
        arrived: float,
        completed: float,
        cached: bool = False,
    ) -> None:
        """Roll one response into its completion window.

        This runs once per served response, so it only buffers one raw
        row: the fold into scope cells is deferred to :meth:`_flush` on
        the first query (the observability-overhead gate in
        ``benchmarks/regression.py`` bounds what this path may cost).
        """
        if not self._row_start <= completed < self._row_limit:
            index = int(completed // self.window)
            self._boundaries.append((len(self._rows), index))
            self._row_index = index
            self._row_start = index * self.window
            self._row_limit = (index + 1) * self.window
        self._rows.append(
            (endpoint, status, (completed - arrived) * 1e3, cached)
        )
        self.responses += 1

    def _cell(self, per_window: Dict[str, "WindowScope"], scope: str):
        cell = per_window.get(scope)
        if cell is None:
            cell = per_window[scope] = WindowScope(
                self.thresholds, self.backend, self.compression
            )
        return cell

    def _flush(self) -> None:
        """Fold every buffered window segment into its scope cells.

        Runs off the request path (first query after ingest); folding a
        window across two flushes is additive, so a mid-run query stays
        correct — it just pays the fold for the rows seen so far.
        """
        rows = self._rows
        if not rows:
            return
        thresholds = self.thresholds
        boundaries = self._boundaries
        n_segments = len(boundaries)
        for seg in range(n_segments):
            start, index = boundaries[seg]
            end = (
                boundaries[seg + 1][0] if seg + 1 < n_segments else len(rows)
            )
            segment = rows[start:end]
            per_window = self._windows.get(index)
            if per_window is None:
                per_window = self._windows[index] = {}
            _endpoints, statuses, latencies, cached = zip(*segment)
            self._cell(per_window, "all").record_batch(
                list(statuses), list(latencies), cached.count(True),
                thresholds,
            )
            groups: Dict[str, List[Tuple[str, int, float, bool]]] = {}
            for row in segment:
                group = groups.get(row[0])
                if group is None:
                    group = groups[row[0]] = []
                group.append(row)
            for endpoint, group_rows in groups.items():
                self._cell(per_window, endpoint).record_batch(
                    [r[1] for r in group_rows],
                    [r[2] for r in group_rows],
                    sum(1 for r in group_rows if r[3]),
                    thresholds,
                )
        self._rows = []
        self._boundaries = []
        self._row_index = None
        # Force the next record to open a fresh segment (the boundary
        # list it would otherwise rely on was just consumed).
        self._row_start = math.inf
        self._row_limit = -math.inf

    def observe_queue_depth(self, time: float, depth: float) -> None:
        """Sample the admission queue depth (platform-wide scope)."""
        cell = self._depth_cell
        if cell is None or not self._depth_start <= time < self._depth_limit:
            index = int(time // self.window)
            cell = self._scope(index, "all")
            self._depth_cell = cell
            self._depth_start = index * self.window
            self._depth_limit = (index + 1) * self.window
        if depth > cell.queue_depth_max:
            cell.queue_depth_max = depth
        cell.queue_depth_last = depth

    # ------------------------------------------------------------------
    # Query / export
    # ------------------------------------------------------------------
    @property
    def n_windows(self) -> int:
        self._flush()
        return len(self._windows)

    def indices(self) -> List[int]:
        """Window indices with any data, ascending."""
        self._flush()
        return sorted(self._windows)

    def last_index(self) -> int:
        """The highest populated window index (-1 when empty)."""
        self._flush()
        return max(self._windows) if self._windows else -1

    def scope_stats(
        self, index: int, scope: str = "all"
    ) -> Optional[WindowScope]:
        """The live accumulator for one (window, scope), or None."""
        self._flush()
        return self._windows.get(index, {}).get(scope)

    def series(
        self, metric: str, scope: str = "all"
    ) -> List[Tuple[float, float]]:
        """``(window_start, value)`` points for one snapshot metric."""
        self._flush()
        points: List[Tuple[float, float]] = []
        for index in self.indices():
            cell = self._windows[index].get(scope)
            if cell is None:
                continue
            snap = cell.snapshot(self.window, self.thresholds)
            snap["queue_depth_max"] = cell.queue_depth_max
            snap["queue_depth_last"] = cell.queue_depth_last
            if metric not in snap:
                raise KeyError(
                    f"unknown telemetry metric {metric!r}; "
                    f"have {sorted(snap)}"
                )
            points.append((index * self.window, snap[metric]))
        return points

    def snapshot(self) -> Dict[str, object]:
        """The full rollup as a deterministic JSON-friendly dict."""
        self._flush()
        windows = []
        for index in self.indices():
            per_window = self._windows[index]
            all_cell = per_window.get("all")
            entry: Dict[str, object] = {
                "index": index,
                "start": index * self.window,
                "end": (index + 1) * self.window,
            }
            if all_cell is not None:
                stats = all_cell.snapshot(self.window, self.thresholds)
                stats["queue_depth_max"] = all_cell.queue_depth_max
                stats["queue_depth_last"] = all_cell.queue_depth_last
                entry["all"] = stats
            entry["endpoints"] = {
                scope: cell.snapshot(self.window, self.thresholds)
                for scope, cell in sorted(per_window.items())
                if scope != "all"
            }
            windows.append(entry)
        return {
            "window_s": self.window,
            "backend": self.backend,
            "latency_thresholds_ms": list(self.thresholds),
            "responses": self.responses,
            "windows": windows,
        }

    def to_json(self) -> str:
        """Sorted-key JSON of :meth:`snapshot` (the byte-compare gate)."""
        return json.dumps(self.snapshot(), sort_keys=True)
