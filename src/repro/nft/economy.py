"""Play-to-earn and create-to-earn economies (paper §IV-A).

"Play-to-earn games such as Axie Infinity allow players to earn money
while they play; they can sell their improved monster.  Other models
... create-to-earn where users of the platform can contribute to its
construction while selling their created digital assets."

Two small economy engines exercise those loops on top of the
marketplace:

* :class:`PlayToEarnGame` — players own creature NFTs that battle;
  winning pays a reward and improves the creature's quality, raising
  its resale value.
* :class:`CreateToEarnStudio` — creators produce assets whose quality
  reflects their skill, list them, and earn primary sales plus
  royalties forever after.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import NftError
from repro.nft.marketplace import NFTMarketplace
from repro.nft.token import NFToken

__all__ = ["BattleResult", "PlayToEarnGame", "CreateToEarnStudio"]


@dataclass(frozen=True)
class BattleResult:
    """Outcome of one battle."""

    winner: str
    loser: str
    winner_token: str
    loser_token: str
    reward: float
    time: float


class PlayToEarnGame:
    """A monster-battling economy over creature NFTs.

    Win probability follows the creatures' quality gap via a logistic
    curve; the winner earns ``reward`` (minted into their market
    balance, modelling game-emission) and the winning creature gains
    ``improvement`` quality, capped at 1.
    """

    def __init__(
        self,
        market: NFTMarketplace,
        rng: np.random.Generator,
        reward: float = 5.0,
        improvement: float = 0.02,
    ):
        if reward < 0:
            raise NftError(f"reward must be >= 0, got {reward}")
        if not 0 <= improvement <= 1:
            raise NftError(f"improvement must be in [0, 1], got {improvement}")
        self._market = market
        self._rng = rng
        self._reward = reward
        self._improvement = improvement
        self.battles: List[BattleResult] = []

    def adopt_creature(self, player: str, name: str, time: float) -> NFToken:
        """Mint a starter creature for ``player``."""
        quality = float(np.clip(self._rng.normal(0.4, 0.1), 0.05, 0.95))
        return self._market.mint(
            creator=player,
            uri=f"creature://{name}",
            time=time,
            quality=quality,
        )

    def battle(self, token_a: str, token_b: str, time: float) -> BattleResult:
        """Fight two creatures; pays and improves the winner."""
        a = self._market.collection.token(token_a)
        b = self._market.collection.token(token_b)
        if a.owner == b.owner:
            raise NftError("a player cannot battle themselves")
        gap = a.quality - b.quality
        p_a_wins = 1.0 / (1.0 + np.exp(-6.0 * gap))
        a_wins = self._rng.random() < p_a_wins
        winner_token, loser_token = (a, b) if a_wins else (b, a)
        winner_token.quality = min(1.0, winner_token.quality + self._improvement)
        self._market.deposit(winner_token.owner, self._reward)
        result = BattleResult(
            winner=winner_token.owner,
            loser=loser_token.owner,
            winner_token=winner_token.token_id,
            loser_token=loser_token.token_id,
            reward=self._reward,
            time=time,
        )
        self.battles.append(result)
        return result

    def player_earnings(self, player: str) -> float:
        """Total battle rewards earned by ``player``."""
        return sum(b.reward for b in self.battles if b.winner == player)


@dataclass
class CreatorProfile:
    """A create-to-earn participant."""

    name: str
    skill: float  # mean quality of their output, in [0, 1]
    is_scammer: bool = False
    minted: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.skill <= 1:
            raise NftError(f"skill must be in [0, 1], got {self.skill}")


class CreateToEarnStudio:
    """Creators producing and listing assets.

    Honest creators emit assets with quality ~ N(skill, 0.1); scammers
    emit low-quality copies flagged ``is_scam`` (ground truth for the
    experiments — policies never see the flag).
    """

    def __init__(self, market: NFTMarketplace, rng: np.random.Generator):
        self._market = market
        self._rng = rng
        self._creators: Dict[str, CreatorProfile] = {}

    def register_creator(
        self, name: str, skill: float, is_scammer: bool = False
    ) -> CreatorProfile:
        if name in self._creators:
            raise NftError(f"creator {name!r} already registered")
        profile = CreatorProfile(name=name, skill=skill, is_scammer=is_scammer)
        self._creators[name] = profile
        return profile

    def creators(self) -> List[CreatorProfile]:
        return list(self._creators.values())

    def produce_and_list(
        self, creator: str, time: float, price: Optional[float] = None
    ) -> Optional[NFToken]:
        """One production step: mint (if the policy admits) and list.

        Returns None when the minting policy refuses — the lockout that
        the openness metrics count.
        """
        profile = self._creators.get(creator)
        if profile is None:
            raise NftError(f"unknown creator {creator!r}")
        if profile.is_scammer:
            quality = float(np.clip(self._rng.normal(0.1, 0.05), 0.0, 0.3))
            is_scam = True
        else:
            quality = float(np.clip(self._rng.normal(profile.skill, 0.1), 0.0, 1.0))
            is_scam = False
        uri = f"asset://{creator}/{profile.minted}"
        try:
            token = self._market.mint(
                creator=creator,
                uri=uri,
                time=time,
                quality=quality,
                is_scam=is_scam,
            )
        except Exception:
            return None
        profile.minted += 1
        list_price = price if price is not None else max(1.0, 10.0 * quality + 1.0)
        self._market.list_token(creator, token.token_id, list_price, time)
        return token
