"""The NFT marketplace: listings, sales, royalties, and scam reports.

Implements the market loop of §IV-A: creators mint under a
:class:`~repro.nft.policies.MintingPolicy`, list tokens, buyers purchase
(price split between seller, creator royalty, and a platform fee that
can feed a DAO treasury), and buyers who discover they bought a scam
file reports that feed the reputation system — closing the loop that
makes :class:`~repro.nft.policies.ReputationVetted` adaptive.

Funds are internal account balances (the ledger-anchored variant wires
``fee_sink`` and reputation anchoring; the market itself stays
substrate-agnostic).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import MarketError, MintingError
from repro.nft.policies import MintingPolicy, OpenMinting
from repro.nft.token import NFTCollection, NFToken
from repro.obs.instrument import NULL_OBS, Instrumentation
from repro.reputation.system import ReputationSystem

__all__ = ["Listing", "Sale", "ScamReport", "NFTMarketplace"]


@dataclass
class Listing:
    """An active sale offer."""

    listing_id: int
    token_id: str
    seller: str
    price: float
    listed_at: float
    active: bool = True


@dataclass(frozen=True)
class Sale:
    """A completed purchase with its price split."""

    token_id: str
    seller: str
    buyer: str
    price: float
    royalty_paid: float
    fee_paid: float
    time: float


@dataclass(frozen=True)
class ScamReport:
    """A buyer's claim that a token is a scam."""

    reporter: str
    token_id: str
    creator: str
    time: float


class NFTMarketplace:
    """One market over one collection.

    Parameters
    ----------
    collection:
        The NFT registry traded here.
    policy:
        Minting policy gating :meth:`mint`.
    reputation:
        Optional reputation system that receives buyer feedback
        (positive on honest purchases, negative on scam reports).
    fee_fraction:
        Platform cut of every sale.
    fee_sink:
        Callback receiving platform fees (e.g. ``treasury.deposit``).
    obs:
        Optional observability instrumentation; mints, listings, sale
        settlements, and scam reports emit spans and events.
    """

    def __init__(
        self,
        collection: NFTCollection,
        policy: Optional[MintingPolicy] = None,
        reputation: Optional[ReputationSystem] = None,
        fee_fraction: float = 0.02,
        fee_sink: Optional[Callable[[float], None]] = None,
        obs: Optional[Instrumentation] = None,
    ):
        if not 0 <= fee_fraction <= 0.2:
            raise MarketError(
                f"fee_fraction must be in [0, 0.2], got {fee_fraction}"
            )
        self.collection = collection
        self.policy = policy if policy is not None else OpenMinting()
        self.reputation = reputation
        self._fee_fraction = fee_fraction
        self._fee_sink = fee_sink
        self._obs = obs if obs is not None else NULL_OBS
        self._balances: Dict[str, float] = {}
        self._listings: Dict[int, Listing] = {}
        self._listing_counter = itertools.count()
        self.sales: List[Sale] = []
        self.scam_reports: List[ScamReport] = []

    # ------------------------------------------------------------------
    # Funds
    # ------------------------------------------------------------------
    def deposit(self, account: str, amount: float) -> None:
        if amount < 0:
            raise MarketError(f"deposit must be >= 0, got {amount}")
        self._balances[account] = self.balance_of(account) + amount

    def balance_of(self, account: str) -> float:
        return self._balances.get(account, 0.0)

    # ------------------------------------------------------------------
    # Minting and listing
    # ------------------------------------------------------------------
    def mint(
        self,
        creator: str,
        uri: str,
        time: float,
        quality: float = 0.5,
        is_scam: bool = False,
        royalty_fraction: float = 0.05,
    ) -> NFToken:
        """Mint under the active policy (raises MintingError on refusal)."""
        self.policy.check(creator)
        token = self.collection.mint(
            creator=creator,
            uri=uri,
            time=time,
            quality=quality,
            is_scam=is_scam,
            royalty_fraction=royalty_fraction,
        )
        self._obs.counter("nft.market.mints").inc()
        self._obs.event(
            "nft.market",
            "token.minted",
            time=time,
            token_id=token.token_id,
            creator=creator,
        )
        return token

    def list_token(self, seller: str, token_id: str, price: float, time: float) -> Listing:
        """Offer an owned token for sale at ``price``."""
        if price <= 0:
            raise MarketError(f"price must be positive, got {price}")
        if self.collection.owner_of(token_id) != seller:
            raise MarketError(f"{seller} does not own {token_id}")
        if any(
            l.active and l.token_id == token_id for l in self._listings.values()
        ):
            raise MarketError(f"{token_id} is already listed")
        listing = Listing(
            listing_id=next(self._listing_counter),
            token_id=token_id,
            seller=seller,
            price=price,
            listed_at=time,
        )
        self._listings[listing.listing_id] = listing
        self._obs.counter("nft.market.listings").inc()
        self._obs.event(
            "nft.market",
            "token.listed",
            time=time,
            listing_id=listing.listing_id,
            token_id=token_id,
            seller=seller,
            price=price,
        )
        return listing

    def delist(self, listing_id: int) -> None:
        listing = self._listing(listing_id)
        listing.active = False

    def active_listings(self, seller: Optional[str] = None) -> List[Listing]:
        out = [l for l in self._listings.values() if l.active]
        if seller is not None:
            out = [l for l in out if l.seller == seller]
        return sorted(out, key=lambda l: l.listing_id)

    # ------------------------------------------------------------------
    # Buying
    # ------------------------------------------------------------------
    def buy(self, buyer: str, listing_id: int, time: float) -> Sale:
        """Settle a purchase: funds split, token transferred.

        Split: royalty to the creator (secondary sales only), platform
        fee to the sink, remainder to the seller.
        """
        listing = self._listing(listing_id)
        if not listing.active:
            raise MarketError(f"listing {listing_id} is no longer active")
        if buyer == listing.seller:
            raise MarketError("buyer cannot be the seller")
        if self.balance_of(buyer) < listing.price:
            raise MarketError(
                f"{buyer} holds {self.balance_of(buyer):g}, "
                f"needs {listing.price:g}"
            )
        with self._obs.span(
            "nft.market",
            "sale.settle",
            time=time,
            token_id=listing.token_id,
            buyer=buyer,
            seller=listing.seller,
            price=listing.price,
        ):
            token = self.collection.token(listing.token_id)
            is_secondary = listing.seller != token.creator
            royalty = token.royalty_fraction * listing.price if is_secondary else 0.0
            fee = self._fee_fraction * listing.price
            seller_take = listing.price - royalty - fee

            self._balances[buyer] -= listing.price
            self._balances[listing.seller] = (
                self.balance_of(listing.seller) + seller_take
            )
            if royalty > 0:
                self._balances[token.creator] = self.balance_of(token.creator) + royalty
            if self._fee_sink is not None:
                self._fee_sink(fee)
            else:
                self._balances["__platform__"] = self.balance_of("__platform__") + fee

            self.collection.transfer(
                listing.token_id, listing.seller, buyer, time, price=listing.price
            )
            listing.active = False
            sale = Sale(
                token_id=listing.token_id,
                seller=listing.seller,
                buyer=buyer,
                price=listing.price,
                royalty_paid=royalty,
                fee_paid=fee,
                time=time,
            )
            self.sales.append(sale)
            self._obs.counter("nft.market.sales").inc()
            self._obs.histogram("nft.market.sale_price").observe(listing.price)
        return sale

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def report_scam(self, reporter: str, token_id: str, time: float) -> ScamReport:
        """File a scam report; only the current owner (the burned buyer)
        may report, and the creator takes the reputation hit."""
        token = self.collection.token(token_id)
        if token.owner != reporter:
            raise MarketError(
                f"only the current owner may report {token_id} "
                f"(owner is {token.owner})"
            )
        report = ScamReport(
            reporter=reporter,
            token_id=token_id,
            creator=token.creator,
            time=time,
        )
        self.scam_reports.append(report)
        self._obs.counter("nft.market.scam_reports").inc()
        self._obs.event(
            "nft.market",
            "scam.reported",
            time=time,
            token_id=token_id,
            reporter=reporter,
            creator=token.creator,
        )
        if self.reputation is not None and reporter != token.creator:
            self.reputation.record(
                rater=reporter,
                target=token.creator,
                positive=False,
                time=time,
                context="scam-report",
            )
        return report

    def praise(self, buyer: str, token_id: str, time: float) -> None:
        """Positive feedback from a satisfied buyer to the creator."""
        token = self.collection.token(token_id)
        if self.reputation is not None and buyer != token.creator:
            self.reputation.record(
                rater=buyer,
                target=token.creator,
                positive=True,
                time=time,
                context="purchase-praise",
            )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def market_stats(self) -> Dict[str, float]:
        """Volume, scam exposure, and openness in one snapshot."""
        scam_sales = sum(
            1 for s in self.sales if self.collection.token(s.token_id).is_scam
        )
        return {
            "sales": float(len(self.sales)),
            "volume": sum(s.price for s in self.sales),
            "scam_sales": float(scam_sales),
            "scam_sale_fraction": scam_sales / len(self.sales) if self.sales else 0.0,
            "royalties_paid": sum(s.royalty_paid for s in self.sales),
            "fees_paid": sum(s.fee_paid for s in self.sales),
            "mints_admitted": float(self.policy.admitted_count),
            "mints_refused": float(self.policy.refused_count),
            "creators_locked_out": float(len(self.policy.refused_creators)),
        }

    def _listing(self, listing_id: int) -> Listing:
        if listing_id not in self._listings:
            raise MarketError(f"no listing {listing_id}")
        return self._listings[listing_id]
