"""Minting policies: who may create NFTs (paper §IV-A).

The paper describes the tension directly: open minting "allows scammers
and malicious content creators to take advantage of the system", while
"'invite-only' policies ... diminish the advantages of NFTs as an
open-access content creation tool", and proposes "using DAOs and users
of the platform to implement a reputation-based system where everyone
can vote and enforce norms".  Three policies make the trade-off
measurable:

* :class:`OpenMinting` — everyone mints (max openness, max scams).
* :class:`InviteOnlyMinting` — a fixed allowlist (min scams, min
  openness; late-arriving honest creators are locked out).
* :class:`ReputationVetted` — mint iff current reputation clears a
  threshold; scam reports feed reputation, so scammers lose access
  after being caught while honest newcomers earn access.

Each policy answers :meth:`allows` and records its refusals for the
openness metrics used by benchmark E8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.errors import MintingError
from repro.reputation.system import ReputationSystem

__all__ = [
    "MintingPolicy",
    "OpenMinting",
    "InviteOnlyMinting",
    "ReputationVetted",
]


class MintingPolicy:
    """Base policy: tracks admissions and refusals."""

    name = "abstract"

    def __init__(self) -> None:
        self.admitted_count = 0
        self.refused_count = 0
        self._refused_creators: Set[str] = set()

    def allows(self, creator: str) -> bool:
        """Policy decision for ``creator`` right now."""
        raise NotImplementedError

    def check(self, creator: str) -> None:
        """Record and enforce; raises :class:`MintingError` on refusal."""
        if self.allows(creator):
            self.admitted_count += 1
            return
        self.refused_count += 1
        self._refused_creators.add(creator)
        raise MintingError(
            f"policy {self.name!r} refuses minting by {creator}"
        )

    @property
    def refused_creators(self) -> Set[str]:
        """Distinct creators ever refused (openness metric)."""
        return set(self._refused_creators)


class OpenMinting(MintingPolicy):
    """Everyone may mint."""

    name = "open"

    def allows(self, creator: str) -> bool:
        return True


class InviteOnlyMinting(MintingPolicy):
    """Only allowlisted creators may mint.

    The allowlist is fixed at construction (platforms typically seed it
    with established artists); :meth:`invite` models occasional manual
    additions.
    """

    name = "invite-only"

    def __init__(self, invited: Iterable[str]):
        super().__init__()
        self._invited: Set[str] = set(invited)

    def allows(self, creator: str) -> bool:
        return creator in self._invited

    def invite(self, creator: str) -> None:
        self._invited.add(creator)

    @property
    def invited(self) -> Set[str]:
        return set(self._invited)


class ReputationVetted(MintingPolicy):
    """Mint iff blended reputation ≥ threshold.

    New creators start at the beta prior (0.5), so a threshold at or
    below 0.5 admits newcomers and then expels creators whose mints get
    reported as scams — the adaptive middle ground the paper advocates.
    """

    name = "reputation-vetted"

    def __init__(self, reputation: ReputationSystem, threshold: float = 0.45):
        super().__init__()
        if not 0 <= threshold <= 1:
            raise MintingError(
                f"threshold must be in [0, 1], got {threshold}"
            )
        self._reputation = reputation
        self._threshold = threshold

    def allows(self, creator: str) -> bool:
        return self._reputation.local_score(creator) >= self._threshold

    @property
    def threshold(self) -> float:
        return self._threshold
