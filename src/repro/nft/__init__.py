"""NFT substrate (paper §IV-A).

Unique tokens with provenance, three minting policies spanning the
openness/scam trade-off the paper describes, a marketplace with
royalties + platform fees + scam reports feeding reputation, and
play-to-earn / create-to-earn economy engines.
"""

from repro.nft.auctions import Auction, AuctionHouse, Bid
from repro.nft.economy import (
    BattleResult,
    CreateToEarnStudio,
    CreatorProfile,
    PlayToEarnGame,
)
from repro.nft.marketplace import Listing, NFTMarketplace, Sale, ScamReport
from repro.nft.policies import (
    InviteOnlyMinting,
    MintingPolicy,
    OpenMinting,
    ReputationVetted,
)
from repro.nft.token import NFTCollection, NFToken, TransferRecord

__all__ = [
    "Auction",
    "AuctionHouse",
    "Bid",
    "BattleResult",
    "CreateToEarnStudio",
    "CreatorProfile",
    "PlayToEarnGame",
    "Listing",
    "NFTMarketplace",
    "Sale",
    "ScamReport",
    "InviteOnlyMinting",
    "MintingPolicy",
    "OpenMinting",
    "ReputationVetted",
    "NFTCollection",
    "NFToken",
    "TransferRecord",
]
