"""English auctions for NFTs.

Decentraland sold its LAND parcels by auction; create-to-earn studios
auction one-of-a-kind pieces.  :class:`AuctionHouse` runs ascending
(English) auctions on top of an :class:`~repro.nft.marketplace.NFTMarketplace`'s
balance accounting: bids escrow the bidder's funds, outbid bidders are
refunded instantly, and settlement reuses the marketplace's price split
(royalties + platform fee + seller take).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import MarketError
from repro.nft.marketplace import NFTMarketplace, Sale

__all__ = ["Bid", "Auction", "AuctionHouse"]


@dataclass(frozen=True)
class Bid:
    """One accepted bid."""

    bidder: str
    amount: float
    time: float


@dataclass
class Auction:
    """One English auction."""

    auction_id: int
    token_id: str
    seller: str
    reserve_price: float
    opened_at: float
    closes_at: float
    min_increment: float
    bids: List[Bid] = field(default_factory=list)
    settled: bool = False

    @property
    def leading_bid(self) -> Optional[Bid]:
        return self.bids[-1] if self.bids else None

    @property
    def is_open(self) -> bool:
        return not self.settled

    def minimum_acceptable(self) -> float:
        leader = self.leading_bid
        if leader is None:
            return self.reserve_price
        return leader.amount + self.min_increment


class AuctionHouse:
    """Runs auctions against a marketplace's collection and balances."""

    def __init__(self, market: NFTMarketplace):
        self._market = market
        self._auctions: Dict[int, Auction] = {}
        self._counter = itertools.count()
        # Funds escrowed per auction for the current leader.
        self._escrow: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open_auction(
        self,
        seller: str,
        token_id: str,
        reserve_price: float,
        time: float,
        duration: float = 10.0,
        min_increment: float = 1.0,
    ) -> Auction:
        """Open an auction for an owned, unlisted token."""
        if reserve_price <= 0:
            raise MarketError(f"reserve must be positive, got {reserve_price}")
        if duration <= 0 or min_increment <= 0:
            raise MarketError("duration and min_increment must be positive")
        if self._market.collection.owner_of(token_id) != seller:
            raise MarketError(f"{seller} does not own {token_id}")
        if any(
            a.is_open and a.token_id == token_id for a in self._auctions.values()
        ):
            raise MarketError(f"{token_id} is already being auctioned")
        auction = Auction(
            auction_id=next(self._counter),
            token_id=token_id,
            seller=seller,
            reserve_price=reserve_price,
            opened_at=time,
            closes_at=time + duration,
            min_increment=min_increment,
        )
        self._auctions[auction.auction_id] = auction
        return auction

    def place_bid(self, auction_id: int, bidder: str, amount: float, time: float) -> Bid:
        """Bid; escrows funds and refunds the displaced leader.

        Raises
        ------
        MarketError
            On closed auctions, late bids, self-bids, lowball bids, or
            insufficient funds.
        """
        auction = self._auction(auction_id)
        if not auction.is_open:
            raise MarketError(f"auction {auction_id} already settled")
        if time > auction.closes_at:
            raise MarketError(
                f"auction {auction_id} closed at {auction.closes_at} (t={time})"
            )
        if bidder == auction.seller:
            raise MarketError("sellers cannot bid on their own auctions")
        minimum = auction.minimum_acceptable()
        if amount < minimum:
            raise MarketError(
                f"bid {amount:g} below minimum acceptable {minimum:g}"
            )
        if self._market.balance_of(bidder) < amount:
            raise MarketError(
                f"{bidder} holds {self._market.balance_of(bidder):g}, "
                f"cannot bid {amount:g}"
            )
        # Refund the displaced leader, escrow the new bid.
        previous = auction.leading_bid
        if previous is not None:
            self._market.deposit(previous.bidder, self._escrow[auction_id])
        self._market._balances[bidder] -= amount  # escrow out of balance
        self._escrow[auction_id] = amount
        bid = Bid(bidder=bidder, amount=amount, time=time)
        auction.bids.append(bid)
        return bid

    def settle(self, auction_id: int, time: float) -> Optional[Sale]:
        """Settle after close: transfer token and split the winning bid.

        Returns the Sale, or None if the reserve was never met (escrow
        is empty in that case; the token stays with the seller).
        """
        auction = self._auction(auction_id)
        if not auction.is_open:
            raise MarketError(f"auction {auction_id} already settled")
        if time < auction.closes_at:
            raise MarketError(
                f"auction {auction_id} closes at {auction.closes_at}, "
                f"cannot settle at {time}"
            )
        auction.settled = True
        winner = auction.leading_bid
        if winner is None:
            return None
        amount = self._escrow.pop(auction.auction_id)
        token = self._market.collection.token(auction.token_id)
        is_secondary = auction.seller != token.creator
        royalty = token.royalty_fraction * amount if is_secondary else 0.0
        fee = self._market._fee_fraction * amount
        seller_take = amount - royalty - fee
        self._market.deposit(auction.seller, seller_take)
        if royalty > 0:
            self._market.deposit(token.creator, royalty)
        if self._market._fee_sink is not None:
            self._market._fee_sink(fee)
        else:
            self._market.deposit("__platform__", fee)
        self._market.collection.transfer(
            auction.token_id, auction.seller, winner.bidder, time, price=amount
        )
        sale = Sale(
            token_id=auction.token_id,
            seller=auction.seller,
            buyer=winner.bidder,
            price=amount,
            royalty_paid=royalty,
            fee_paid=fee,
            time=time,
        )
        self._market.sales.append(sale)
        return sale

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def auction(self, auction_id: int) -> Auction:
        return self._auction(auction_id)

    def open_auctions(self) -> List[Auction]:
        return sorted(
            (a for a in self._auctions.values() if a.is_open),
            key=lambda a: a.auction_id,
        )

    def _auction(self, auction_id: int) -> Auction:
        if auction_id not in self._auctions:
            raise MarketError(f"no auction {auction_id}")
        return self._auctions[auction_id]
