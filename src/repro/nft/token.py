"""Non-fungible tokens: unique assets with provenance (paper §IV-A).

"NFTs are a one-to-one mapping between an owner (represented by a
crypto wallet address) and the asset referencing the NFT (usually by a
uniform resource identifier, URI).  NFTs replicate the properties of
physical objects such as scarcity and uniqueness."

:class:`NFToken` carries that mapping plus two simulation-only latent
fields used by the marketplace experiments: ``quality`` (how good the
underlying asset actually is) and ``is_scam`` (ground truth: a copied or
deliberately worthless asset).  Ground truth never leaks to policies —
they must infer it from reputation and reports, exactly like a real
platform.

:class:`NFTCollection` is the registry: it enforces uniqueness, records
the full ownership chain, and exposes provenance queries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NftError

__all__ = ["NFToken", "TransferRecord", "NFTCollection"]


@dataclass(frozen=True)
class TransferRecord:
    """One ownership change."""

    token_id: str
    from_owner: str
    to_owner: str
    time: float
    price: Optional[float]


@dataclass
class NFToken:
    """One unique token.

    ``royalty_fraction`` of every secondary sale is paid to the creator
    (the create-to-earn mechanism).
    """

    token_id: str
    creator: str
    owner: str
    uri: str
    minted_at: float
    royalty_fraction: float = 0.05
    quality: float = 0.5
    is_scam: bool = False
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.royalty_fraction <= 0.5:
            raise NftError(
                f"royalty_fraction must be in [0, 0.5], got {self.royalty_fraction}"
            )
        if not 0 <= self.quality <= 1:
            raise NftError(f"quality must be in [0, 1], got {self.quality}")


class NFTCollection:
    """A named collection enforcing uniqueness and provenance.

    Examples
    --------
    >>> col = NFTCollection("land")
    >>> token = col.mint(creator="alice", uri="land://0,0", time=0.0)
    >>> col.owner_of(token.token_id)
    'alice'
    """

    def __init__(self, name: str):
        if not name:
            raise NftError("collection name must be non-empty")
        self.name = name
        self._tokens: Dict[str, NFToken] = {}
        self._by_uri: Dict[str, str] = {}
        self._transfers: List[TransferRecord] = []
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # Minting
    # ------------------------------------------------------------------
    def mint(
        self,
        creator: str,
        uri: str,
        time: float,
        royalty_fraction: float = 0.05,
        quality: float = 0.5,
        is_scam: bool = False,
        metadata: Optional[Dict[str, object]] = None,
    ) -> NFToken:
        """Create a token; URIs are unique within the collection
        (scarcity), token ids are deterministic.

        Raises
        ------
        NftError
            If the URI is already minted (the "copies" scam the paper
            mentions must forge a *different* URI, e.g. a lookalike).
        """
        if uri in self._by_uri:
            raise NftError(
                f"collection {self.name!r}: URI {uri!r} already minted as "
                f"{self._by_uri[uri]}"
            )
        token_id = f"{self.name}-{next(self._counter):06d}"
        token = NFToken(
            token_id=token_id,
            creator=creator,
            owner=creator,
            uri=uri,
            minted_at=time,
            royalty_fraction=royalty_fraction,
            quality=quality,
            is_scam=is_scam,
            metadata=dict(metadata or {}),
        )
        self._tokens[token_id] = token
        self._by_uri[uri] = token_id
        return token

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    def token(self, token_id: str) -> NFToken:
        if token_id not in self._tokens:
            raise NftError(f"no token {token_id} in collection {self.name!r}")
        return self._tokens[token_id]

    def owner_of(self, token_id: str) -> str:
        return self.token(token_id).owner

    def transfer(
        self, token_id: str, from_owner: str, to_owner: str, time: float,
        price: Optional[float] = None,
    ) -> TransferRecord:
        """Move ownership; only the current owner can transfer."""
        token = self.token(token_id)
        if token.owner != from_owner:
            raise NftError(
                f"{from_owner} does not own {token_id} "
                f"(owner is {token.owner})"
            )
        if from_owner == to_owner:
            raise NftError(f"self-transfer of {token_id}")
        token.owner = to_owner
        record = TransferRecord(
            token_id=token_id,
            from_owner=from_owner,
            to_owner=to_owner,
            time=time,
            price=price,
        )
        self._transfers.append(record)
        return record

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------
    def provenance(self, token_id: str) -> List[TransferRecord]:
        """Full ownership chain of ``token_id`` (mint excluded)."""
        self.token(token_id)  # raise early on unknown id
        return [t for t in self._transfers if t.token_id == token_id]

    def tokens_of(self, owner: str) -> List[NFToken]:
        return [t for t in self._tokens.values() if t.owner == owner]

    def tokens_by(self, creator: str) -> List[NFToken]:
        return [t for t in self._tokens.values() if t.creator == creator]

    def all_tokens(self) -> List[NFToken]:
        return list(self._tokens.values())

    def by_uri(self, uri: str) -> Optional[NFToken]:
        token_id = self._by_uri.get(uri)
        return self._tokens[token_id] if token_id is not None else None

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token_id: str) -> bool:
        return token_id in self._tokens
