"""Digital twins: physical–virtual synchronised objects (paper §IV-A).

"We can define digital twins as virtual objects that are created to
reflect physical objects ... The metaverse will be then an evolving
world that is synchronized with the physical one.  There are still some
challenges regarding ownership of digital twins.  The most
straightforward approach to protecting digital twins' authenticity and
origin is using a digital ledger such as Blockchain."

* :class:`PhysicalObject` — the ground-truth state that evolves.
* :class:`DigitalTwin` — the virtual replica; :meth:`sync` pulls state
  and records the update; staleness/drift are measurable.
* :class:`TwinRegistry` — ownership + provenance, with an optional
  anchor callback that registers creation and transfers on a ledger
  (wired to the RegistryContract in the full framework).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import ReproError

__all__ = ["PhysicalObject", "DigitalTwin", "TwinRegistry"]

# Anchor callback for provenance events.
TwinAnchor = Callable[[Dict[str, Any]], None]


class PhysicalObject:
    """A physical-world object whose state drifts over time.

    State is a numeric vector (pose, temperature, wear, ...); the
    random-walk evolution stands in for real sensor feeds.
    """

    def __init__(self, object_id: str, state: np.ndarray):
        self.object_id = object_id
        self._state = np.asarray(state, dtype=float).copy()
        self.updated_at = 0.0

    @property
    def state(self) -> np.ndarray:
        return self._state.copy()

    def evolve(self, rng: np.random.Generator, time: float, step: float = 0.1) -> None:
        """Advance the physical state by one random-walk step."""
        self._state = self._state + rng.normal(0.0, step, size=self._state.shape)
        self.updated_at = time


class DigitalTwin:
    """The virtual replica of one physical object."""

    def __init__(self, twin_id: str, physical: PhysicalObject, owner: str):
        self.twin_id = twin_id
        self._physical = physical
        self.owner = owner
        self._mirrored_state = physical.state
        self.synced_at = 0.0
        self.sync_count = 0

    @property
    def mirrored_state(self) -> np.ndarray:
        return self._mirrored_state.copy()

    @property
    def physical_object(self) -> PhysicalObject:
        return self._physical

    def sync(self, time: float) -> None:
        """Pull the current physical state into the mirror."""
        if time < self.synced_at:
            raise ReproError(
                f"twin {self.twin_id}: sync time {time} before last sync "
                f"{self.synced_at}"
            )
        self._mirrored_state = self._physical.state
        self.synced_at = time
        self.sync_count += 1

    def drift(self) -> float:
        """L2 distance between the mirror and the current physical state
        — the fidelity cost of infrequent synchronisation."""
        return float(np.linalg.norm(self._mirrored_state - self._physical.state))

    def staleness(self, now: float) -> float:
        """Time since the last sync."""
        return max(0.0, now - self.synced_at)


class TwinRegistry:
    """Ownership and provenance of all twins on a platform."""

    def __init__(self, anchor: Optional[TwinAnchor] = None):
        self._twins: Dict[str, DigitalTwin] = {}
        self._provenance: Dict[str, List[Dict[str, Any]]] = {}
        self._anchor = anchor

    def register(
        self, physical: PhysicalObject, owner: str, time: float = 0.0
    ) -> DigitalTwin:
        """Create and record a twin for ``physical`` owned by ``owner``."""
        twin_id = f"twin:{physical.object_id}"
        if twin_id in self._twins:
            raise ReproError(f"{physical.object_id} already has a twin")
        twin = DigitalTwin(twin_id=twin_id, physical=physical, owner=owner)
        self._twins[twin_id] = twin
        event = {
            "event": "twin_created",
            "twin_id": twin_id,
            "object_id": physical.object_id,
            "owner": owner,
            "time": time,
        }
        self._provenance[twin_id] = [event]
        if self._anchor is not None:
            self._anchor(event)
        return twin

    def transfer(self, twin_id: str, from_owner: str, to_owner: str, time: float) -> None:
        """Change ownership; only the current owner may transfer."""
        twin = self.get(twin_id)
        if twin.owner != from_owner:
            raise ReproError(
                f"{from_owner} does not own {twin_id} (owner: {twin.owner})"
            )
        twin.owner = to_owner
        event = {
            "event": "twin_transferred",
            "twin_id": twin_id,
            "from": from_owner,
            "to": to_owner,
            "time": time,
        }
        self._provenance[twin_id].append(event)
        if self._anchor is not None:
            self._anchor(event)

    def get(self, twin_id: str) -> DigitalTwin:
        if twin_id not in self._twins:
            raise ReproError(f"no twin {twin_id}")
        return self._twins[twin_id]

    def provenance(self, twin_id: str) -> List[Dict[str, Any]]:
        self.get(twin_id)
        return list(self._provenance[twin_id])

    def twins(self) -> List[DigitalTwin]:
        return list(self._twins.values())

    def twins_of(self, owner: str) -> List[DigitalTwin]:
        return [t for t in self._twins.values() if t.owner == owner]

    def mean_drift(self) -> float:
        if not self._twins:
            return 0.0
        return float(np.mean([t.drift() for t in self._twins.values()]))
