"""Social graphs: who knows whom, and how much they trust each other.

A thin, typed wrapper over ``networkx`` undirected graphs with per-edge
trust weights in [0, 1].  Generators cover the topologies used by the
misinformation experiment (E7): scale-free (Barabási–Albert, like real
follower graphs), small-world (Watts–Strogatz), and Erdős–Rényi.

For population-scale traversal the graph compiles to an immutable CSR
snapshot (:class:`CsrSnapshot`): members sorted lexicographically,
``int32`` ``indptr``/``indices`` adjacency with neighbours in index
order, and ``float64`` trust weights.  The snapshot — like the cached
tuple views ``members_view``/``neighbors_view``/``sorted_neighbors`` —
is invalidated by any mutation (``add_member``/``connect``/
``set_trust``), so hot loops never observe stale topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.errors import ReproError

__all__ = ["CsrSnapshot", "SocialGraph"]


@dataclass(frozen=True)
class CsrSnapshot:
    """Compiled read-only adjacency of a :class:`SocialGraph`.

    ``ids`` is the member roster sorted lexicographically, so array
    index order *is* sorted-id order — the order the cascade loop
    already iterates in.  Row ``i`` holds the neighbours of
    ``ids[i]`` as ``indices[indptr[i]:indptr[i + 1]]`` (ascending, i.e.
    lexicographic by id) with tie trust in the matching ``weights``
    slots.  The undirected graph stores each edge in both rows.
    """

    ids: Tuple[str, ...]
    index: Dict[str, int]
    indptr: np.ndarray  # int32, shape (n + 1,)
    indices: np.ndarray  # int32, shape (2 * edges,)
    weights: np.ndarray  # float64, shape (2 * edges,)

    @property
    def n_members(self) -> int:
        return len(self.ids)

    def neighbors_of(self, i: int) -> np.ndarray:
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def weights_of(self, i: int) -> np.ndarray:
        return self.weights[self.indptr[i] : self.indptr[i + 1]]


class SocialGraph:
    """An undirected trust-weighted social graph."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        # Mutation epoch: every cached view checks it instead of being
        # eagerly rebuilt (mutations are bursts, reads are hot loops).
        self._version = 0
        self._members_view: Optional[Tuple[str, ...]] = None
        self._sorted_members: Optional[Tuple[str, ...]] = None
        self._neighbor_views: Dict[str, Tuple[str, ...]] = {}
        self._sorted_neighbor_views: Dict[str, Tuple[str, ...]] = {}
        self._csr: Optional[CsrSnapshot] = None

    def _invalidate(self) -> None:
        self._version += 1
        self._members_view = None
        self._sorted_members = None
        self._neighbor_views.clear()
        self._sorted_neighbor_views.clear()
        self._csr = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_member(self, member_id: str) -> None:
        self._graph.add_node(member_id)
        self._invalidate()

    def connect(self, a: str, b: str, trust: float = 0.5) -> None:
        """Create (or update) a tie with the given trust weight."""
        if a == b:
            raise ReproError(f"{a} cannot befriend themselves")
        if not 0 <= trust <= 1:
            raise ReproError(f"trust must be in [0, 1], got {trust}")
        self._graph.add_edge(a, b, trust=float(trust))
        self._invalidate()

    def set_trust(self, a: str, b: str, trust: float) -> None:
        if not self._graph.has_edge(a, b):
            raise ReproError(f"no tie between {a} and {b}")
        if not 0 <= trust <= 1:
            raise ReproError(f"trust must be in [0, 1], got {trust}")
        self._graph[a][b]["trust"] = float(trust)
        self._invalidate()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter; bumps whenever topology or weights change."""
        return self._version

    def members(self) -> List[str]:
        return list(self.members_view())

    def members_view(self) -> Tuple[str, ...]:
        """Cached member tuple (insertion order); no per-call copy."""
        if self._members_view is None:
            self._members_view = tuple(self._graph.nodes)
        return self._members_view

    def sorted_members(self) -> Tuple[str, ...]:
        """Cached lexicographically sorted member tuple."""
        if self._sorted_members is None:
            self._sorted_members = tuple(sorted(self._graph.nodes))
        return self._sorted_members

    def neighbors(self, member_id: str) -> List[str]:
        return list(self.neighbors_view(member_id))

    def neighbors_view(self, member_id: str) -> Tuple[str, ...]:
        """Cached neighbour tuple (adjacency order); no per-call copy."""
        view = self._neighbor_views.get(member_id)
        if view is None:
            if member_id not in self._graph:
                raise ReproError(f"{member_id} not in graph")
            view = tuple(self._graph.neighbors(member_id))
            self._neighbor_views[member_id] = view
        return view

    def sorted_neighbors(self, member_id: str) -> Tuple[str, ...]:
        """Cached lexicographically sorted neighbour tuple — the order
        deterministic traversals (the cascade loop) visit ties in."""
        view = self._sorted_neighbor_views.get(member_id)
        if view is None:
            view = tuple(sorted(self.neighbors_view(member_id)))
            self._sorted_neighbor_views[member_id] = view
        return view

    def trust(self, a: str, b: str) -> float:
        if not self._graph.has_edge(a, b):
            return 0.0
        return float(self._graph[a][b].get("trust", 0.5))

    def degree(self, member_id: str) -> int:
        return int(self._graph.degree(member_id))

    def edges(self) -> Iterator[Tuple[str, str, float]]:
        for a, b, data in self._graph.edges(data=True):
            yield a, b, float(data.get("trust", 0.5))

    def __contains__(self, member_id: str) -> bool:
        return member_id in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    @property
    def nx_graph(self) -> nx.Graph:
        """The underlying networkx graph (read-mostly escape hatch)."""
        return self._graph

    # ------------------------------------------------------------------
    # Compiled adjacency
    # ------------------------------------------------------------------
    def csr(self) -> CsrSnapshot:
        """The compiled CSR snapshot (cached until the next mutation)."""
        if self._csr is None:
            self._csr = self._compile_csr()
        return self._csr

    def _compile_csr(self) -> CsrSnapshot:
        ids = self.sorted_members()
        index = {member: i for i, member in enumerate(ids)}
        n = len(ids)
        m = self._graph.number_of_edges()
        src = np.empty(2 * m, dtype=np.int32)
        dst = np.empty(2 * m, dtype=np.int32)
        wts = np.empty(2 * m, dtype=np.float64)
        pos = 0
        for a, b, data in self._graph.edges(data=True):
            ia, ib = index[a], index[b]
            w = float(data.get("trust", 0.5))
            src[pos], dst[pos], wts[pos] = ia, ib, w
            src[pos + 1], dst[pos + 1], wts[pos + 1] = ib, ia, w
            pos += 2
        order = np.lexsort((dst, src))
        src, dst, wts = src[order], dst[order], wts[order]
        indptr = np.zeros(n + 1, dtype=np.int32)
        indptr[1:] = np.cumsum(np.bincount(src, minlength=n))
        return CsrSnapshot(
            ids=ids, index=index, indptr=indptr, indices=dst, weights=wts
        )

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @classmethod
    def scale_free(
        cls, n: int, attachment: int, rng: np.random.Generator,
        prefix: str = "m",
    ) -> "SocialGraph":
        """Barabási–Albert preferential attachment (hub-heavy, like real
        social platforms); trust weights ~ U(0.2, 0.9)."""
        raw = nx.barabasi_albert_graph(n, attachment, seed=int(rng.integers(2**31)))
        return cls._from_nx(raw, rng, prefix)

    @classmethod
    def small_world(
        cls, n: int, k: int, rewire_p: float, rng: np.random.Generator,
        prefix: str = "m",
    ) -> "SocialGraph":
        """Watts–Strogatz ring with rewiring (high clustering)."""
        raw = nx.watts_strogatz_graph(
            n, k, rewire_p, seed=int(rng.integers(2**31))
        )
        return cls._from_nx(raw, rng, prefix)

    @classmethod
    def random(
        cls, n: int, edge_p: float, rng: np.random.Generator,
        prefix: str = "m",
    ) -> "SocialGraph":
        """Erdős–Rényi G(n, p)."""
        raw = nx.gnp_random_graph(n, edge_p, seed=int(rng.integers(2**31)))
        return cls._from_nx(raw, rng, prefix)

    @classmethod
    def _from_nx(
        cls, raw: nx.Graph, rng: np.random.Generator, prefix: str
    ) -> "SocialGraph":
        graph = cls()
        mapping = {node: f"{prefix}{node:05d}" for node in raw.nodes}
        graph._graph.add_nodes_from(mapping[node] for node in raw.nodes)
        graph._graph.add_edges_from(
            (mapping[a], mapping[b], {"trust": float(rng.uniform(0.2, 0.9))})
            for a, b in raw.edges
        )
        graph._invalidate()
        return graph
