"""Social graphs: who knows whom, and how much they trust each other.

A thin, typed wrapper over ``networkx`` undirected graphs with per-edge
trust weights in [0, 1].  Generators cover the topologies used by the
misinformation experiment (E7): scale-free (Barabási–Albert, like real
follower graphs), small-world (Watts–Strogatz), and Erdős–Rényi.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.errors import ReproError

__all__ = ["SocialGraph"]


class SocialGraph:
    """An undirected trust-weighted social graph."""

    def __init__(self) -> None:
        self._graph = nx.Graph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_member(self, member_id: str) -> None:
        self._graph.add_node(member_id)

    def connect(self, a: str, b: str, trust: float = 0.5) -> None:
        """Create (or update) a tie with the given trust weight."""
        if a == b:
            raise ReproError(f"{a} cannot befriend themselves")
        if not 0 <= trust <= 1:
            raise ReproError(f"trust must be in [0, 1], got {trust}")
        self._graph.add_edge(a, b, trust=float(trust))

    def set_trust(self, a: str, b: str, trust: float) -> None:
        if not self._graph.has_edge(a, b):
            raise ReproError(f"no tie between {a} and {b}")
        if not 0 <= trust <= 1:
            raise ReproError(f"trust must be in [0, 1], got {trust}")
        self._graph[a][b]["trust"] = float(trust)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def members(self) -> List[str]:
        return list(self._graph.nodes)

    def neighbors(self, member_id: str) -> List[str]:
        if member_id not in self._graph:
            raise ReproError(f"{member_id} not in graph")
        return list(self._graph.neighbors(member_id))

    def trust(self, a: str, b: str) -> float:
        if not self._graph.has_edge(a, b):
            return 0.0
        return float(self._graph[a][b].get("trust", 0.5))

    def degree(self, member_id: str) -> int:
        return int(self._graph.degree(member_id))

    def edges(self) -> Iterator[Tuple[str, str, float]]:
        for a, b, data in self._graph.edges(data=True):
            yield a, b, float(data.get("trust", 0.5))

    def __contains__(self, member_id: str) -> bool:
        return member_id in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    @property
    def nx_graph(self) -> nx.Graph:
        """The underlying networkx graph (read-mostly escape hatch)."""
        return self._graph

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @classmethod
    def scale_free(
        cls, n: int, attachment: int, rng: np.random.Generator,
        prefix: str = "m",
    ) -> "SocialGraph":
        """Barabási–Albert preferential attachment (hub-heavy, like real
        social platforms); trust weights ~ U(0.2, 0.9)."""
        raw = nx.barabasi_albert_graph(n, attachment, seed=int(rng.integers(2**31)))
        return cls._from_nx(raw, rng, prefix)

    @classmethod
    def small_world(
        cls, n: int, k: int, rewire_p: float, rng: np.random.Generator,
        prefix: str = "m",
    ) -> "SocialGraph":
        """Watts–Strogatz ring with rewiring (high clustering)."""
        raw = nx.watts_strogatz_graph(
            n, k, rewire_p, seed=int(rng.integers(2**31))
        )
        return cls._from_nx(raw, rng, prefix)

    @classmethod
    def random(
        cls, n: int, edge_p: float, rng: np.random.Generator,
        prefix: str = "m",
    ) -> "SocialGraph":
        """Erdős–Rényi G(n, p)."""
        raw = nx.gnp_random_graph(n, edge_p, seed=int(rng.integers(2**31)))
        return cls._from_nx(raw, rng, prefix)

    @classmethod
    def _from_nx(
        cls, raw: nx.Graph, rng: np.random.Generator, prefix: str
    ) -> "SocialGraph":
        graph = cls()
        mapping = {node: f"{prefix}{node:05d}" for node in raw.nodes}
        for node in raw.nodes:
            graph.add_member(mapping[node])
        for a, b in raw.edges:
            graph.connect(mapping[a], mapping[b], trust=float(rng.uniform(0.2, 0.9)))
        return graph
