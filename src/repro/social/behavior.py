"""Behaviour models: how simulated members act in a world.

The governance experiments need a population with ground-truth conduct:
most members are civil, some harass, spam, or troll ("users of these
platforms face issues of misbehaviour, spam, harassment, and conflicts",
§III).  :class:`BehaviorSimulator` drives a :class:`~repro.world.World`
one epoch at a time, emitting interactions whose ``abusive`` flag is the
ground truth that moderation precision/recall is scored against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.world.interactions import Interaction, InteractionKind
from repro.world.world import World

__all__ = ["Archetype", "BehaviorProfile", "BehaviorSimulator", "standard_mix"]


class Archetype(str, enum.Enum):
    """Conduct archetypes."""

    CIVIL = "civil"
    HARASSER = "harasser"
    SPAMMER = "spammer"
    TROLL = "troll"


@dataclass(frozen=True)
class BehaviorProfile:
    """Interaction rates for one archetype.

    ``interactions_per_epoch`` is the Poisson mean of attempts;
    ``abusive_fraction`` the probability an attempt is abusive;
    ``proximity_seeking`` the probability the member targets the
    nearest avatar rather than a random one (harassers stalk).
    """

    archetype: Archetype
    interactions_per_epoch: float
    abusive_fraction: float
    proximity_seeking: float

    def __post_init__(self) -> None:
        if self.interactions_per_epoch < 0:
            raise ReproError("interactions_per_epoch must be >= 0")
        if not 0 <= self.abusive_fraction <= 1:
            raise ReproError("abusive_fraction must be in [0, 1]")
        if not 0 <= self.proximity_seeking <= 1:
            raise ReproError("proximity_seeking must be in [0, 1]")


PROFILES: Dict[Archetype, BehaviorProfile] = {
    Archetype.CIVIL: BehaviorProfile(Archetype.CIVIL, 4.0, 0.01, 0.3),
    Archetype.HARASSER: BehaviorProfile(Archetype.HARASSER, 6.0, 0.6, 0.9),
    Archetype.SPAMMER: BehaviorProfile(Archetype.SPAMMER, 12.0, 0.35, 0.1),
    Archetype.TROLL: BehaviorProfile(Archetype.TROLL, 5.0, 0.45, 0.5),
}

_CIVIL_KINDS = [
    InteractionKind.CHAT.value,
    InteractionKind.GESTURE.value,
    InteractionKind.TRADE.value,
    InteractionKind.GIFT.value,
]
_HOSTILE_KINDS = [
    InteractionKind.WHISPER.value,
    InteractionKind.TOUCH.value,
    InteractionKind.SHOUT.value,
    InteractionKind.APPROACH.value,
]


def standard_mix(
    n: int,
    rng: np.random.Generator,
    harasser_fraction: float = 0.05,
    spammer_fraction: float = 0.03,
    troll_fraction: float = 0.02,
) -> Dict[str, Archetype]:
    """Assign archetypes to ``n`` member ids (``"avatar-i"`` naming is
    up to the caller; keys here are indices as strings)."""
    total_bad = harasser_fraction + spammer_fraction + troll_fraction
    if total_bad > 1:
        raise ReproError("archetype fractions exceed 1")
    assignment: Dict[str, Archetype] = {}
    for i in range(n):
        draw = rng.random()
        if draw < harasser_fraction:
            archetype = Archetype.HARASSER
        elif draw < harasser_fraction + spammer_fraction:
            archetype = Archetype.SPAMMER
        elif draw < total_bad:
            archetype = Archetype.TROLL
        else:
            archetype = Archetype.CIVIL
        assignment[str(i)] = archetype
    return assignment


class BehaviorSimulator:
    """Drives avatars through interaction epochs in a world.

    Parameters
    ----------
    world:
        The world whose gates (bubbles, rules, sanctions) apply.
    archetypes:
        avatar_id → archetype for every driven avatar.
    move_step:
        Max per-epoch random-walk displacement.
    """

    def __init__(
        self,
        world: World,
        archetypes: Dict[str, Archetype],
        rng: np.random.Generator,
        move_step: float = 3.0,
    ):
        unknown = [a for a in archetypes if a not in world]
        if unknown:
            raise ReproError(f"avatars not in world: {unknown[:5]}")
        self._world = world
        self._archetypes = dict(archetypes)
        self._rng = rng
        self._move_step = move_step

    def archetype_of(self, avatar_id: str) -> Archetype:
        return self._archetypes.get(avatar_id, Archetype.CIVIL)

    # ------------------------------------------------------------------
    # Epoch driving
    # ------------------------------------------------------------------
    def run_epoch(self, time: float) -> List[Interaction]:
        """Move everyone, then let everyone act; returns the attempts."""
        self._move_all()
        interactions: List[Interaction] = []
        for avatar_id in sorted(self._archetypes):
            if avatar_id not in self._world:
                continue
            interactions.extend(self._act(avatar_id, time))
        return interactions

    def _move_all(self) -> None:
        for avatar_id in sorted(self._archetypes):
            if avatar_id not in self._world:
                continue
            avatar = self._world.avatar(avatar_id)
            if not avatar.can_move:
                continue
            dx, dy = self._rng.uniform(-self._move_step, self._move_step, size=2)
            x, y = avatar.position
            new_pos = (
                float(np.clip(x + dx, 0, self._world.size)),
                float(np.clip(y + dy, 0, self._world.size)),
            )
            self._world.move(avatar_id, new_pos)

    def _act(self, avatar_id: str, time: float) -> List[Interaction]:
        profile = PROFILES[self.archetype_of(avatar_id)]
        count = int(self._rng.poisson(profile.interactions_per_epoch))
        out: List[Interaction] = []
        for _ in range(count):
            target = self._pick_target(avatar_id, profile)
            if target is None:
                continue
            abusive = bool(self._rng.random() < profile.abusive_fraction)
            kinds = _HOSTILE_KINDS if abusive else _CIVIL_KINDS
            kind = kinds[int(self._rng.integers(len(kinds)))]
            out.append(
                self._world.attempt_interaction(
                    avatar_id, target, kind, time, abusive=abusive
                )
            )
        return out

    def _pick_target(self, avatar_id: str, profile: BehaviorProfile) -> Optional[str]:
        candidates: Sequence[str]
        if self._rng.random() < profile.proximity_seeking:
            nearby = self._world.nearby(avatar_id, radius=10.0)
            candidates = sorted(nearby)
        else:
            candidates = sorted(
                a for a in self._archetypes if a != avatar_id and a in self._world
            )
        if not candidates:
            return None
        return candidates[int(self._rng.integers(len(candidates)))]
