"""Misinformation propagation over social graphs (paper §IV-B, Trust).

"In the metaverse, testimonies and trust will play an even more critical
role ... Incentive systems to share trust among avatars will be key
functionality to reduce the sharing of misinformation."

The model is an ignorant–spreader–stifler (ISR) cascade, the standard
rumour variant of SIR:

* a member who *hears* a rumour from a neighbour believes-and-spreads it
  with probability ``base_share_prob × tie_trust × source_credibility``;
* ``source_credibility`` is 1 when no reputation system is wired, else
  the sharer's reputation score — the paper's proposed damper;
* spreaders stifle (stop sharing) with probability ``stifle_prob`` each
  round after spreading once.

Two implementations share the exact same PCG64 stream:

* the **loop** path (``vectorized=False``) visits spreaders in sorted
  member order and their ties in sorted neighbour order, one scalar
  Bernoulli draw per ignorant neighbour plus one stifle draw per
  spreader;
* the **vectorized** path (default) compiles the graph to a CSR
  snapshot and gathers every draw a round needs into a single
  ``rng.random(total)`` call — ``rng.random(k)`` consumes the identical
  PCG64 doubles as ``k`` scalar draws, so the two paths produce
  byte-identical cascades (reached set, timeline, rounds) at the same
  seed.  Property tests in ``tests/property/test_cascade_props.py`` pin
  this equivalence.

Benchmark E7 compares reach with credibility off vs on (liars having
earned low reputations through prior fact-check feedback);
``benchmarks/scaling.py`` gates the vectorized path ≥3× over the loop
at the 10k-member tier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.errors import ReproError
from repro.social.graph import SocialGraph

__all__ = ["SpreadState", "SpreadResult", "MisinformationModel"]

# Credibility lookup: member id → [0, 1].
CredibilityFn = Callable[[str], float]

_IGNORANT, _SPREADER, _STIFLER = np.int8(0), np.int8(1), np.int8(2)


class SpreadState(str, enum.Enum):
    IGNORANT = "ignorant"
    SPREADER = "spreader"
    STIFLER = "stifler"


@dataclass
class SpreadResult:
    """One cascade's outcome."""

    rounds: int
    reached: Set[str]
    timeline: List[int] = field(default_factory=list)  # new believers per round

    @property
    def reach(self) -> int:
        return len(self.reached)

    def reach_fraction(self, population: int) -> float:
        return self.reach / population if population else 0.0

    @property
    def peak_round(self) -> int:
        if not self.timeline:
            return 0
        return int(np.argmax(self.timeline))


class MisinformationModel:
    """ISR rumour cascade with trust- and credibility-weighted sharing.

    Parameters
    ----------
    graph:
        The social graph rumours travel on.
    base_share_prob:
        Transmissibility before trust/credibility weighting.
    stifle_prob:
        Per-round probability an active spreader goes quiet.
    credibility:
        Optional reputation lookup; None disables credibility gating
        (every source is fully believed — the paper's "bad internet").
    vectorized:
        Use the CSR round-vectorized engine (default).  ``False`` is
        the scalar escape hatch; both consume the identical rng stream.
    """

    def __init__(
        self,
        graph: SocialGraph,
        rng: np.random.Generator,
        base_share_prob: float = 0.6,
        stifle_prob: float = 0.25,
        credibility: Optional[CredibilityFn] = None,
        vectorized: bool = True,
    ):
        if not 0 <= base_share_prob <= 1:
            raise ReproError(
                f"base_share_prob must be in [0, 1], got {base_share_prob}"
            )
        if not 0 < stifle_prob <= 1:
            raise ReproError(f"stifle_prob must be in (0, 1], got {stifle_prob}")
        self._graph = graph
        self._rng = rng
        self._base = base_share_prob
        self._stifle = stifle_prob
        self._credibility = credibility
        self._vectorized = vectorized

    def spread(self, seeds: List[str], max_rounds: int = 200) -> SpreadResult:
        """Run one cascade from ``seeds`` until it dies or round cap."""
        if self._vectorized:
            return self._spread_vectorized(seeds, max_rounds)
        return self._spread_loop(seeds, max_rounds)

    # ------------------------------------------------------------------
    # Vectorized engine: one rng.random(total) per round over the CSR
    # ------------------------------------------------------------------
    def _spread_vectorized(self, seeds: List[str], max_rounds: int) -> SpreadResult:
        snap = self._graph.csr()
        index = snap.index
        unknown = [s for s in seeds if s not in index]
        if unknown:
            raise ReproError(f"seed(s) not in graph: {unknown[:5]}")
        ids = snap.ids
        indptr, indices, weights = snap.indptr, snap.indices, snap.weights
        state = np.zeros(snap.n_members, dtype=np.int8)
        seed_idx = np.array(sorted({index[s] for s in seeds}), dtype=np.int64)
        state[seed_idx] = _SPREADER
        reached: Set[str] = set(seeds)
        timeline: List[int] = [len(seeds)]

        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            spreaders = np.flatnonzero(state == _SPREADER)
            if spreaders.size == 0:
                break

            # Gather every (spreader, neighbour) pair of the round in
            # sorted-spreader-then-sorted-neighbour order — exactly the
            # loop path's visit order.
            starts = indptr[spreaders].astype(np.int64)
            counts = (indptr[spreaders + 1] - indptr[spreaders]).astype(np.int64)
            total = int(counts.sum())
            if total:
                group_starts = np.cumsum(counts) - counts
                flat = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(group_starts, counts)
                    + np.repeat(starts, counts)
                )
                nbrs = indices[flat]
                tie_w = weights[flat]
                owner = np.repeat(
                    np.arange(spreaders.size, dtype=np.int64), counts
                )
                ig = state[nbrs] == _IGNORANT
                nbrs_ig, tie_ig, owner_ig = nbrs[ig], tie_w[ig], owner[ig]
            else:
                nbrs_ig = np.empty(0, dtype=np.int32)
                tie_ig = np.empty(0, dtype=np.float64)
                owner_ig = np.empty(0, dtype=np.int64)

            if self._credibility is None:
                cred = None
            else:
                cred = np.clip(
                    np.array(
                        [float(self._credibility(ids[s])) for s in spreaders],
                        dtype=np.float64,
                    ),
                    0.0,
                    1.0,
                )

            # Draw layout per spreader: k ignorant-neighbour draws, then
            # one stifle draw — the same doubles, in the same order, the
            # scalar loop consumes.
            k = np.bincount(owner_ig, minlength=spreaders.size)
            draw_starts = np.cumsum(k + 1) - (k + 1)
            draws = self._rng.random(int(k.sum()) + spreaders.size)

            if nbrs_ig.size:
                k_starts = np.cumsum(k) - k
                within = np.arange(nbrs_ig.size, dtype=np.int64) - np.repeat(
                    k_starts, k
                )
                share_draws = draws[draw_starts[owner_ig] + within]
                p = self._base * tie_ig
                if cred is not None:
                    p = p * cred[owner_ig]
                hits = nbrs_ig[share_draws < p]
            else:
                hits = nbrs_ig
            stifled = draws[draw_starts + k] < self._stifle
            state[spreaders[stifled]] = _STIFLER

            new_idx = np.unique(hits)
            state[new_idx] = _SPREADER
            reached.update(ids[i] for i in new_idx)
            timeline.append(int(new_idx.size))
            if new_idx.size == 0 and not (state == _SPREADER).any():
                break
        return SpreadResult(rounds=rounds, reached=reached, timeline=timeline)

    # ------------------------------------------------------------------
    # Scalar engine: the reference loop (escape hatch)
    # ------------------------------------------------------------------
    def _spread_loop(self, seeds: List[str], max_rounds: int) -> SpreadResult:
        members = self._graph.sorted_members()
        member_set = set(members)
        unknown = [s for s in seeds if s not in member_set]
        if unknown:
            raise ReproError(f"seed(s) not in graph: {unknown[:5]}")
        state: Dict[str, SpreadState] = {m: SpreadState.IGNORANT for m in members}
        for seed in seeds:
            state[seed] = SpreadState.SPREADER
        reached: Set[str] = set(seeds)
        timeline: List[int] = [len(seeds)]

        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            # ``members`` is sorted once per cascade; filtering preserves
            # that order, so no per-round re-sort.
            spreaders = [m for m in members if state[m] is SpreadState.SPREADER]
            if not spreaders:
                break
            new_believers: List[str] = []
            for spreader in spreaders:
                credibility = (
                    1.0
                    if self._credibility is None
                    else float(np.clip(self._credibility(spreader), 0.0, 1.0))
                )
                for neighbor in self._graph.sorted_neighbors(spreader):
                    if state[neighbor] is not SpreadState.IGNORANT:
                        continue
                    p = self._base * self._graph.trust(spreader, neighbor) * credibility
                    if self._rng.random() < p:
                        new_believers.append(neighbor)
                # Stifling check after this round of sharing.
                if self._rng.random() < self._stifle:
                    state[spreader] = SpreadState.STIFLER
            for believer in new_believers:
                if state[believer] is SpreadState.IGNORANT:
                    state[believer] = SpreadState.SPREADER
                    reached.add(believer)
            timeline.append(len(set(new_believers)))
            if not new_believers and all(
                state[m] is not SpreadState.SPREADER for m in members
            ):
                break
        return SpreadResult(rounds=rounds, reached=reached, timeline=timeline)

    def reach_samples(
        self, seeds: List[str], repetitions: int, max_rounds: int = 200
    ) -> List[float]:
        """Per-cascade reach fractions over repeated cascades."""
        if repetitions < 1:
            raise ReproError(f"repetitions must be >= 1, got {repetitions}")
        population = len(self._graph)
        return [
            self.spread(seeds, max_rounds).reach_fraction(population)
            for _ in range(repetitions)
        ]

    def mean_reach(
        self, seeds: List[str], repetitions: int, max_rounds: int = 200
    ) -> float:
        """Average reach fraction over repeated cascades."""
        samples = self.reach_samples(seeds, repetitions, max_rounds)
        return sum(samples) / len(samples)
