"""Misinformation propagation over social graphs (paper §IV-B, Trust).

"In the metaverse, testimonies and trust will play an even more critical
role ... Incentive systems to share trust among avatars will be key
functionality to reduce the sharing of misinformation."

The model is an ignorant–spreader–stifler (ISR) cascade, the standard
rumour variant of SIR:

* a member who *hears* a rumour from a neighbour believes-and-spreads it
  with probability ``base_share_prob × tie_trust × source_credibility``;
* ``source_credibility`` is 1 when no reputation system is wired, else
  the sharer's reputation score — the paper's proposed damper;
* spreaders stifle (stop sharing) with probability ``stifle_prob`` each
  round after spreading once.

Benchmark E7 compares reach with credibility off vs on (liars having
earned low reputations through prior fact-check feedback).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.errors import ReproError
from repro.social.graph import SocialGraph

__all__ = ["SpreadState", "SpreadResult", "MisinformationModel"]

# Credibility lookup: member id → [0, 1].
CredibilityFn = Callable[[str], float]


class SpreadState(str, enum.Enum):
    IGNORANT = "ignorant"
    SPREADER = "spreader"
    STIFLER = "stifler"


@dataclass
class SpreadResult:
    """One cascade's outcome."""

    rounds: int
    reached: Set[str]
    timeline: List[int] = field(default_factory=list)  # new believers per round

    @property
    def reach(self) -> int:
        return len(self.reached)

    def reach_fraction(self, population: int) -> float:
        return self.reach / population if population else 0.0

    @property
    def peak_round(self) -> int:
        if not self.timeline:
            return 0
        return int(np.argmax(self.timeline))


class MisinformationModel:
    """ISR rumour cascade with trust- and credibility-weighted sharing.

    Parameters
    ----------
    graph:
        The social graph rumours travel on.
    base_share_prob:
        Transmissibility before trust/credibility weighting.
    stifle_prob:
        Per-round probability an active spreader goes quiet.
    credibility:
        Optional reputation lookup; None disables credibility gating
        (every source is fully believed — the paper's "bad internet").
    """

    def __init__(
        self,
        graph: SocialGraph,
        rng: np.random.Generator,
        base_share_prob: float = 0.6,
        stifle_prob: float = 0.25,
        credibility: Optional[CredibilityFn] = None,
    ):
        if not 0 <= base_share_prob <= 1:
            raise ReproError(
                f"base_share_prob must be in [0, 1], got {base_share_prob}"
            )
        if not 0 < stifle_prob <= 1:
            raise ReproError(f"stifle_prob must be in (0, 1], got {stifle_prob}")
        self._graph = graph
        self._rng = rng
        self._base = base_share_prob
        self._stifle = stifle_prob
        self._credibility = credibility

    def spread(self, seeds: List[str], max_rounds: int = 200) -> SpreadResult:
        """Run one cascade from ``seeds`` until it dies or round cap."""
        members = set(self._graph.members())
        unknown = [s for s in seeds if s not in members]
        if unknown:
            raise ReproError(f"seed(s) not in graph: {unknown[:5]}")
        state: Dict[str, SpreadState] = {m: SpreadState.IGNORANT for m in members}
        for seed in seeds:
            state[seed] = SpreadState.SPREADER
        reached: Set[str] = set(seeds)
        timeline: List[int] = [len(seeds)]

        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            spreaders = sorted(
                m for m, s in state.items() if s is SpreadState.SPREADER
            )
            if not spreaders:
                break
            new_believers: List[str] = []
            for spreader in spreaders:
                credibility = (
                    1.0
                    if self._credibility is None
                    else float(np.clip(self._credibility(spreader), 0.0, 1.0))
                )
                for neighbor in sorted(self._graph.neighbors(spreader)):
                    if state[neighbor] is not SpreadState.IGNORANT:
                        continue
                    p = self._base * self._graph.trust(spreader, neighbor) * credibility
                    if self._rng.random() < p:
                        new_believers.append(neighbor)
                # Stifling check after this round of sharing.
                if self._rng.random() < self._stifle:
                    state[spreader] = SpreadState.STIFLER
            for believer in new_believers:
                if state[believer] is SpreadState.IGNORANT:
                    state[believer] = SpreadState.SPREADER
                    reached.add(believer)
            timeline.append(len(set(new_believers)))
            if not new_believers and all(
                state[m] is not SpreadState.SPREADER for m in members
            ):
                break
        return SpreadResult(rounds=rounds, reached=reached, timeline=timeline)

    def mean_reach(
        self, seeds: List[str], repetitions: int, max_rounds: int = 200
    ) -> float:
        """Average reach fraction over repeated cascades."""
        if repetitions < 1:
            raise ReproError(f"repetitions must be >= 1, got {repetitions}")
        population = len(self._graph)
        total = 0.0
        for _ in range(repetitions):
            total += self.spread(seeds, max_rounds).reach_fraction(population)
        return total / repetitions
