"""Social substrate: graphs, behaviour, misinformation, digital twins.

Trust-weighted social graphs with standard topology generators,
archetype-driven behaviour simulation with ground-truth misconduct,
the ISR misinformation cascade with reputation-gated credibility
(paper §IV-B "Trust"), and physical–virtual digital twins with
ledger-anchorable provenance (§IV-A).
"""

from repro.social.behavior import (
    Archetype,
    BehaviorProfile,
    BehaviorSimulator,
    standard_mix,
)
from repro.social.graph import CsrSnapshot, SocialGraph
from repro.social.misinformation import (
    MisinformationModel,
    SpreadResult,
    SpreadState,
)
from repro.social.twins import DigitalTwin, PhysicalObject, TwinRegistry

__all__ = [
    "Archetype",
    "BehaviorProfile",
    "BehaviorSimulator",
    "standard_mix",
    "CsrSnapshot",
    "SocialGraph",
    "MisinformationModel",
    "SpreadResult",
    "SpreadState",
    "DigitalTwin",
    "PhysicalObject",
    "TwinRegistry",
]
