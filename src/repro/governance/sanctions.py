"""Sanctions and incentives (paper §III-D).

"Online platforms should consider tools to deal with players'
misbehaviour (i.e., punitive approaches) and tools for encouraging
positive behaviours (i.e., preventive approaches)."

* :class:`GraduatedSanctionPolicy` — the punitive ladder: upheld cases
  escalate warn → mute → suspend → ban, applied to the world and
  (optionally) mirrored into reputation.
* :class:`IncentiveSystem` — the preventive side: positive behaviour
  earns points redeemable as tokens/reputation, with streak bonuses for
  sustained good conduct.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import GovernanceError
from repro.world.avatar import AvatarStatus
from repro.world.world import World

__all__ = ["SanctionLevel", "SanctionRecord", "GraduatedSanctionPolicy", "IncentiveSystem"]


class SanctionLevel(int, enum.Enum):
    """The punitive ladder, in escalation order."""

    WARNING = 0
    MUTE = 1
    SUSPENSION = 2
    BAN = 3

    @property
    def avatar_status(self) -> AvatarStatus:
        return {
            SanctionLevel.WARNING: AvatarStatus.ACTIVE,
            SanctionLevel.MUTE: AvatarStatus.MUTED,
            SanctionLevel.SUSPENSION: AvatarStatus.SUSPENDED,
            SanctionLevel.BAN: AvatarStatus.BANNED,
        }[self]


@dataclass(frozen=True)
class SanctionRecord:
    """One applied sanction."""

    offender: str
    level: SanctionLevel
    time: float
    case_id: Optional[str]
    reason: str


class GraduatedSanctionPolicy:
    """Escalating sanctions per offender.

    ``thresholds`` maps upheld-offence counts to levels; the default
    ladder is 1 → warning, 2 → mute, 3 → suspension, 4+ → ban.

    The policy is the single writer of avatar status (governance owns
    sanctions; the world merely enforces them).  ``world`` may be None
    for population-scale runs that track offences and sanction records
    without materialising avatars.
    """

    DEFAULT_THRESHOLDS: Tuple[Tuple[int, SanctionLevel], ...] = (
        (1, SanctionLevel.WARNING),
        (2, SanctionLevel.MUTE),
        (3, SanctionLevel.SUSPENSION),
        (4, SanctionLevel.BAN),
    )

    def __init__(
        self,
        world: Optional[World] = None,
        thresholds: Optional[Tuple[Tuple[int, SanctionLevel], ...]] = None,
        reputation_hook: Optional[Callable[[str, float], None]] = None,
    ):
        self._world = world
        self._thresholds = (
            self.DEFAULT_THRESHOLDS if thresholds is None else thresholds
        )
        if not self._thresholds:
            raise GovernanceError("thresholds must be non-empty")
        self._offences: Dict[str, int] = {}
        self._records: List[SanctionRecord] = []
        self._reputation_hook = reputation_hook

    def offence_count(self, offender: str) -> int:
        return self._offences.get(offender, 0)

    def level_for(self, offence_count: int) -> SanctionLevel:
        """The ladder rung for the given upheld-offence count."""
        level = self._thresholds[0][1]
        for threshold, candidate in self._thresholds:
            if offence_count >= threshold:
                level = candidate
        return level

    def apply(
        self,
        offender: str,
        time: float,
        case_id: Optional[str] = None,
        reason: str = "",
    ) -> SanctionRecord:
        """Record an upheld offence and apply the resulting sanction."""
        count = self.offence_count(offender) + 1
        self._offences[offender] = count
        level = self.level_for(count)
        if self._world is not None and offender in self._world:
            self._world.set_status(offender, level.avatar_status)
        record = SanctionRecord(
            offender=offender, level=level, time=time, case_id=case_id, reason=reason
        )
        self._records.append(record)
        if self._reputation_hook is not None:
            # Harsher rungs cost more reputation.
            self._reputation_hook(offender, -(1.0 + level.value))
        return record

    @property
    def records(self) -> List[SanctionRecord]:
        return list(self._records)

    def sanctions_of(self, offender: str) -> List[SanctionRecord]:
        return [r for r in self._records if r.offender == offender]

    def banned(self) -> List[str]:
        return sorted(
            {
                r.offender
                for r in self._records
                if r.level is SanctionLevel.BAN
            }
        )


class IncentiveSystem:
    """Preventive governance: reward positive behaviour.

    Members accrue points for positive acts (helpful interactions,
    upheld-report filing, content contributions); consecutive active
    epochs build a streak multiplier.  Points are read by experiments
    and can be redeemed through a payout hook (e.g. token mints).
    """

    def __init__(
        self,
        base_reward: float = 1.0,
        streak_bonus: float = 0.1,
        max_multiplier: float = 2.0,
        payout_hook: Optional[Callable[[str, float], None]] = None,
    ):
        if base_reward < 0 or streak_bonus < 0:
            raise GovernanceError("rewards must be >= 0")
        if max_multiplier < 1:
            raise GovernanceError(
                f"max_multiplier must be >= 1, got {max_multiplier}"
            )
        self._base = base_reward
        self._bonus = streak_bonus
        self._cap = max_multiplier
        self._points: Dict[str, float] = {}
        self._streaks: Dict[str, int] = {}
        self._active_this_epoch: Dict[str, bool] = {}
        self._payout_hook = payout_hook

    def reward(self, member: str, kind: str = "positive-act", weight: float = 1.0) -> float:
        """Grant points for one positive act; returns points granted."""
        if weight < 0:
            raise GovernanceError(f"weight must be >= 0, got {weight}")
        multiplier = min(self._cap, 1.0 + self._bonus * self._streaks.get(member, 0))
        granted = self._base * weight * multiplier
        self._points[member] = self._points.get(member, 0.0) + granted
        self._active_this_epoch[member] = True
        if self._payout_hook is not None:
            self._payout_hook(member, granted)
        return granted

    def end_epoch(self) -> None:
        """Advance streaks: active members extend, inactive reset."""
        for member in set(self._streaks) | set(self._active_this_epoch):
            if self._active_this_epoch.get(member):
                self._streaks[member] = self._streaks.get(member, 0) + 1
            else:
                self._streaks[member] = 0
        self._active_this_epoch = {}

    def points_of(self, member: str) -> float:
        return self._points.get(member, 0.0)

    def streak_of(self, member: str) -> int:
        return self._streaks.get(member, 0)

    def leaderboard(self, top_n: int = 10) -> List[Tuple[str, float]]:
        ordered = sorted(self._points.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered[:top_n]
