"""Community governance processes beyond case review (paper §III-C/D).

"The governance layer should include a broad spectrum of processes
(juries, formal debates) and interact with other governance systems."

* :class:`FormalDebate` — a structured pro/con debate whose rounds move
  undecided participants, producing a documented collective position
  (the deliberative input a DAO vote can follow).
* :class:`SelfGovernanceBoard` — MMOG-style community self-rule
  (Humphreys [18]): members propose norms, second them, and adopted
  norms are exported as rule-engine rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import GovernanceError
from repro.governance.rules import Rule, RuleEngine

__all__ = ["DebateRound", "FormalDebate", "CommunityNorm", "SelfGovernanceBoard"]


@dataclass(frozen=True)
class DebateRound:
    """One round's state: counts after arguments were heard."""

    round_index: int
    pro: int
    contra: int
    undecided: int


class FormalDebate:
    """A multi-round structured debate.

    Participants start with a stance (pro/contra/undecided).  Each round,
    the side with more supporters sways each undecided participant with
    probability proportional to its margin (social-proof dynamics);
    participants never flip sides outright, matching the empirical
    stickiness of expressed positions.
    """

    def __init__(
        self,
        topic: str,
        participants: List[str],
        rng: np.random.Generator,
        initial_pro: float = 0.3,
        initial_contra: float = 0.3,
    ):
        if not participants:
            raise GovernanceError("a debate needs participants")
        if initial_pro + initial_contra > 1:
            raise GovernanceError("initial stance fractions exceed 1")
        self.topic = topic
        self._rng = rng
        self._stances: Dict[str, str] = {}
        for participant in participants:
            draw = rng.random()
            if draw < initial_pro:
                self._stances[participant] = "pro"
            elif draw < initial_pro + initial_contra:
                self._stances[participant] = "contra"
            else:
                self._stances[participant] = "undecided"
        self.rounds: List[DebateRound] = [self._snapshot(0)]

    def _snapshot(self, index: int) -> DebateRound:
        values = list(self._stances.values())
        return DebateRound(
            round_index=index,
            pro=values.count("pro"),
            contra=values.count("contra"),
            undecided=values.count("undecided"),
        )

    def run_round(self) -> DebateRound:
        """One round of arguments; returns the new state."""
        current = self.rounds[-1]
        decided = current.pro + current.contra
        if decided == 0:
            snapshot = self._snapshot(len(self.rounds))
            self.rounds.append(snapshot)
            return snapshot
        pro_pull = current.pro / decided
        for participant, stance in sorted(self._stances.items()):
            if stance != "undecided":
                continue
            if self._rng.random() < 0.4:  # listens this round
                self._stances[participant] = (
                    "pro" if self._rng.random() < pro_pull else "contra"
                )
        snapshot = self._snapshot(len(self.rounds))
        self.rounds.append(snapshot)
        return snapshot

    def run(self, rounds: int) -> DebateRound:
        for _ in range(rounds):
            self.run_round()
        return self.rounds[-1]

    @property
    def outcome(self) -> str:
        """'pro', 'contra', or 'tied' by final counts."""
        final = self.rounds[-1]
        if final.pro > final.contra:
            return "pro"
        if final.contra > final.pro:
            return "contra"
        return "tied"

    def stance_of(self, participant: str) -> str:
        if participant not in self._stances:
            raise GovernanceError(f"{participant} not in debate")
        return self._stances[participant]


@dataclass
class CommunityNorm:
    """A member-proposed rule of conduct."""

    norm_id: str
    proposer: str
    description: str
    rule_factory: Callable[[], Rule]
    seconds: int = 0
    adopted: bool = False


class SelfGovernanceBoard:
    """Bottom-up norm adoption: propose → second → adopt → enforce.

    Norms reaching ``seconds_required`` seconds are adopted and their
    rule is installed into the community's rule engine — community
    consensus becoming code, the §III-A loop closed from below.
    """

    def __init__(self, rule_engine: RuleEngine, seconds_required: int = 3):
        if seconds_required < 1:
            raise GovernanceError(
                f"seconds_required must be >= 1, got {seconds_required}"
            )
        self._engine = rule_engine
        self._required = seconds_required
        self._norms: Dict[str, CommunityNorm] = {}
        self._seconded_by: Dict[str, set] = {}
        self._counter = 0

    def propose_norm(
        self, proposer: str, description: str, rule_factory: Callable[[], Rule]
    ) -> CommunityNorm:
        norm = CommunityNorm(
            norm_id=f"norm-{self._counter:04d}",
            proposer=proposer,
            description=description,
            rule_factory=rule_factory,
        )
        self._counter += 1
        self._norms[norm.norm_id] = norm
        self._seconded_by[norm.norm_id] = set()
        return norm

    def second(self, norm_id: str, member: str) -> bool:
        """Support a norm; returns True if this second adopted it."""
        norm = self._norm(norm_id)
        if norm.adopted:
            raise GovernanceError(f"norm {norm_id} already adopted")
        if member == norm.proposer:
            raise GovernanceError("proposers cannot second their own norm")
        supporters = self._seconded_by[norm_id]
        if member in supporters:
            return False
        supporters.add(member)
        norm.seconds = len(supporters)
        if norm.seconds >= self._required:
            norm.adopted = True
            self._engine.add_rule(norm.rule_factory())
            return True
        return False

    def norms(self, adopted_only: bool = False) -> List[CommunityNorm]:
        out = list(self._norms.values())
        if adopted_only:
            out = [n for n in out if n.adopted]
        return out

    def _norm(self, norm_id: str) -> CommunityNorm:
        if norm_id not in self._norms:
            raise GovernanceError(f"no norm {norm_id}")
        return self._norms[norm_id]
