"""Portable governance modules (paper §III-C, after Schneider et al. [17]).

"This modularity can enable the development of portable tools that can
be adapted to different platforms and use cases."  Portability needs a
platform-independent representation: :func:`export_rules` serialises a
rule engine's built-in rules to a plain-dict **spec**, and
:func:`import_rules` instantiates the same governance on another
platform.  Block lists are deliberately *not* exported by default —
they are personal data, and porting them across platforms would be a
§II transfer requiring its own lawful basis.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import GovernanceError
from repro.governance.rules import (
    BlockListRule,
    ContentFilterRule,
    KindRestrictionRule,
    RateLimitRule,
    Rule,
    RuleEngine,
)

__all__ = ["export_rules", "import_rules", "rule_to_spec", "rule_from_spec"]

SPEC_VERSION = 1


def rule_to_spec(rule: Rule) -> Optional[Dict[str, Any]]:
    """Serialise one built-in rule to a spec dict.

    Returns None for rules that must not travel (block lists carry
    personal data) or for unknown custom rules (the caller must handle
    those explicitly).
    """
    if isinstance(rule, RateLimitRule):
        return {
            "kind": "rate-limit",
            "max_events": rule._max,
            "window": rule._window,
        }
    if isinstance(rule, KindRestrictionRule):
        return {
            "kind": "kind-restriction",
            "forbidden_kinds": sorted(rule._forbidden),
        }
    if isinstance(rule, ContentFilterRule):
        return {
            "kind": "content-filter",
            "banned_tokens": sorted(rule._banned),
        }
    if isinstance(rule, BlockListRule):
        return None  # personal data: never exported by default
    return None


def rule_from_spec(spec: Dict[str, Any]) -> Rule:
    """Instantiate one rule from its spec.

    Raises
    ------
    GovernanceError
        On unknown kinds or malformed specs.
    """
    kind = spec.get("kind")
    try:
        if kind == "rate-limit":
            return RateLimitRule(
                max_events=int(spec["max_events"]),
                window=float(spec["window"]),
            )
        if kind == "kind-restriction":
            return KindRestrictionRule(list(spec["forbidden_kinds"]))
        if kind == "content-filter":
            return ContentFilterRule(list(spec["banned_tokens"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise GovernanceError(f"malformed rule spec {spec!r}: {exc}") from exc
    raise GovernanceError(f"unknown rule kind {kind!r}")


def export_rules(engine: RuleEngine) -> Dict[str, Any]:
    """Serialise an engine's portable rules into a versioned bundle."""
    specs: List[Dict[str, Any]] = []
    skipped: List[str] = []
    for rule in engine._rules:
        spec = rule_to_spec(rule)
        if spec is None:
            skipped.append(rule.name)
        else:
            specs.append(spec)
    return {"version": SPEC_VERSION, "rules": specs, "not_exported": skipped}


def import_rules(bundle: Dict[str, Any], engine: Optional[RuleEngine] = None) -> RuleEngine:
    """Install a bundle's rules into ``engine`` (or a fresh one).

    Raises
    ------
    GovernanceError
        On version mismatch, malformed bundles, or rule-name clashes
        with the target engine.
    """
    if bundle.get("version") != SPEC_VERSION:
        raise GovernanceError(
            f"unsupported governance bundle version {bundle.get('version')!r}"
        )
    rules = bundle.get("rules")
    if not isinstance(rules, list):
        raise GovernanceError("bundle has no rule list")
    target = engine if engine is not None else RuleEngine()
    for spec in rules:
        target.add_rule(rule_from_spec(spec))
    return target
