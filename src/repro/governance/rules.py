"""Code-as-law: the rule engine (paper §III-A, after Lessig [19]).

"We can see the software code of the metaverse as an analogy to our
physical laws of nature, where code can constrain the shape of the
metaverse."  A :class:`RuleEngine` is a prioritized list of
:class:`Rule` objects consulted by the world before delivering any
interaction; the first refusing rule blocks it.  Rules are *code*: they
act on observable interaction fields only (never on the hidden
ground-truth ``abusive`` flag — inferring abuse is moderation's job).

Built-in rules cover the platform policies the paper mentions:

* :class:`RateLimitRule` — spam control by per-initiator token bucket.
* :class:`KindRestrictionRule` — globally disabled interaction kinds
  (e.g. a world where ``touch`` simply does not exist).
* :class:`BlockListRule` — per-member "never contact me again" lists.
* :class:`ContentFilterRule` — banned-token content filter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import GovernanceError
from repro.world.interactions import Interaction

__all__ = [
    "Rule",
    "RuleEngine",
    "RateLimitRule",
    "KindRestrictionRule",
    "BlockListRule",
    "ContentFilterRule",
]


class Rule:
    """Base rule: :meth:`permits` returns True to allow."""

    name = "abstract"

    def permits(self, interaction: Interaction) -> bool:
        raise NotImplementedError


class RuleEngine:
    """Ordered rule list implementing the world's ``rule_check`` hook."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None):
        self._rules: List[Rule] = list(rules or [])
        self.blocked_by_rule: Dict[str, int] = {}

    def add_rule(self, rule: Rule) -> None:
        if any(r.name == rule.name for r in self._rules):
            raise GovernanceError(f"rule {rule.name!r} already installed")
        self._rules.append(rule)

    def remove_rule(self, name: str) -> bool:
        """Uninstall by name (module swap in the modular framework)."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.name != name]
        return len(self._rules) != before

    def rules(self) -> List[str]:
        return [r.name for r in self._rules]

    def check(self, interaction: Interaction) -> Tuple[bool, Optional[str]]:
        """The world's gate: (allowed, blocking_rule_name)."""
        for rule in self._rules:
            if not rule.permits(interaction):
                self.blocked_by_rule[rule.name] = (
                    self.blocked_by_rule.get(rule.name, 0) + 1
                )
                return False, rule.name
        return True, None

    # Convenience so a RuleEngine can be passed directly as rule_check.
    __call__ = check


class RateLimitRule(Rule):
    """At most ``max_events`` interactions per initiator per ``window``
    time units (sliding window)."""

    name = "rate-limit"

    def __init__(self, max_events: int, window: float):
        if max_events < 1:
            raise GovernanceError(f"max_events must be >= 1, got {max_events}")
        if window <= 0:
            raise GovernanceError(f"window must be positive, got {window}")
        self._max = max_events
        self._window = window
        self._history: Dict[str, Deque[float]] = {}

    def permits(self, interaction: Interaction) -> bool:
        history = self._history.setdefault(interaction.initiator, deque())
        cutoff = interaction.time - self._window
        while history and history[0] < cutoff:
            history.popleft()
        if len(history) >= self._max:
            return False
        history.append(interaction.time)
        return True


class KindRestrictionRule(Rule):
    """Globally forbidden interaction kinds."""

    name = "kind-restriction"

    def __init__(self, forbidden_kinds: Iterable[str]):
        self._forbidden: Set[str] = set(forbidden_kinds)
        if not self._forbidden:
            raise GovernanceError("forbidden_kinds must be non-empty")

    def permits(self, interaction: Interaction) -> bool:
        return interaction.kind not in self._forbidden


class BlockListRule(Rule):
    """Per-member block lists: a blocked initiator never reaches the
    member who blocked them."""

    name = "block-list"

    def __init__(self) -> None:
        self._blocked: Dict[str, Set[str]] = {}

    def block(self, member: str, blocked: str) -> None:
        if member == blocked:
            raise GovernanceError(f"{member} cannot block themselves")
        self._blocked.setdefault(member, set()).add(blocked)

    def unblock(self, member: str, blocked: str) -> None:
        self._blocked.get(member, set()).discard(blocked)

    def is_blocked(self, member: str, initiator: str) -> bool:
        return initiator in self._blocked.get(member, set())

    def permits(self, interaction: Interaction) -> bool:
        return not self.is_blocked(interaction.target, interaction.initiator)


class ContentFilterRule(Rule):
    """Banned-token filter over interaction content (word lists are the
    crude automation Facebook/Twitter-style platforms deploy, §III)."""

    name = "content-filter"

    def __init__(self, banned_tokens: Iterable[str]):
        self._banned = {token.lower() for token in banned_tokens}
        if not self._banned:
            raise GovernanceError("banned_tokens must be non-empty")

    def permits(self, interaction: Interaction) -> bool:
        content = interaction.content.lower()
        return not any(token in content for token in self._banned)
