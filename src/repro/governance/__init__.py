"""Governance substrate (paper §III).

Code-as-law rule engine with spam/content/block rules, the moderation
pipeline (noisy automated classifier, user reports, human moderators,
community juries) scored against ground truth, graduated sanctions with
a preventive incentive system, formal debates, and bottom-up community
norm adoption.
"""

from repro.governance.appeals import Appeal, AppealsCourt
from repro.governance.community import (
    CommunityNorm,
    DebateRound,
    FormalDebate,
    SelfGovernanceBoard,
)
from repro.governance.moderation import (
    AbuseClassifier,
    CaseSource,
    CaseStatus,
    HumanModeratorPool,
    Jury,
    ModerationCase,
    ModerationScore,
    ModerationService,
    ReportDesk,
)
from repro.governance.portability import export_rules, import_rules
from repro.governance.rules import (
    BlockListRule,
    ContentFilterRule,
    KindRestrictionRule,
    RateLimitRule,
    Rule,
    RuleEngine,
)
from repro.governance.sanctions import (
    GraduatedSanctionPolicy,
    IncentiveSystem,
    SanctionLevel,
    SanctionRecord,
)

__all__ = [
    "Appeal",
    "AppealsCourt",
    "CommunityNorm",
    "DebateRound",
    "FormalDebate",
    "SelfGovernanceBoard",
    "AbuseClassifier",
    "CaseSource",
    "CaseStatus",
    "HumanModeratorPool",
    "Jury",
    "ModerationCase",
    "ModerationScore",
    "ModerationService",
    "ReportDesk",
    "export_rules",
    "import_rules",
    "BlockListRule",
    "ContentFilterRule",
    "KindRestrictionRule",
    "RateLimitRule",
    "Rule",
    "RuleEngine",
    "GraduatedSanctionPolicy",
    "IncentiveSystem",
    "SanctionLevel",
    "SanctionRecord",
]
