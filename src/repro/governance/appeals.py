"""Appeals: due process for sanctions (paper §III-D).

The Minecraft community study the paper cites found that punitive tools
need legitimacy mechanisms; automated moderation especially (E6 shows
its precision problem) wrongly sanctions innocents.  The appeals court
closes the loop:

* a sanctioned member files an appeal against a specific sanction;
* a community jury re-examines the underlying interaction (with fresh
  eyes — an independent accuracy draw);
* an upheld appeal reverses the sanction: the offence is expunged, the
  avatar's status is recomputed from the remaining offence count, and a
  reputation repair hook undoes the damage.

:class:`AppealsCourt` wraps a :class:`GraduatedSanctionPolicy` and the
world it sanctions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import GovernanceError
from repro.governance.sanctions import GraduatedSanctionPolicy, SanctionRecord
from repro.world.world import World

__all__ = ["Appeal", "AppealsCourt"]


@dataclass
class Appeal:
    """One appeal against one sanction."""

    appeal_id: str
    appellant: str
    sanction: SanctionRecord
    filed_at: float
    decided_at: Optional[float] = None
    granted: Optional[bool] = None

    @property
    def is_pending(self) -> bool:
        return self.granted is None


class AppealsCourt:
    """Community review of applied sanctions.

    Parameters
    ----------
    world:
        The world whose avatar statuses get corrected.
    sanctions:
        The policy whose records are appealable.
    rng:
        Randomness for the jury draw.
    juror_accuracy:
        Probability each juror judges the underlying ground truth
        correctly (the court sees the case afresh).
    jury_size:
        Odd panel size.
    reputation_repair:
        Optional hook called with (member, amount) to restore reputation
        lost to a reversed sanction.
    """

    def __init__(
        self,
        world: World,
        sanctions: GraduatedSanctionPolicy,
        rng: np.random.Generator,
        juror_accuracy: float = 0.85,
        jury_size: int = 5,
        reputation_repair: Optional[Callable[[str, float], None]] = None,
    ):
        if jury_size < 1 or jury_size % 2 == 0:
            raise GovernanceError(f"jury_size must be odd, got {jury_size}")
        if not 0 <= juror_accuracy <= 1:
            raise GovernanceError(
                f"juror_accuracy must be in [0, 1], got {juror_accuracy}"
            )
        self._world = world
        self._sanctions = sanctions
        self._rng = rng
        self._accuracy = juror_accuracy
        self._jury_size = jury_size
        self._repair = reputation_repair
        self._appeals: List[Appeal] = []
        self._counter = itertools.count()
        self._appealed_sanctions: set = set()

    # ------------------------------------------------------------------
    # Filing
    # ------------------------------------------------------------------
    def file_appeal(self, sanction: SanctionRecord, time: float) -> Appeal:
        """File an appeal; one appeal per sanction record.

        Raises
        ------
        GovernanceError
            On double appeals of the same sanction.
        """
        key = (
            sanction.case_id
            if sanction.case_id is not None
            else (sanction.offender, sanction.time, sanction.level)
        )
        if key in self._appealed_sanctions:
            raise GovernanceError(
                f"sanction of {sanction.offender[:12]} at t={sanction.time} "
                "already appealed"
            )
        self._appealed_sanctions.add(key)
        appeal = Appeal(
            appeal_id=f"appeal-{next(self._counter):05d}",
            appellant=sanction.offender,
            sanction=sanction,
            filed_at=time,
        )
        self._appeals.append(appeal)
        return appeal

    def pending(self) -> List[Appeal]:
        return [a for a in self._appeals if a.is_pending]

    @property
    def appeals(self) -> List[Appeal]:
        return list(self._appeals)

    # ------------------------------------------------------------------
    # Review
    # ------------------------------------------------------------------
    def review(self, appeal: Appeal, was_actually_abusive: bool, time: float) -> bool:
        """Jury re-examination; returns True if the appeal is granted.

        ``was_actually_abusive`` is the ground truth of the underlying
        interaction (the experiment harness supplies it; jurors only see
        it through their noisy accuracy).
        """
        if not appeal.is_pending:
            raise GovernanceError(f"appeal {appeal.appeal_id} already decided")
        correct_votes = int(
            (self._rng.random(self._jury_size) < self._accuracy).sum()
        )
        jury_sees_truth = correct_votes > self._jury_size // 2
        # The jury grants the appeal iff it concludes the interaction
        # was NOT abusive.
        verdict_abusive = (
            was_actually_abusive if jury_sees_truth else not was_actually_abusive
        )
        granted = not verdict_abusive
        appeal.granted = granted
        appeal.decided_at = time
        if granted:
            self._reverse(appeal.sanction)
        return granted

    def review_pending(
        self,
        ground_truth: Callable[[SanctionRecord], bool],
        time: float,
        capacity: int = 20,
    ) -> List[Appeal]:
        """Review up to ``capacity`` pending appeals, oldest first."""
        reviewed = []
        for appeal in self.pending()[:capacity]:
            self.review(appeal, ground_truth(appeal.sanction), time)
            reviewed.append(appeal)
        return reviewed

    # ------------------------------------------------------------------
    # Reversal
    # ------------------------------------------------------------------
    def _reverse(self, sanction: SanctionRecord) -> None:
        """Expunge one offence and recompute the offender's status."""
        offender = sanction.offender
        current = self._sanctions.offence_count(offender)
        new_count = max(0, current - 1)
        self._sanctions._offences[offender] = new_count
        if offender in self._world:
            if new_count == 0:
                from repro.world.avatar import AvatarStatus

                self._world.set_status(offender, AvatarStatus.ACTIVE)
            else:
                level = self._sanctions.level_for(new_count)
                self._world.set_status(offender, level.avatar_status)
        if self._repair is not None:
            self._repair(offender, 1.0 + sanction.level.value)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        decided = [a for a in self._appeals if not a.is_pending]
        granted = [a for a in decided if a.granted]
        return {
            "filed": float(len(self._appeals)),
            "decided": float(len(decided)),
            "granted": float(len(granted)),
            "grant_rate": len(granted) / len(decided) if decided else 0.0,
        }
