"""Content moderation: automated filters, user reports, and review.

§III of the paper surveys how platforms actually govern: "automation
tools have been included to control misbehaviour (e.g., banning
inappropriate posts).  These platforms also rely on the report of other
members..."  §IV-A adds AI-assisted, community-in-the-loop moderation
(Crossmod-style [23]).  This module implements all the moving parts so
experiment E6 can compare configurations:

* :class:`AbuseClassifier` — a noisy detector with a true/false-positive
  rate (simulating an ML model; it sees only the interaction, and its
  errors are drawn deterministically per interaction).
* :class:`ReportDesk` — victims file reports with some probability.
* :class:`HumanModeratorPool` — finite review capacity, high accuracy.
* :class:`Jury` — community panels (from §III-C "juries, formal
  debates"): k members vote, majority decides, accuracy per juror.
* :class:`ModerationService` — composes the above into a pipeline and
  scores precision/recall/latency against ground truth.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModerationError
from repro.governance.sanctions import GraduatedSanctionPolicy
from repro.obs.instrument import NULL_OBS, Instrumentation
from repro.world.interactions import Interaction, InteractionBatch

__all__ = [
    "AbuseClassifier",
    "CaseStatus",
    "CaseSource",
    "ModerationCase",
    "ReportDesk",
    "HumanModeratorPool",
    "Jury",
    "ModerationService",
    "ModerationScore",
]


class AbuseClassifier:
    """Noisy abuse detector.

    ``true_positive_rate`` / ``false_positive_rate`` define the ROC
    point this "model" operates at.  The draw is made once per
    interaction and cached, so repeated consultation is consistent
    (a real model is deterministic given its input).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        true_positive_rate: float = 0.8,
        false_positive_rate: float = 0.05,
    ):
        for name, value in (
            ("true_positive_rate", true_positive_rate),
            ("false_positive_rate", false_positive_rate),
        ):
            if not 0 <= value <= 1:
                raise ModerationError(f"{name} must be in [0, 1], got {value}")
        self._rng = rng
        self._tpr = true_positive_rate
        self._fpr = false_positive_rate
        self._cache: Dict[tuple, bool] = {}

    @staticmethod
    def _key(interaction: Interaction) -> tuple:
        return (
            interaction.time,
            interaction.initiator,
            interaction.target,
            interaction.kind,
            interaction.content,
            interaction.abusive,
        )

    def flag(self, interaction: Interaction) -> bool:
        """Would the model flag this interaction as abusive?"""
        key = self._key(interaction)
        if key not in self._cache:
            p = self._tpr if interaction.abusive else self._fpr
            self._cache[key] = bool(self._rng.random() < p)
        return self._cache[key]

    def flag_batch(self, interactions: Sequence[Interaction]) -> np.ndarray:
        """Flag a whole epoch in one vectorized pass.

        Stream-identical to calling :meth:`flag` on each interaction in
        order: unseen interactions get their Bernoulli draws from a
        single ``rng.random(k)`` (the same PCG64 doubles ``k`` scalar
        draws would consume, in first-occurrence order), and the
        per-interaction cache keeps repeated consultation consistent.
        """
        cache = self._cache
        keys = [self._key(interaction) for interaction in interactions]
        pending: List[tuple] = []
        pending_p: List[float] = []
        for key, interaction in zip(keys, interactions):
            if key not in cache:
                cache[key] = None  # reserve first-occurrence draw order
                pending.append(key)
                pending_p.append(self._tpr if interaction.abusive else self._fpr)
        if pending:
            draws = self._rng.random(len(pending))
            verdicts = draws < np.asarray(pending_p, dtype=np.float64)
            for key, verdict in zip(pending, verdicts):
                cache[key] = bool(verdict)
        return np.fromiter((cache[k] for k in keys), dtype=bool, count=len(keys))

    def flag_array(self, abusive: np.ndarray) -> np.ndarray:
        """Classify a synthetic columnar batch in one vectorized pass.

        Operates on the ground-truth ``abusive`` array alone (the only
        input the ROC point depends on) and skips the per-interaction
        cache — synthetic batches are one-shot, never re-consulted.
        One draw per entry, stream-identical to the scalar loop.
        """
        abusive = np.asarray(abusive, dtype=bool)
        p = np.where(abusive, self._tpr, self._fpr)
        return self._rng.random(abusive.size) < p


class CaseStatus(str, enum.Enum):
    OPEN = "open"
    UPHELD = "upheld"
    DISMISSED = "dismissed"


class CaseSource(str, enum.Enum):
    AUTOMATED = "automated"
    REPORT = "report"


@dataclass
class ModerationCase:
    """One item in the moderation queue."""

    case_id: str
    interaction: Interaction
    source: CaseSource
    opened_at: float
    status: CaseStatus = CaseStatus.OPEN
    decided_at: Optional[float] = None
    decided_by: str = ""

    @property
    def latency(self) -> Optional[float]:
        if self.decided_at is None:
            return None
        return self.decided_at - self.interaction.time

    def decide(self, uphold: bool, time: float, decider: str) -> None:
        if self.status is not CaseStatus.OPEN:
            raise ModerationError(f"case {self.case_id} already decided")
        self.status = CaseStatus.UPHELD if uphold else CaseStatus.DISMISSED
        self.decided_at = time
        self.decided_by = decider


class ReportDesk:
    """Victims report abusive interactions that reached them.

    ``report_probability`` models awareness + willingness (the paper
    notes users "are either not fully aware of [the tools] or do not
    know how to use them").  Only delivered interactions can be
    reported — blocked ones never hurt anyone.
    """

    def __init__(self, rng: np.random.Generator, report_probability: float = 0.3):
        if not 0 <= report_probability <= 1:
            raise ModerationError(
                f"report_probability must be in [0, 1], got {report_probability}"
            )
        self._rng = rng
        self._p = report_probability

    def collect(self, interactions: Sequence[Interaction]) -> List[Interaction]:
        """The subset of delivered abusive interactions that get reported.

        The willingness draws for all reportable interactions come from
        one ``rng.random(k)`` call — stream-identical to the scalar
        per-interaction loop.
        """
        candidates = [
            i for i in interactions if i.delivered and i.abusive
        ]
        if not candidates:
            return []
        draws = self._rng.random(len(candidates))
        return [i for i, d in zip(candidates, draws) if d < self._p]

    def collect_batch(self, batch: InteractionBatch) -> np.ndarray:
        """Row indices of a columnar batch that get reported."""
        candidates = np.flatnonzero(batch.delivered & batch.abusive)
        if candidates.size == 0:
            return candidates
        draws = self._rng.random(candidates.size)
        return candidates[draws < self._p]


class HumanModeratorPool:
    """Professional reviewers: accurate but capacity-bounded (§III:
    "moderators ... cannot keep up with the demand")."""

    def __init__(
        self,
        rng: np.random.Generator,
        capacity_per_epoch: int = 20,
        accuracy: float = 0.95,
    ):
        if capacity_per_epoch < 0:
            raise ModerationError("capacity_per_epoch must be >= 0")
        if not 0 <= accuracy <= 1:
            raise ModerationError(f"accuracy must be in [0, 1], got {accuracy}")
        self._rng = rng
        self.capacity_per_epoch = capacity_per_epoch
        self._accuracy = accuracy

    def review(self, case: ModerationCase, time: float) -> bool:
        """Decide one case; returns the uphold verdict."""
        correct = self._rng.random() < self._accuracy
        truth = case.interaction.abusive
        verdict = truth if correct else not truth
        case.decide(verdict, time, decider="human")
        return verdict


class Jury:
    """Community panels: ``jury_size`` members vote, majority decides.

    Less accurate per head than professionals but capacity scales with
    the community.  ``juror_accuracy`` is each juror's independent
    probability of voting the ground truth.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        jury_size: int = 5,
        juror_accuracy: float = 0.75,
        capacity_per_epoch: int = 100,
    ):
        if jury_size < 1 or jury_size % 2 == 0:
            raise ModerationError(
                f"jury_size must be odd and >= 1, got {jury_size}"
            )
        if not 0 <= juror_accuracy <= 1:
            raise ModerationError(
                f"juror_accuracy must be in [0, 1], got {juror_accuracy}"
            )
        self._rng = rng
        self._size = jury_size
        self._accuracy = juror_accuracy
        self.capacity_per_epoch = capacity_per_epoch

    def review(self, case: ModerationCase, time: float) -> bool:
        truth = case.interaction.abusive
        votes_for_truth = int(
            (self._rng.random(self._size) < self._accuracy).sum()
        )
        majority_says_truth = votes_for_truth > self._size // 2
        verdict = truth if majority_says_truth else not truth
        case.decide(verdict, time, decider=f"jury-{self._size}")
        return verdict


@dataclass(frozen=True)
class ModerationScore:
    """Precision/recall/latency of a moderation configuration."""

    abusive_delivered: int
    upheld_cases: int
    upheld_correct: int
    dismissed_cases: int
    open_backlog: int
    mean_latency: float

    @property
    def precision(self) -> float:
        if self.upheld_cases == 0:
            return 0.0
        return self.upheld_correct / self.upheld_cases

    @property
    def recall(self) -> float:
        if self.abusive_delivered == 0:
            return 0.0
        return min(1.0, self.upheld_correct / self.abusive_delivered)


class ModerationService:
    """The full pipeline: detection → queue → review → sanction.

    Parameters
    ----------
    classifier:
        Optional automated detector; None disables automated flagging.
    report_desk:
        Optional report channel; None disables user reports.
    reviewer:
        Queue processor (human pool or jury).  If None *and* a
        classifier is present, automated flags act directly without
        review ("banning inappropriate posts" full automation).
    sanctions:
        Where upheld cases land.
    obs:
        Optional observability instrumentation; the report → verdict →
        sanction path emits spans and events.
    """

    def __init__(
        self,
        sanctions: GraduatedSanctionPolicy,
        classifier: Optional[AbuseClassifier] = None,
        report_desk: Optional[ReportDesk] = None,
        reviewer: Optional[object] = None,
        obs: Optional[Instrumentation] = None,
    ):
        if classifier is None and report_desk is None:
            raise ModerationError(
                "a moderation service needs at least one detection channel"
            )
        self._sanctions = sanctions
        self._classifier = classifier
        self._report_desk = report_desk
        self._reviewer = reviewer
        self._obs = obs if obs is not None else NULL_OBS
        # FIFO review queue: deque gives O(1) dequeue, so draining never
        # rescans (a list's pop(0) is O(backlog) per case — quadratic
        # under sustained burst load).
        self._queue: Deque[ModerationCase] = deque()
        self._cases: List[ModerationCase] = []
        self._case_counter = itertools.count()
        self._seen_interactions: set = set()

    # ------------------------------------------------------------------
    # Epoch processing
    # ------------------------------------------------------------------
    def process_epoch(self, interactions: Sequence[Interaction], time: float) -> None:
        """Ingest one epoch of interactions and run review capacity."""
        delivered = [i for i in interactions if i.delivered]

        with self._obs.span(
            "moderation",
            "epoch.process",
            time=time,
            delivered=len(delivered),
        ) as span:
            if self._classifier is not None:
                flags = self._classifier.flag_batch(delivered)
                for interaction, flagged in zip(delivered, flags):
                    if flagged:
                        case = self._open_case(interaction, CaseSource.AUTOMATED, time)
                        if case is not None and self._reviewer is None:
                            # Full automation: the flag is the verdict.
                            case.decide(True, time, decider="auto")
                            self._emit_verdict(case, time)
                            self._apply_sanction(
                                interaction.initiator,
                                time,
                                case_id=case.case_id,
                                reason="automated flag",
                            )

            if self._report_desk is not None:
                for interaction in self._report_desk.collect(delivered):
                    self._obs.counter("moderation.reports_filed").inc()
                    self._obs.event(
                        "moderation",
                        "report.filed",
                        time=time,
                        reporter=interaction.target,
                        accused=interaction.initiator,
                    )
                    self._open_case(interaction, CaseSource.REPORT, time)

            reviewed = self._drain_queue(time)
            span.set_attribute("reviewed", reviewed)
            span.set_attribute("backlog", len(self._queue))

    def process_batch(
        self, batch: InteractionBatch, time: float
    ) -> Dict[str, int]:
        """Ingest one columnar epoch at population scale.

        The scale-safe sibling of :meth:`process_epoch`: classification
        and report willingness are single vectorized draws over the
        whole batch, and :class:`Interaction` objects are materialised
        only for the (few) rows that actually become cases.  Returns a
        summary of what happened this epoch.
        """
        delivered_rows = np.flatnonzero(batch.delivered)

        with self._obs.span(
            "moderation",
            "batch.process",
            time=time,
            delivered=int(delivered_rows.size),
        ) as span:
            flagged_rows = np.empty(0, dtype=np.int64)
            if self._classifier is not None and delivered_rows.size:
                flags = self._classifier.flag_array(
                    batch.abusive[delivered_rows]
                )
                flagged_rows = delivered_rows[flags]

            opened = 0
            for row in flagged_rows:
                interaction = batch.interaction_at(int(row))
                case = self._open_case(interaction, CaseSource.AUTOMATED, time)
                if case is None:
                    continue
                opened += 1
                if self._reviewer is None:
                    case.decide(True, time, decider="auto")
                    self._emit_verdict(case, time)
                    self._apply_sanction(
                        interaction.initiator,
                        time,
                        case_id=case.case_id,
                        reason="automated flag",
                    )

            reported = 0
            if self._report_desk is not None:
                report_rows = self._report_desk.collect_batch(batch)
                reported = int(report_rows.size)
                if reported:
                    self._obs.counter("moderation.reports_filed").inc(reported)
                for row in report_rows:
                    interaction = batch.interaction_at(int(row))
                    if self._open_case(
                        interaction, CaseSource.REPORT, time
                    ) is not None:
                        opened += 1

            reviewed = self._drain_queue(time)
            span.set_attribute("flagged", int(flagged_rows.size))
            span.set_attribute("reviewed", reviewed)
            span.set_attribute("backlog", len(self._queue))

        return {
            "delivered": int(delivered_rows.size),
            "flagged": int(flagged_rows.size),
            "reported": reported,
            "opened": opened,
            "reviewed": reviewed,
            "backlog": len(self._queue),
        }

    def file_report(
        self, interaction: Interaction, time: float
    ) -> Optional[ModerationCase]:
        """Direct report intake for the online serving tier.

        One user report about one interaction, outside any epoch batch:
        emits the same trace events as the batched report path and opens
        a REPORT case (None when the interaction already has one — the
        duplicate-report path the serving tier surfaces as a refusal).
        Review capacity is *not* consumed here; the serving tier drains
        the queue on its periodic review tick via :meth:`run_review`.
        """
        self._obs.counter("moderation.reports_filed").inc()
        self._obs.event(
            "moderation",
            "report.filed",
            time=time,
            reporter=interaction.target,
            accused=interaction.initiator,
        )
        return self._open_case(interaction, CaseSource.REPORT, time)

    def run_review(self, time: float) -> int:
        """Apply one review-capacity slice to the queue (serving tier's
        periodic drain — the moderation sibling of block production)."""
        return self._drain_queue(time)

    def process_prepared(
        self,
        batch: InteractionBatch,
        flagged_rows: np.ndarray,
        report_rows: np.ndarray,
        time: float,
    ) -> Dict[str, int]:
        """Ingest a batch whose detection draws already happened elsewhere.

        The parallel load workload runs classification and report
        willingness *inside shard workers* (each shard owns its stream);
        what arrives here is the batch plus the resulting verdict rows.
        This method performs only the **stateful** part of
        :meth:`process_batch` — case opening, the FIFO queue, bounded
        review, sanctions — which must stay serial at the epoch barrier
        because case ids and sanction escalation depend on arrival
        order.  Rows must index into ``batch`` and be presented in the
        deterministic merged order.
        """
        delivered_rows = np.flatnonzero(batch.delivered)

        with self._obs.span(
            "moderation",
            "batch.process",
            time=time,
            delivered=int(delivered_rows.size),
        ) as span:
            opened = 0
            for row in flagged_rows:
                interaction = batch.interaction_at(int(row))
                case = self._open_case(interaction, CaseSource.AUTOMATED, time)
                if case is None:
                    continue
                opened += 1
                if self._reviewer is None:
                    case.decide(True, time, decider="auto")
                    self._emit_verdict(case, time)
                    self._apply_sanction(
                        interaction.initiator,
                        time,
                        case_id=case.case_id,
                        reason="automated flag",
                    )

            reported = int(len(report_rows))
            if reported:
                self._obs.counter("moderation.reports_filed").inc(reported)
            for row in report_rows:
                interaction = batch.interaction_at(int(row))
                if self._open_case(
                    interaction, CaseSource.REPORT, time
                ) is not None:
                    opened += 1

            reviewed = self._drain_queue(time)
            span.set_attribute("flagged", int(len(flagged_rows)))
            span.set_attribute("reviewed", reviewed)
            span.set_attribute("backlog", len(self._queue))

        return {
            "delivered": int(delivered_rows.size),
            "flagged": int(len(flagged_rows)),
            "reported": reported,
            "opened": opened,
            "reviewed": reviewed,
            "backlog": len(self._queue),
        }

    def _open_case(
        self, interaction: Interaction, source: CaseSource, time: float
    ) -> Optional[ModerationCase]:
        key = AbuseClassifier._key(interaction)
        if key in self._seen_interactions:
            return None  # one case per interaction
        self._seen_interactions.add(key)
        case = ModerationCase(
            case_id=f"case-{next(self._case_counter):06d}",
            interaction=interaction,
            source=source,
            opened_at=time,
        )
        self._cases.append(case)
        if self._reviewer is not None:
            self._queue.append(case)
        self._obs.counter(f"moderation.cases_opened.{source.value}").inc()
        self._obs.event(
            "moderation",
            "case.opened",
            time=time,
            case_id=case.case_id,
            case_source=source.value,
            accused=interaction.initiator,
        )
        return case

    def _drain_queue(self, time: float) -> int:
        if self._reviewer is None:
            return 0
        capacity = getattr(self._reviewer, "capacity_per_epoch", 0)
        processed = 0
        while self._queue and processed < capacity:
            case = self._queue.popleft()
            verdict = self._reviewer.review(case, time)
            self._emit_verdict(case, time)
            if verdict:
                self._apply_sanction(
                    case.interaction.initiator,
                    time,
                    case_id=case.case_id,
                    reason=f"{case.source.value} case upheld",
                )
            processed += 1
        return processed

    def _emit_verdict(self, case: ModerationCase, time: float) -> None:
        self._obs.counter(f"moderation.verdicts.{case.status.value}").inc()
        if case.latency is not None:
            self._obs.histogram("moderation.case_latency").observe(case.latency)
        self._obs.event(
            "moderation",
            "case.decided",
            time=time,
            case_id=case.case_id,
            verdict=case.status.value,
            decided_by=case.decided_by,
        )

    def _apply_sanction(
        self, subject: str, time: float, case_id: str, reason: str
    ) -> None:
        self._sanctions.apply(subject, time, case_id=case_id, reason=reason)
        self._obs.counter("moderation.sanctions_applied").inc()
        self._obs.event(
            "moderation",
            "sanction.applied",
            time=time,
            subject=subject,
            case_id=case_id,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    @property
    def cases(self) -> List[ModerationCase]:
        return list(self._cases)

    @property
    def backlog(self) -> int:
        return len(self._queue)

    def score(self, all_interactions: Sequence[Interaction]) -> ModerationScore:
        """Score against ground truth over ``all_interactions``."""
        abusive_delivered = sum(
            1 for i in all_interactions if i.delivered and i.abusive
        )
        upheld = [c for c in self._cases if c.status is CaseStatus.UPHELD]
        dismissed = [c for c in self._cases if c.status is CaseStatus.DISMISSED]
        upheld_correct = sum(1 for c in upheld if c.interaction.abusive)
        latencies = [c.latency for c in upheld + dismissed if c.latency is not None]
        return ModerationScore(
            abusive_delivered=abusive_delivered,
            upheld_cases=len(upheld),
            upheld_correct=upheld_correct,
            dismissed_cases=len(dismissed),
            open_backlog=self.backlog,
            mean_latency=float(np.mean(latencies)) if latencies else 0.0,
        )
