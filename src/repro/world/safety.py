"""Room-scale VR safety simulation (paper §II-C).

"The current HMDs ... can occlude the physical world and the ability of
users to detect nearby objects, increasing the risk of falling."  The
two mitigations the paper cites are implemented as composable forces on
a shared physical room:

* **Shadow avatars** (Langbehn et al. [12]) — co-located users become
  visible as ghosts inside a warning radius, adding a social repulsion
  force between users.
* **Redirected walking** via artificial potential fields (Bachmann et
  al. [13]) — walls and static obstacles exert repulsive forces that
  bend the user's physical path away from hazards.

Users walk toward a stream of virtual waypoints; each simulation step
integrates desired velocity + enabled safety forces.  Collisions
(user–user, user–obstacle, wall strikes) are counted with a hysteresis
cooldown (contact must end before the same pair can collide again), and
steering effort is accumulated as an immersion-disruption proxy — the
cost axis the paper notes ("redirecting users' walking while disrupting
their immersion").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import WorldError

__all__ = ["Obstacle", "SafetyConfig", "SafetyReport", "RoomSimulation"]


@dataclass(frozen=True)
class Obstacle:
    """A static circular hazard (sofa, table)."""

    x: float
    y: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise WorldError(f"obstacle radius must be positive, got {self.radius}")


@dataclass(frozen=True)
class SafetyConfig:
    """Which mitigations are active and how strongly they act."""

    shadow_avatars: bool = False
    redirected_walking: bool = False
    warning_radius: float = 1.5
    shadow_gain: float = 2.0
    rdw_gain: float = 1.5
    rdw_range: float = 1.2

    @classmethod
    def none(cls) -> "SafetyConfig":
        return cls(shadow_avatars=False, redirected_walking=False)

    @classmethod
    def shadows_only(cls) -> "SafetyConfig":
        return cls(shadow_avatars=True, redirected_walking=False)

    @classmethod
    def rdw_only(cls) -> "SafetyConfig":
        return cls(shadow_avatars=False, redirected_walking=True)

    @classmethod
    def combined(cls) -> "SafetyConfig":
        return cls(shadow_avatars=True, redirected_walking=True)

    @property
    def label(self) -> str:
        if self.shadow_avatars and self.redirected_walking:
            return "shadow+rdw"
        if self.shadow_avatars:
            return "shadow"
        if self.redirected_walking:
            return "rdw"
        return "none"


@dataclass
class SafetyReport:
    """Outcome of one simulation run."""

    steps: int = 0
    user_collisions: int = 0
    obstacle_collisions: int = 0
    wall_strikes: int = 0
    distance_walked: float = 0.0
    steering_effort: float = 0.0
    waypoints_reached: int = 0

    @property
    def total_collisions(self) -> int:
        return self.user_collisions + self.obstacle_collisions + self.wall_strikes

    @property
    def collisions_per_100m(self) -> float:
        if self.distance_walked == 0:
            return 0.0
        return 100.0 * self.total_collisions / self.distance_walked

    @property
    def disruption_per_meter(self) -> float:
        """Mean steering-force magnitude per meter walked — how much the
        mitigations bent users away from their intended paths."""
        if self.distance_walked == 0:
            return 0.0
        return self.steering_effort / self.distance_walked


class RoomSimulation:
    """N users free-walking in one physical room.

    Parameters
    ----------
    room_size:
        Square room edge length in meters.
    n_users:
        Co-located HMD users.
    config:
        Active safety mitigations.
    obstacles:
        Static hazards; defaults to none.
    speed:
        Walking speed (m/s).
    dt:
        Integration step (s).
    collision_distance:
        Center distance under which two users (or a user and an
        obstacle surface) count as collided.
    """

    def __init__(
        self,
        room_size: float,
        n_users: int,
        config: SafetyConfig,
        rng: np.random.Generator,
        obstacles: Optional[List[Obstacle]] = None,
        speed: float = 1.0,
        dt: float = 0.1,
        collision_distance: float = 0.4,
    ):
        if room_size <= 0:
            raise WorldError(f"room_size must be positive, got {room_size}")
        if n_users < 1:
            raise WorldError(f"n_users must be >= 1, got {n_users}")
        if dt <= 0 or speed <= 0:
            raise WorldError("speed and dt must be positive")
        self._room = float(room_size)
        self._n = n_users
        self._config = config
        self._rng = rng
        self._obstacles = list(obstacles or [])
        self._speed = speed
        self._dt = dt
        self._collision_d = collision_distance

        self._positions = self._spawn_positions()
        self._waypoints = np.array([self._random_free_point() for _ in range(n_users)])
        # Hysteresis state: pairs/contacts currently colliding.
        self._user_contacts: Set[Tuple[int, int]] = set()
        self._obstacle_contacts: Set[Tuple[int, int]] = set()
        self._wall_contacts: Set[int] = set()
        self.report = SafetyReport()

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _spawn_positions(self) -> np.ndarray:
        positions = []
        attempts = 0
        while len(positions) < self._n:
            candidate = self._random_free_point()
            attempts += 1
            if attempts > 1000 * self._n:
                raise WorldError(
                    "could not place users; room too crowded for spawn"
                )
            if all(
                math.dist(candidate, p) > 2 * self._collision_d for p in positions
            ):
                positions.append(candidate)
        return np.array(positions)

    def _random_free_point(self) -> Tuple[float, float]:
        margin = self._collision_d
        for _ in range(1000):
            x = float(self._rng.uniform(margin, self._room - margin))
            y = float(self._rng.uniform(margin, self._room - margin))
            if all(
                math.dist((x, y), (o.x, o.y)) > o.radius + self._collision_d
                for o in self._obstacles
            ):
                return (x, y)
        raise WorldError("no free space in room for waypoint")

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the room by ``dt``."""
        forces = np.zeros_like(self._positions)
        desired = np.zeros_like(self._positions)

        for i in range(self._n):
            to_goal = self._waypoints[i] - self._positions[i]
            distance = float(np.linalg.norm(to_goal))
            if distance < 0.3:
                self._waypoints[i] = self._random_free_point()
                self.report.waypoints_reached += 1
                to_goal = self._waypoints[i] - self._positions[i]
                distance = float(np.linalg.norm(to_goal))
            desired[i] = to_goal / max(distance, 1e-9)

            if self._config.shadow_avatars:
                forces[i] += self._shadow_force(i)
            if self._config.redirected_walking:
                forces[i] += self._rdw_force(i)

        for i in range(self._n):
            steering = float(np.linalg.norm(forces[i]))
            self.report.steering_effort += steering * self._speed * self._dt
            velocity = desired[i] + forces[i]
            norm = float(np.linalg.norm(velocity))
            if norm > 1e-9:
                velocity = velocity / norm * self._speed
            new_pos = self._positions[i] + velocity * self._dt
            clipped = np.clip(new_pos, 0.0, self._room)
            self.report.distance_walked += float(
                np.linalg.norm(clipped - self._positions[i])
            )
            self._positions[i] = clipped

        self._count_collisions()
        self.report.steps += 1

    def run(self, steps: int) -> SafetyReport:
        """Run ``steps`` ticks and return the accumulated report."""
        for _ in range(steps):
            self.step()
        return self.report

    # ------------------------------------------------------------------
    # Forces
    # ------------------------------------------------------------------
    def _shadow_force(self, i: int) -> np.ndarray:
        """Repulsion from other users rendered as shadow avatars."""
        force = np.zeros(2)
        for j in range(self._n):
            if j == i:
                continue
            offset = self._positions[i] - self._positions[j]
            distance = float(np.linalg.norm(offset))
            if 1e-9 < distance < self._config.warning_radius:
                strength = self._config.shadow_gain * (
                    1.0 / distance - 1.0 / self._config.warning_radius
                )
                force += strength * offset / distance
        return force

    def _rdw_force(self, i: int) -> np.ndarray:
        """Artificial-potential-field repulsion from walls and obstacles."""
        force = np.zeros(2)
        x, y = self._positions[i]
        rng_d = self._config.rdw_range
        gain = self._config.rdw_gain
        # Walls: push inward when close.
        if x < rng_d:
            force[0] += gain * (1.0 / max(x, 1e-3) - 1.0 / rng_d)
        if self._room - x < rng_d:
            force[0] -= gain * (1.0 / max(self._room - x, 1e-3) - 1.0 / rng_d)
        if y < rng_d:
            force[1] += gain * (1.0 / max(y, 1e-3) - 1.0 / rng_d)
        if self._room - y < rng_d:
            force[1] -= gain * (1.0 / max(self._room - y, 1e-3) - 1.0 / rng_d)
        # Obstacles.
        for obstacle in self._obstacles:
            offset = self._positions[i] - np.array([obstacle.x, obstacle.y])
            surface = float(np.linalg.norm(offset)) - obstacle.radius
            if 1e-9 < surface < rng_d:
                force += (
                    gain
                    * (1.0 / max(surface, 1e-3) - 1.0 / rng_d)
                    * offset
                    / float(np.linalg.norm(offset))
                )
        return force

    # ------------------------------------------------------------------
    # Collision counting (with hysteresis)
    # ------------------------------------------------------------------
    def _count_collisions(self) -> None:
        # user-user
        current_pairs: Set[Tuple[int, int]] = set()
        for i in range(self._n):
            for j in range(i + 1, self._n):
                if (
                    float(np.linalg.norm(self._positions[i] - self._positions[j]))
                    < self._collision_d
                ):
                    current_pairs.add((i, j))
        self.report.user_collisions += len(current_pairs - self._user_contacts)
        self._user_contacts = current_pairs

        # user-obstacle
        current_obstacles: Set[Tuple[int, int]] = set()
        for i in range(self._n):
            for k, obstacle in enumerate(self._obstacles):
                gap = (
                    math.dist(tuple(self._positions[i]), (obstacle.x, obstacle.y))
                    - obstacle.radius
                )
                if gap < self._collision_d / 2:
                    current_obstacles.add((i, k))
        self.report.obstacle_collisions += len(
            current_obstacles - self._obstacle_contacts
        )
        self._obstacle_contacts = current_obstacles

        # walls
        current_walls: Set[int] = set()
        margin = 0.05
        for i in range(self._n):
            x, y = self._positions[i]
            if (
                x <= margin
                or y <= margin
                or x >= self._room - margin
                or y >= self._room - margin
            ):
                current_walls.add(i)
        self.report.wall_strikes += len(current_walls - self._wall_contacts)
        self._wall_contacts = current_walls

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        return self._positions.copy()

    @property
    def config(self) -> SafetyConfig:
        return self._config
