"""World substrate: embodied avatars in shared virtual space (paper §II).

Avatars with moderation-aware statuses, a spatial-hash grid, a gated
interaction system (status → code rules → privacy bubble), and the
room-scale multi-user VR safety simulator with shadow avatars and
potential-field redirected walking.
"""

from repro.world.avatar import Avatar, AvatarStatus
from repro.world.columnar import (
    BYTES_PER_AGENT_COLUMNS,
    AddressInterner,
    AgentTable,
    ColumnMap,
)
from repro.world.interactions import (
    Interaction,
    InteractionBatch,
    InteractionKind,
    InteractionLog,
)
from repro.world.safety import Obstacle, RoomSimulation, SafetyConfig, SafetyReport
from repro.world.sessions import Session, SessionManager
from repro.world.space import SpatialGrid
from repro.world.world import World

__all__ = [
    "AddressInterner",
    "AgentTable",
    "Avatar",
    "AvatarStatus",
    "BYTES_PER_AGENT_COLUMNS",
    "ColumnMap",
    "Interaction",
    "InteractionBatch",
    "InteractionKind",
    "InteractionLog",
    "Obstacle",
    "RoomSimulation",
    "SafetyConfig",
    "SafetyReport",
    "Session",
    "SessionManager",
    "SpatialGrid",
    "World",
]
