"""Spatial index: a uniform grid over 2-D world coordinates.

Worlds query "who is near this avatar" constantly (bubbles, proximity
chat, safety); the grid makes that O(neighbourhood) instead of O(n).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Set, Tuple

from repro.errors import WorldError

__all__ = ["SpatialGrid"]

Position = Tuple[float, float]
Cell = Tuple[int, int]


class SpatialGrid:
    """Uniform-cell spatial hash.

    Parameters
    ----------
    cell_size:
        Edge length of one cell; pick ≈ the most common query radius.

    Examples
    --------
    >>> grid = SpatialGrid(cell_size=2.0)
    >>> grid.insert("a", (0.0, 0.0))
    >>> grid.insert("b", (1.0, 0.0))
    >>> sorted(grid.within("a", 1.5))
    ['b']
    """

    def __init__(self, cell_size: float = 2.0):
        if cell_size <= 0:
            raise WorldError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = float(cell_size)
        self._cells: Dict[Cell, Set[str]] = {}
        self._positions: Dict[str, Position] = {}

    def _cell_of(self, position: Position) -> Cell:
        return (
            math.floor(position[0] / self._cell_size),
            math.floor(position[1] / self._cell_size),
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, entity_id: str, position: Position) -> None:
        if entity_id in self._positions:
            raise WorldError(f"{entity_id} already in grid; use move()")
        self._positions[entity_id] = position
        self._cells.setdefault(self._cell_of(position), set()).add(entity_id)

    def move(self, entity_id: str, position: Position) -> None:
        old = self._positions.get(entity_id)
        if old is None:
            raise WorldError(f"{entity_id} not in grid; use insert()")
        old_cell = self._cell_of(old)
        new_cell = self._cell_of(position)
        if old_cell != new_cell:
            self._cells[old_cell].discard(entity_id)
            if not self._cells[old_cell]:
                del self._cells[old_cell]
            self._cells.setdefault(new_cell, set()).add(entity_id)
        self._positions[entity_id] = position

    def remove(self, entity_id: str) -> None:
        position = self._positions.pop(entity_id, None)
        if position is None:
            raise WorldError(f"{entity_id} not in grid")
        cell = self._cell_of(position)
        self._cells[cell].discard(entity_id)
        if not self._cells[cell]:
            del self._cells[cell]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def position_of(self, entity_id: str) -> Position:
        if entity_id not in self._positions:
            raise WorldError(f"{entity_id} not in grid")
        return self._positions[entity_id]

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def neighbors(self, position: Position, radius: float) -> Iterator[str]:
        """Entity ids within ``radius`` of ``position`` (exclusive of
        nothing — callers filter self out)."""
        if radius < 0:
            raise WorldError(f"radius must be >= 0, got {radius}")
        span = math.ceil(radius / self._cell_size)
        cx, cy = self._cell_of(position)
        for dx in range(-span, span + 1):
            for dy in range(-span, span + 1):
                for entity_id in self._cells.get((cx + dx, cy + dy), ()):
                    other = self._positions[entity_id]
                    if math.dist(position, other) <= radius:
                        yield entity_id

    def within(self, entity_id: str, radius: float) -> List[str]:
        """Neighbour ids within ``radius`` of ``entity_id`` (excluding
        the entity itself)."""
        center = self.position_of(entity_id)
        return [e for e in self.neighbors(center, radius) if e != entity_id]

    def distance(self, a: str, b: str) -> float:
        return math.dist(self.position_of(a), self.position_of(b))
