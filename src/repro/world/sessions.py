"""Sessions: identity-aware presence management.

Connects the privacy layer's avatar identities (primary vs secondary,
:mod:`repro.privacy.avatars`) to world presence: a user *logs in* under
one of their avatars — optionally a freshly spawned clone for privacy —
acts for a while, and logs out.  The session log is what an observer
(or subpoena) sees: avatar ids and timestamps, never user ids, so the
§II-B unlinkability property holds at the infrastructure level too.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import WorldError
from repro.privacy.avatars import AvatarIdentityManager
from repro.world.world import World

__all__ = ["Session", "SessionManager"]

Position = Tuple[float, float]


@dataclass
class Session:
    """One login under one avatar."""

    session_id: str
    avatar_id: str
    world_name: str
    started_at: float
    ended_at: Optional[float] = None

    @property
    def is_active(self) -> bool:
        return self.ended_at is None

    @property
    def duration(self) -> Optional[float]:
        if self.ended_at is None:
            return None
        return self.ended_at - self.started_at


class SessionManager:
    """Logs users in and out of a world under chosen avatars.

    The manager holds the only user↔session mapping; the public session
    log (:meth:`public_log`) exposes avatar ids exclusively.
    """

    def __init__(self, world: World, identities: AvatarIdentityManager):
        self._world = world
        self._identities = identities
        self._counter = itertools.count()
        self._sessions: List[Session] = []
        self._active_by_user: Dict[str, Session] = {}
        self._user_of_session: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Login / logout
    # ------------------------------------------------------------------
    def login(
        self,
        user_id: str,
        position: Position,
        time: float,
        use_clone: bool = False,
    ) -> Session:
        """Start a session; spawns the chosen avatar into the world.

        ``use_clone=True`` mints a fresh secondary avatar for this
        session (the §II-B obfuscation move); otherwise the primary
        avatar is used.

        Raises
        ------
        WorldError
            If the user already has an active session.
        """
        if user_id in self._active_by_user:
            raise WorldError(f"{user_id} already has an active session")
        if use_clone:
            avatar_id = self._identities.spawn_clone(user_id)
        else:
            avatar_id = self._identities.primary_of(user_id)
        if avatar_id in self._world:
            raise WorldError(
                f"avatar {avatar_id} is already present in the world"
            )
        self._world.spawn(avatar_id, position, time=time)
        session = Session(
            session_id=f"session-{next(self._counter):06d}",
            avatar_id=avatar_id,
            world_name=self._world.name,
            started_at=time,
        )
        self._sessions.append(session)
        self._active_by_user[user_id] = session
        self._user_of_session[session.session_id] = user_id
        return session

    def logout(self, user_id: str, time: float) -> Session:
        """End the user's active session and despawn their avatar."""
        session = self._active_by_user.pop(user_id, None)
        if session is None:
            raise WorldError(f"{user_id} has no active session")
        if time < session.started_at:
            raise WorldError(
                f"logout time {time} before login {session.started_at}"
            )
        session.ended_at = time
        if session.avatar_id in self._world:
            self._world.despawn(session.avatar_id)
        return session

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def active_session_of(self, user_id: str) -> Optional[Session]:
        return self._active_by_user.get(user_id)

    def active_avatar_of(self, user_id: str) -> Optional[str]:
        session = self._active_by_user.get(user_id)
        return session.avatar_id if session is not None else None

    def sessions_of(self, user_id: str) -> List[Session]:
        """Platform-internal: all sessions ever run by ``user_id``."""
        return [
            s
            for s in self._sessions
            if self._user_of_session[s.session_id] == user_id
        ]

    def public_log(self) -> List[Dict[str, object]]:
        """What an observer sees: avatar ids and times, no user ids."""
        return [
            {
                "session_id": s.session_id,
                "avatar_id": s.avatar_id,
                "world": s.world_name,
                "started_at": s.started_at,
                "ended_at": s.ended_at,
            }
            for s in self._sessions
        ]

    @property
    def active_count(self) -> int:
        return len(self._active_by_user)

    def __len__(self) -> int:
        return len(self._sessions)
