"""Interactions: everything avatars do to each other.

Every attempted interaction — delivered or blocked — is recorded, which
is the raw material of three experiments: harassment blocking (E3),
moderation (E6), and behaviour-linkage (E2).  Interaction *kinds* are an
open string vocabulary; the constants below are the ones the behaviour
models emit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

import numpy as np

__all__ = ["InteractionKind", "Interaction", "InteractionBatch", "InteractionLog"]


class InteractionKind(str, enum.Enum):
    """Vocabulary of avatar-to-avatar interactions."""

    CHAT = "chat"
    WHISPER = "whisper"
    SHOUT = "shout"
    GESTURE = "gesture"
    TOUCH = "touch"
    APPROACH = "approach"
    TRADE = "trade"
    GIFT = "gift"


# Kinds that count as misconduct when flagged abusive.
HOSTILE_KINDS = frozenset(
    {InteractionKind.WHISPER.value, InteractionKind.TOUCH.value,
     InteractionKind.SHOUT.value, InteractionKind.APPROACH.value,
     InteractionKind.CHAT.value}
)


@dataclass(frozen=True)
class Interaction:
    """One attempted interaction.

    ``delivered`` is False when a gate (status, bubble, rule engine)
    blocked it; ``blocked_by`` names the gate.  ``abusive`` is ground
    truth used only by experiment scoring and the *behaviour generator*
    — governance components must infer it from reports/classifiers.
    """

    time: float
    initiator: str
    target: str
    kind: str
    content: str = ""
    delivered: bool = True
    blocked_by: Optional[str] = None
    abusive: bool = False
    metadata: Dict[str, Any] = field(default_factory=dict)


@dataclass
class InteractionBatch:
    """One epoch of interactions in columnar (struct-of-arrays) form.

    The scale-safe counterpart of a ``Sequence[Interaction]``: agent
    *indices* plus parallel ``abusive``/``delivered`` bool arrays, so
    population-scale pipelines (batched moderation, the load workload)
    never materialise per-interaction objects.  ``id_of`` maps an agent
    index to its stable id; :meth:`interaction_at` materialises a real
    :class:`Interaction` lazily for the (few) rows that become cases.
    """

    time: float
    initiators: np.ndarray  # int64 agent indices
    targets: np.ndarray  # int64 agent indices
    abusive: np.ndarray  # bool, ground truth
    delivered: np.ndarray  # bool
    kind: str = InteractionKind.CHAT.value
    id_of: Callable[[int], str] = staticmethod(lambda i: f"agent-{i:07d}")

    def __post_init__(self) -> None:
        n = len(self.initiators)
        for name in ("targets", "abusive", "delivered"):
            if len(getattr(self, name)) != n:
                raise ValueError(
                    f"{name} length {len(getattr(self, name))} != {n}"
                )

    def __len__(self) -> int:
        return len(self.initiators)

    def interaction_at(self, i: int) -> Interaction:
        """Materialise row ``i`` as a regular :class:`Interaction`."""
        return Interaction(
            time=self.time,
            initiator=self.id_of(int(self.initiators[i])),
            target=self.id_of(int(self.targets[i])),
            kind=self.kind,
            delivered=bool(self.delivered[i]),
            abusive=bool(self.abusive[i]),
        )


class InteractionLog:
    """Append-only record of all interaction attempts."""

    def __init__(self) -> None:
        self._records: List[Interaction] = []

    def record(self, interaction: Interaction) -> None:
        self._records.append(interaction)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Interaction]:
        return iter(self._records)

    def all(self) -> List[Interaction]:
        return list(self._records)

    def involving(self, avatar_id: str) -> List[Interaction]:
        return [
            r for r in self._records
            if r.initiator == avatar_id or r.target == avatar_id
        ]

    def initiated_by(self, avatar_id: str) -> List[Interaction]:
        return [r for r in self._records if r.initiator == avatar_id]

    def received_by(
        self, avatar_id: str, delivered_only: bool = False
    ) -> List[Interaction]:
        out = [r for r in self._records if r.target == avatar_id]
        if delivered_only:
            out = [r for r in out if r.delivered]
        return out

    def abusive_delivered(self) -> List[Interaction]:
        """Ground-truth abusive interactions that got through — the
        harm metric of E3/E6."""
        return [r for r in self._records if r.abusive and r.delivered]

    def blocked(self, by: Optional[str] = None) -> List[Interaction]:
        out = [r for r in self._records if not r.delivered]
        if by is not None:
            out = [r for r in out if r.blocked_by == by]
        return out
