"""The virtual world: avatars in space, interacting under gates.

``World`` composes the spatial grid, the interaction log, the privacy
bubble manager, and an optional *rule engine* (governance's code-as-law
hook, §III-A).  Interaction delivery runs the gate sequence:

1. initiator/target existence and status (sanctions),
2. world rules (the rule engine's verdict),
3. the target's privacy bubble (geometry + policy),

and logs the attempt either way — "code shapes online environments and
the behaviour of users" made literal.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import WorldError
from repro.privacy.bubbles import BubbleManager
from repro.world.avatar import Avatar, AvatarStatus
from repro.world.interactions import Interaction, InteractionLog
from repro.world.space import SpatialGrid

__all__ = ["World"]

Position = Tuple[float, float]

# Rule engine verdict: (allowed, rule_name_if_blocked)
RuleCheck = Callable[[Interaction], Tuple[bool, Optional[str]]]


class World:
    """A single virtual world (one 'realm' of the metaverse).

    Parameters
    ----------
    name:
        World identifier.
    size:
        Side length of the square playable area.
    rule_check:
        Optional governance hook consulted before delivery.
    """

    def __init__(
        self,
        name: str,
        size: float = 100.0,
        rule_check: Optional[RuleCheck] = None,
    ):
        if size <= 0:
            raise WorldError(f"world size must be positive, got {size}")
        self.name = name
        self.size = float(size)
        self._avatars: Dict[str, Avatar] = {}
        self.grid = SpatialGrid(cell_size=max(1.0, size / 32.0))
        self.interactions = InteractionLog()
        self.bubbles = BubbleManager()
        self._rule_check = rule_check

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def spawn(self, avatar_id: str, position: Position, time: float = 0.0) -> Avatar:
        """Add an avatar at ``position``."""
        if avatar_id in self._avatars:
            raise WorldError(f"avatar {avatar_id} already in world {self.name!r}")
        self._validate_position(position)
        avatar = Avatar(avatar_id=avatar_id, position=position, joined_at=time)
        self._avatars[avatar_id] = avatar
        self.grid.insert(avatar_id, position)
        return avatar

    def despawn(self, avatar_id: str) -> None:
        self.avatar(avatar_id)
        del self._avatars[avatar_id]
        self.grid.remove(avatar_id)

    def avatar(self, avatar_id: str) -> Avatar:
        if avatar_id not in self._avatars:
            raise WorldError(f"no avatar {avatar_id} in world {self.name!r}")
        return self._avatars[avatar_id]

    def avatars(self) -> List[Avatar]:
        return list(self._avatars.values())

    def __contains__(self, avatar_id: str) -> bool:
        return avatar_id in self._avatars

    def population(self) -> int:
        return len(self._avatars)

    # ------------------------------------------------------------------
    # Movement
    # ------------------------------------------------------------------
    def move(self, avatar_id: str, position: Position) -> None:
        """Teleport-style move with bounds and status checks."""
        avatar = self.avatar(avatar_id)
        if not avatar.can_move:
            raise WorldError(
                f"avatar {avatar_id} is {avatar.status.value}, cannot move"
            )
        self._validate_position(position)
        avatar.position = position
        self.grid.move(avatar_id, position)

    def nearby(self, avatar_id: str, radius: float) -> List[str]:
        return self.grid.within(avatar_id, radius)

    # ------------------------------------------------------------------
    # Interaction
    # ------------------------------------------------------------------
    def attempt_interaction(
        self,
        initiator: str,
        target: str,
        kind: str,
        time: float,
        content: str = "",
        abusive: bool = False,
    ) -> Interaction:
        """Run the gate sequence and log the (attempted) interaction."""
        initiator_avatar = self.avatar(initiator)
        target_avatar = self.avatar(target)
        if initiator == target:
            raise WorldError(f"avatar {initiator} cannot interact with itself")

        blocked_by: Optional[str] = None
        if not initiator_avatar.may_initiate(kind):
            blocked_by = f"status:{initiator_avatar.status.value}"
        elif not target_avatar.may_receive():
            blocked_by = f"target-status:{target_avatar.status.value}"

        draft = Interaction(
            time=time,
            initiator=initiator,
            target=target,
            kind=kind,
            content=content,
            abusive=abusive,
        )
        if blocked_by is None and self._rule_check is not None:
            allowed, rule_name = self._rule_check(draft)
            if not allowed:
                blocked_by = f"rule:{rule_name or 'unnamed'}"
        if blocked_by is None and not self.bubbles.permits(
            initiator,
            target,
            kind,
            target_avatar.position,
            initiator_avatar.position,
        ):
            blocked_by = "privacy-bubble"

        interaction = Interaction(
            time=time,
            initiator=initiator,
            target=target,
            kind=kind,
            content=content,
            delivered=blocked_by is None,
            blocked_by=blocked_by,
            abusive=abusive,
        )
        self.interactions.record(interaction)
        return interaction

    # ------------------------------------------------------------------
    # Sanctions (called by governance)
    # ------------------------------------------------------------------
    def set_status(self, avatar_id: str, status: AvatarStatus) -> None:
        self.avatar(avatar_id).status = status

    def _validate_position(self, position: Position) -> None:
        x, y = position
        if not (0 <= x <= self.size and 0 <= y <= self.size):
            raise WorldError(
                f"position {position} outside world bounds "
                f"[0, {self.size}]²"
            )
