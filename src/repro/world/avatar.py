"""Avatars: embodied identities inside a world.

An avatar is position + status + appearance; the identity layer (who
owns which avatar, clones, unlinkability) lives in
``repro.privacy.avatars`` — the world only knows avatar ids, which is
itself a privacy property (the paper's §II-B obfuscation works *because*
worlds do not see owners).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import WorldError

__all__ = ["AvatarStatus", "Avatar"]

Position = Tuple[float, float]


class AvatarStatus(str, enum.Enum):
    """Moderation-relevant states (sanctions set these)."""

    ACTIVE = "active"
    MUTED = "muted"  # cannot initiate chat/whisper
    SUSPENDED = "suspended"  # cannot interact at all, still present
    BANNED = "banned"  # removed from the world


@dataclass
class Avatar:
    """One embodied presence.

    ``appearance`` is free-form (the paper's equality argument: "users
    can customise their avatars, where their imagination is the limit").
    """

    avatar_id: str
    position: Position = (0.0, 0.0)
    status: AvatarStatus = AvatarStatus.ACTIVE
    appearance: Dict[str, str] = field(default_factory=dict)
    joined_at: float = 0.0

    @property
    def can_move(self) -> bool:
        return self.status in (AvatarStatus.ACTIVE, AvatarStatus.MUTED)

    def may_initiate(self, kind: str) -> bool:
        """Status gate on initiating an interaction of ``kind``."""
        if self.status is AvatarStatus.BANNED:
            return False
        if self.status is AvatarStatus.SUSPENDED:
            return False
        if self.status is AvatarStatus.MUTED and kind in ("chat", "whisper", "shout"):
            return False
        return True

    def may_receive(self) -> bool:
        """Banned/suspended avatars receive nothing."""
        return self.status in (AvatarStatus.ACTIVE, AvatarStatus.MUTED)
