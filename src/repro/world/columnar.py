"""Columnar agent-state core: struct-of-arrays society for 1M+ agents.

Per-agent Python objects and ``Dict[str, int]`` state put a practical
ceiling around 100k agents: every balance is a boxed int, every address
a repeated 64-char string key, and shipping a shard means pickling a
dict per agent.  :class:`AgentTable` stores the *hot* per-agent state as
typed numpy columns instead:

======================  ==========  =======================================
column                  dtype       backs
======================  ==========  =======================================
``balances``            int64       ledger genesis balances
``nonces``              int32       the load-workload nonce tracker
``reputation``          float64     cached per-agent trust readout
``privacy_spent``       float64     :class:`repro.privacy.PrivacyBudget`
``privacy_cap``         float64     per-subject budget caps
``consent``             uint8       consent bitmap (bit per channel)
======================  ==========  =======================================

That is :data:`BYTES_PER_AGENT_COLUMNS` = 37 bytes of column data per
agent — the address strings themselves (interned once, shared
everywhere) dominate actual memory.

Three pieces:

* :class:`AddressInterner` — bidirectional address↔index table so hot
  paths pass ``int`` indices instead of hashing 64-char strings.
* :class:`AgentTable` — the columns plus bulk kernels
  (:meth:`AgentTable.apply_transfers` for an epoch of ledger writes,
  vectorized nonce prechecks) used by the columnar load path and the
  scaling benchmarks.
* :class:`ColumnMap` — a :class:`~collections.abc.MutableMapping` view
  presenting one column under the existing ``Dict[str, number]``
  contract, so ``LedgerState``, ``PrivacyBudget`` and the serving
  repository keep working unchanged on top of columns.  Unknown
  (non-interned) keys — e.g. the block validator collecting fees — spill
  into a small overflow dict.

Determinism: every value stored in a column round-trips exactly
(int64 / IEEE float64 are the same numbers Python uses), so a workload
run column-backed is byte-identical — metrics and traces — to the same
run on dicts.  ``tests/property/test_columnar_props.py`` pins this.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from operator import itemgetter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "AddressInterner",
    "AgentTable",
    "ColumnMap",
    "BYTES_PER_AGENT_COLUMNS",
]

#: Raw column bytes per agent: 8 (balance) + 4 (nonce) + 8 (reputation)
#: + 8 (spent) + 8 (cap) + 1 (consent).
BYTES_PER_AGENT_COLUMNS = 37


class AddressInterner:
    """Bidirectional address ↔ dense-index table.

    Built once per society; hot paths then pass ``int`` indices and only
    rehydrate strings at the boundary (transactions, metrics labels).
    """

    __slots__ = ("_addresses", "_index")

    def __init__(self, addresses: Sequence[str]):
        self._addresses: List[str] = list(addresses)
        # dict(zip(...)) builds the index entirely in C — measurably
        # faster than a comprehension at the 1M tier.
        self._index: Dict[str, int] = dict(
            zip(self._addresses, range(len(self._addresses)))
        )
        if len(self._index) != len(self._addresses):
            raise ValueError("duplicate address in interner")

    def __len__(self) -> int:
        return len(self._addresses)

    def __contains__(self, address: object) -> bool:
        return address in self._index

    @property
    def addresses(self) -> List[str]:
        """The interned address list (do not mutate)."""
        return self._addresses

    def index_of(self, address: str) -> int:
        """Dense index of ``address``; raises ``KeyError`` if unknown."""
        return self._index[address]

    def get(self, address: str, default: int = -1) -> int:
        return self._index.get(address, default)

    def address_of(self, index: int) -> str:
        return self._addresses[index]

    def indices_of(self, addresses: Iterable[str]) -> np.ndarray:
        """Vectorize a batch lookup; raises ``KeyError`` on any miss."""
        index = self._index
        return np.fromiter(
            (index[a] for a in addresses), dtype=np.int64
        )

    def bulk_indices(self, addresses: Sequence[str]) -> Optional[np.ndarray]:
        """Batch address→index lookup; ``None`` if any address is
        unknown (callers fall back to their per-key path).

        ``operator.itemgetter`` resolves the whole batch in C, roughly
        twice as fast as a Python-level generator over ``dict.get`` —
        this sits on the vectorized budget-charge hot path.
        """
        n = len(addresses)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        try:
            got = itemgetter(*addresses)(self._index)
        except KeyError:
            return None
        if n == 1:
            return np.array([got], dtype=np.int64)
        return np.array(got, dtype=np.int64)


class ColumnMap(MutableMapping):
    """``Dict[str, number]`` view over one :class:`AgentTable` column.

    Reads and writes on interned addresses go straight to the column;
    non-interned keys (rare — e.g. the fee-collecting validator) spill
    into an overflow dict.  Values are returned as plain Python ``int``
    / ``float`` so callers (JSON metrics included) never see numpy
    scalars.
    """

    __slots__ = ("_interner", "_column", "_cast", "_overflow")

    def __init__(self, interner: AddressInterner, column: np.ndarray, cast=None):
        self._interner = interner
        self._column = column
        self._cast = cast if cast is not None else (
            float if column.dtype.kind == "f" else int
        )
        self._overflow: Dict[str, object] = {}

    def __getitem__(self, key: str):
        i = self._interner.get(key)
        if i >= 0:
            return self._cast(self._column[i])
        return self._overflow[key]

    def __setitem__(self, key: str, value) -> None:
        i = self._interner.get(key)
        if i >= 0:
            self._column[i] = value
        else:
            self._overflow[key] = self._cast(value)

    def __delitem__(self, key: str) -> None:
        raise TypeError("ColumnMap entries cannot be deleted")

    def __contains__(self, key: object) -> bool:
        return key in self._interner or key in self._overflow

    def __iter__(self) -> Iterator[str]:
        yield from self._interner.addresses
        yield from self._overflow

    def __len__(self) -> int:
        return len(self._interner) + len(self._overflow)

    def items(self):
        cast = self._cast
        column = self._column
        for i, address in enumerate(self._interner.addresses):
            yield address, cast(column[i])
        yield from self._overflow.items()

    def values(self):
        for _, value in self.items():
            yield value

    def get(self, key: str, default=None):
        i = self._interner.get(key)
        if i >= 0:
            return self._cast(self._column[i])
        return self._overflow.get(key, default)

    def copy(self) -> Dict[str, object]:
        return dict(self.items())


class AgentTable:
    """Struct-of-arrays hot state for a synthetic society.

    The table owns the columns; views handed to the ledger / privacy
    substrates alias them (no copies).  Columns used as a copy-on-write
    *base* (ledger genesis balances) must not be mutated after handing
    them out — the bulk kernels below are for tables the caller owns
    outright (benchmark kernels, the load nonce tracker).
    """

    __slots__ = (
        "interner",
        "balances",
        "nonces",
        "reputation",
        "privacy_spent",
        "privacy_cap",
        "consent",
    )

    def __init__(
        self,
        addresses: Sequence[str],
        *,
        initial_balance: int = 0,
        privacy_cap: float = 0.0,
    ):
        n = len(addresses)
        self.interner = (
            addresses
            if isinstance(addresses, AddressInterner)
            else AddressInterner(addresses)
        )
        self.balances = np.full(n, int(initial_balance), dtype=np.int64)
        self.nonces = np.zeros(n, dtype=np.int32)
        self.reputation = np.zeros(n, dtype=np.float64)
        self.privacy_spent = np.zeros(n, dtype=np.float64)
        self.privacy_cap = np.full(n, float(privacy_cap), dtype=np.float64)
        self.consent = np.zeros(n, dtype=np.uint8)

    # ------------------------------------------------------------------
    # Shape / memory accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.interner)

    @property
    def nbytes(self) -> int:
        """Total column bytes (excludes the interned address strings)."""
        return (
            self.balances.nbytes
            + self.nonces.nbytes
            + self.reputation.nbytes
            + self.privacy_spent.nbytes
            + self.privacy_cap.nbytes
            + self.consent.nbytes
        )

    @property
    def bytes_per_agent(self) -> float:
        n = len(self)
        return self.nbytes / n if n else 0.0

    # ------------------------------------------------------------------
    # Dict-compatible views
    # ------------------------------------------------------------------
    def balance_map(self) -> ColumnMap:
        return ColumnMap(self.interner, self.balances, int)

    def nonce_map(self) -> ColumnMap:
        return ColumnMap(self.interner, self.nonces, int)

    def spent_map(self) -> ColumnMap:
        return ColumnMap(self.interner, self.privacy_spent, float)

    def cap_map(self) -> ColumnMap:
        return ColumnMap(self.interner, self.privacy_cap, float)

    # ------------------------------------------------------------------
    # Consent bitmap
    # ------------------------------------------------------------------
    def grant_consent(self, index: int, channel_bit: int) -> None:
        self.consent[index] |= np.uint8(1 << channel_bit)

    def has_consent(self, index: int, channel_bit: int) -> bool:
        return bool(self.consent[index] & (1 << channel_bit))

    # ------------------------------------------------------------------
    # Bulk ledger kernels (column-to-column)
    # ------------------------------------------------------------------
    def precheck_nonces(
        self, senders: np.ndarray, nonces: np.ndarray
    ) -> bool:
        """Vectorized nonce precheck for an epoch batch.

        Valid iff, taken in order, each sender's nonces continue its
        column value consecutively (the exact condition the per-tx
        ``LedgerState.apply`` loop enforces one tx at a time).  Batch
        order is positional: earlier array entries apply first.
        """
        senders = np.asarray(senders, dtype=np.int64)
        nonces = np.asarray(nonces, dtype=np.int64)
        if senders.shape != nonces.shape:
            raise ValueError("senders and nonces must align")
        if senders.size == 0:
            return True
        # Stable-sort by sender; within a sender, positional order is
        # preserved, so the expected nonce sequence is base, base+1, ...
        order = np.argsort(senders, kind="stable")
        s_sorted = senders[order]
        n_sorted = nonces[order]
        boundary = np.empty(s_sorted.size, dtype=bool)
        boundary[0] = True
        np.not_equal(s_sorted[1:], s_sorted[:-1], out=boundary[1:])
        group_ids = np.cumsum(boundary) - 1
        starts = np.flatnonzero(boundary)
        rank = np.arange(s_sorted.size, dtype=np.int64) - starts[group_ids]
        expected = self.nonces[s_sorted].astype(np.int64) + rank
        return bool(np.array_equal(n_sorted, expected))

    def apply_transfers(
        self,
        senders: np.ndarray,
        recipients: np.ndarray,
        amounts: np.ndarray,
        fees: np.ndarray,
        nonces: Optional[np.ndarray] = None,
        *,
        fee_sink: Optional[np.ndarray] = None,
    ) -> None:
        """Apply an epoch's transfer batch column-to-column.

        Exact-equivalent to applying the batch one transaction at a time
        *when the whole batch is valid* — which the caller establishes
        first via :meth:`precheck_nonces` plus the conservative solvency
        check below (each sender's **total** spend within the batch must
        fit its starting balance; sequential application can only be
        more permissive, never less, because intermediate credits only
        add funds).  Raises ``ValueError`` without touching any column
        if the batch fails either check; the caller then falls back to
        the sequential path to surface the per-tx error.

        ``fee_sink`` (an int64 scalar array) accumulates fees, standing
        in for the validator's credit.
        """
        senders = np.asarray(senders, dtype=np.int64)
        recipients = np.asarray(recipients, dtype=np.int64)
        amounts = np.asarray(amounts, dtype=np.int64)
        fees = np.asarray(fees, dtype=np.int64)
        if amounts.size and (amounts.min() < 0 or fees.min() < 0):
            raise ValueError("negative amount or fee in batch")
        if nonces is not None and not self.precheck_nonces(senders, nonces):
            raise ValueError("nonce precheck failed")
        n = len(self)
        spend = np.zeros(n, dtype=np.int64)
        np.add.at(spend, senders, amounts + fees)
        if np.any(spend > self.balances):
            raise ValueError("batch overspends a sender balance")
        self.balances -= spend
        credit = np.zeros(n, dtype=np.int64)
        np.add.at(credit, recipients, amounts)
        self.balances += credit
        counts = np.zeros(n, dtype=np.int64)
        np.add.at(counts, senders, 1)
        self.nonces += counts.astype(np.int32)
        if fee_sink is not None:
            fee_sink += fees.sum()

    # ------------------------------------------------------------------
    # Bulk privacy kernel (uniform-cap fast charge lives on the budget;
    # this is the raw column op the benchmarks exercise)
    # ------------------------------------------------------------------
    def charge_spent(
        self,
        subjects: np.ndarray,
        epsilons: np.ndarray,
        tolerance: float = 1e-12,
    ) -> np.ndarray:
        """Charge ε per entry into the spent column, sequential-exact.

        Returns a boolean accept mask with *identical* accept/refuse
        decisions (and identical float accumulation) to charging the
        entries one at a time in order: each refusal skips that entry
        only, later entries for the same subject still get their turn,
        and every accepted charge performs one IEEE ``spent + ε``
        rounded add in the entry's sequential position.

        Vectorization reorders work only *across* subjects (which are
        independent): round ``r`` processes every subject's ``r``-th
        entry at once.  Within a round each subject appears at most
        once, so the fancy-indexed ``+=`` is race-free.
        """
        subjects = np.asarray(subjects, dtype=np.int64)
        epsilons = np.asarray(epsilons, dtype=np.float64)
        m = subjects.size
        accepted = np.zeros(m, dtype=bool)
        if m == 0:
            return accepted
        order = np.argsort(subjects, kind="stable")
        s_sorted = subjects[order]
        boundary = np.empty(m, dtype=bool)
        boundary[0] = True
        np.not_equal(s_sorted[1:], s_sorted[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        spent = self.privacy_spent
        caps = self.privacy_cap
        if starts.size == m:
            # Every subject distinct: the batch is a single round.
            rounds = [order]
        else:
            group_ids = np.cumsum(boundary) - 1
            rank = np.arange(m, dtype=np.int64) - starts[group_ids]
            # Regroup by round once so each round is a contiguous slice
            # instead of a full boolean scan per round.
            by_rank = np.argsort(rank, kind="stable")
            rank_sorted = rank[by_rank]
            round_boundary = np.empty(m, dtype=bool)
            round_boundary[0] = True
            np.not_equal(
                rank_sorted[1:], rank_sorted[:-1], out=round_boundary[1:]
            )
            round_starts = np.append(np.flatnonzero(round_boundary), m)
            entries_by_round = order[by_rank]
            rounds = [
                entries_by_round[round_starts[k]: round_starts[k + 1]]
                for k in range(round_starts.size - 1)
            ]
        for entry in rounds:
            subj = subjects[entry]
            eps = epsilons[entry]
            room = caps[subj] - spent[subj]
            np.maximum(room, 0.0, out=room)
            fits = eps <= room + tolerance
            hit = entry[fits]
            if hit.size:
                accepted[hit] = True
                spent[subj[fits]] += eps[fits]
        return accepted
