"""Plain-text result tables for the benchmark harness.

Every benchmark prints one paper-style table: rows are parameter-sweep
points, columns are metrics per configuration.  :class:`ResultTable`
keeps the data queryable (the shape assertions read it back) and renders
aligned text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = ["ResultTable"]

Number = Union[int, float]


class ResultTable:
    """A column-ordered results table.

    Examples
    --------
    >>> table = ResultTable("demo", columns=["n", "score"])
    >>> table.add_row(n=10, score=0.5)
    >>> table.value(0, "score")
    0.5
    """

    def __init__(self, title: str, columns: Sequence[str]):
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self._columns: List[str] = list(columns)
        self._rows: List[Dict[str, Any]] = []

    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    @property
    def rows(self) -> List[Dict[str, Any]]:
        return [dict(r) for r in self._rows]

    def add_row(self, **values: Any) -> None:
        unknown = set(values) - set(self._columns)
        if unknown:
            raise ValueError(f"unknown columns: {sorted(unknown)}")
        self._rows.append({c: values.get(c, "") for c in self._columns})

    def value(self, row: int, column: str) -> Any:
        return self._rows[row][column]

    def column(self, column: str) -> List[Any]:
        if column not in self._columns:
            raise ValueError(f"no column {column!r}")
        return [r[column] for r in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 1:
                return f"{value:.3g}"
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        header = list(self._columns)
        body = [[self._format(row[c]) for c in header] for row in self._rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for row in body:
            lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate, mirrors rich API
        print()
        print(self.render())
        print()
