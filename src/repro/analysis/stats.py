"""Statistical helpers for experiment shape checks.

Benchmarks assert the *shape* of results (who wins, which way the trend
goes), not absolute numbers; these helpers make those assertions
explicit and reusable.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "mean_and_ci",
    "is_monotonic_decreasing",
    "is_monotonic_increasing",
    "dominates",
    "relative_change",
]


def mean_and_ci(samples: Sequence[float], confidence: float = 0.95) -> Tuple[float, float]:
    """Sample mean and half-width of a normal-approximation CI."""
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        return 0.0, 0.0
    mean = float(data.mean())
    if data.size == 1:
        return mean, 0.0
    z = {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}.get(confidence, 1.96)
    half_width = z * float(data.std(ddof=1)) / math.sqrt(data.size)
    return mean, half_width


def is_monotonic_decreasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True if each value is ≤ its predecessor + tolerance (noise slack)."""
    values = list(values)
    return all(b <= a + tolerance for a, b in zip(values, values[1:]))


def is_monotonic_increasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    values = list(values)
    return all(b >= a - tolerance for a, b in zip(values, values[1:]))


def dominates(winner: Sequence[float], loser: Sequence[float], margin: float = 0.0) -> bool:
    """True if ``winner`` beats ``loser`` pointwise by at least ``margin``
    (higher-is-better metrics)."""
    winner = list(winner)
    loser = list(loser)
    if len(winner) != len(loser):
        raise ValueError("sequences must have equal length")
    return all(w >= l + margin for w, l in zip(winner, loser))


def relative_change(baseline: float, treated: float) -> float:
    """(treated - baseline) / |baseline|; 0 when baseline is 0."""
    if baseline == 0:
        return 0.0
    return (treated - baseline) / abs(baseline)
