"""Result tables and statistical shape checks for the bench harness."""

from repro.analysis.stats import (
    dominates,
    is_monotonic_decreasing,
    is_monotonic_increasing,
    mean_and_ci,
    relative_change,
)
from repro.analysis.tables import ResultTable

__all__ = [
    "dominates",
    "is_monotonic_decreasing",
    "is_monotonic_increasing",
    "mean_and_ci",
    "relative_change",
    "ResultTable",
]
