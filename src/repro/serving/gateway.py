"""The serving gateway: middleware chain + virtual-time queueing.

One :class:`ServingGateway` is the in-process equivalent of the API
tier in a service-per-substrate deployment: arrivals enter through
:meth:`submit` (scheduled on the shared
:class:`~repro.serving.loop.EventLoop`), walk the middleware chain
(validation → read cache → token bucket + bounded queue), occupy one of
``n_servers`` simulated workers for a deterministic service time, and
complete with a :class:`~repro.serving.schemas.Response` stamped
entirely in simulated seconds.

Platform work that a batch loop would do per epoch happens here as
*periodic loop events*: block production drains the mempool every
``block_interval``, governance windows roll every ``vote_window``, and
moderation review capacity drains every ``review_interval`` — so the
fronted substrates advance exactly as they would under the epoch
workload, but interleaved with live request traffic.

Per-endpoint latency histograms, queue-wait histograms, queue-depth
gauges, and status counters land in the shared
:class:`~repro.sim.metrics.MetricsRegistry`; with observability wired,
every response and platform tick also emits trace events/spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.context import (
    REQUEST_SOURCE,
    STAGE_PREFIX,
    RequestContext,
    RequestTraceSampler,
    request_span_id,
)
from repro.obs.instrument import NULL_OBS, Instrumentation
from repro.obs.timeseries import WindowedTelemetry
from repro.serving.loop import (
    EventLoop,
    PRIORITY_COMPLETION,
    PRIORITY_PLATFORM,
)
from repro.serving.middleware import BoundedQueue, ReadCache, TokenBucket
from repro.serving.repository import ServingRepository
from repro.serving.schemas import Endpoint, Request, Response, Status
from repro.sim.metrics import MetricsRegistry

__all__ = ["ServingConfig", "ServingGateway"]


#: Which repository surface (version namespace) each read endpoint
#: fronts — the cache invalidates on that surface's writes.
_READ_SURFACE = {
    Endpoint.GET_BALANCE: "ledger",
    Endpoint.GET_TALLY: "tally",
}


@dataclass(frozen=True)
class ServingConfig:
    """Gateway tuning knobs (all times in simulated seconds).

    The defaults model a small service pod: two workers, millisecond
    substrate calls, a queue that absorbs ~100 ms of burst, and rate
    limits well above the nominal per-surface load so that under
    overload it is queue backpressure (not the buckets) that sheds
    first.  ``service_jitter`` shapes the service-time tail: each
    service draw is ``base * (0.75 + jitter * Exp(1))``, giving mean
    ``base * (0.75 + jitter)`` and an exponential upper tail — the p99
    the bench reports is real queueing-plus-tail, not an artifact.
    """

    n_servers: int = 2
    queue_limit: int = 64
    cache_ttl: float = 0.5
    cache_capacity: int = 4096
    cache_hit_cost: float = 0.0002
    validation_cost: float = 0.0001
    service_jitter: float = 0.25
    block_interval: float = 1.0
    block_size: int = 250
    vote_window: float = 10.0
    review_interval: float = 2.0
    drain_window: float = 5.0
    rate_limits: Dict[Endpoint, Tuple[float, float]] = field(
        default_factory=lambda: {
            Endpoint.SUBMIT_TX: (600.0, 120.0),
            Endpoint.FILE_REPORT: (300.0, 60.0),
            Endpoint.CAST_VOTE: (300.0, 60.0),
            Endpoint.INGEST_FRAME: (600.0, 120.0),
            Endpoint.GET_BALANCE: (2_000.0, 400.0),
            Endpoint.GET_TALLY: (2_000.0, 400.0),
        }
    )
    service_times: Dict[Endpoint, float] = field(
        default_factory=lambda: {
            Endpoint.SUBMIT_TX: 0.0030,
            Endpoint.FILE_REPORT: 0.0025,
            Endpoint.CAST_VOTE: 0.0020,
            Endpoint.INGEST_FRAME: 0.0035,
            Endpoint.GET_BALANCE: 0.0008,
            Endpoint.GET_TALLY: 0.0010,
        }
    )


class ServingGateway:
    """Routes requests through middleware into the repository.

    Parameters
    ----------
    repo:
        The substrate repository (owns versions and domain outcomes).
    loop:
        The shared virtual-clock event loop.
    config:
        Queueing/caching/rate knobs.
    registry:
        Metrics sink (latency histograms, queue gauges, status counters).
    service_rng:
        Seeded generator for service-time draws — consumed in
        service-start order, which the deterministic loop fixes.
    obs:
        Optional observability; responses and ticks emit trace events.
    telemetry:
        Optional :class:`WindowedTelemetry` rollup; every response and
        queue-depth change is windowed on the virtual clock.
    sampler:
        Optional :class:`RequestTraceSampler`; requests arriving with a
        :class:`RequestContext` are offered for trace export under its
        head/status/tail keep rules.
    """

    def __init__(
        self,
        repo: ServingRepository,
        loop: EventLoop,
        config: ServingConfig,
        registry: MetricsRegistry,
        service_rng: np.random.Generator,
        obs: Optional[Instrumentation] = None,
        telemetry: Optional[WindowedTelemetry] = None,
        sampler: Optional[RequestTraceSampler] = None,
    ):
        if config.n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {config.n_servers}")
        self.repo = repo
        self.loop = loop
        self.config = config
        self.registry = registry
        self._rng = service_rng
        self._obs = obs if obs is not None else NULL_OBS
        self._telemetry = telemetry
        self._sampler = sampler
        self.cache = ReadCache(config.cache_ttl, config.cache_capacity)
        self.queue = BoundedQueue(config.queue_limit)
        self._buckets: Dict[Endpoint, TokenBucket] = {
            endpoint: TokenBucket(rate, burst)
            for endpoint, (rate, burst) in config.rate_limits.items()
        }
        self._busy = 0
        self.responses: List[Response] = []
        self._horizon: Optional[float] = None
        self._dispatch = {
            Endpoint.SUBMIT_TX: repo.submit_tx,
            Endpoint.FILE_REPORT: repo.file_report,
            Endpoint.CAST_VOTE: repo.cast_vote,
            Endpoint.INGEST_FRAME: repo.ingest_frame,
            Endpoint.GET_BALANCE: repo.get_balance,
            Endpoint.GET_TALLY: repo.get_tally,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, horizon: float) -> None:
        """Open the first governance window and schedule platform ticks.

        Periodic ticks self-reschedule until ``horizon +
        drain_window``, so in-flight requests admitted near the horizon
        still see blocks produced and reviews drained, after which the
        loop's heap empties and the run ends.
        """
        self._horizon = horizon + self.config.drain_window
        self.repo.roll_proposal(self.loop.now, self.config.vote_window)
        self._schedule_tick(self.config.block_interval, self._block_tick)
        self._schedule_tick(self.config.vote_window, self._vote_tick)
        self._schedule_tick(self.config.review_interval, self._review_tick)

    def _schedule_tick(self, at: float, tick) -> None:
        if self._horizon is not None and at <= self._horizon:
            self.loop.schedule(at, tick, priority=PRIORITY_PLATFORM)

    def _block_tick(self) -> None:
        now = self.loop.now
        with self._obs.span("serving", "tick.blocks", time=now) as span:
            produced = self.repo.produce_blocks(now, self.config.block_size)
            span.set_attribute("blocks", produced)
        if produced:
            self.registry.counter("serving.blocks_produced").inc(produced)
        self._schedule_tick(now + self.config.block_interval, self._block_tick)

    def _vote_tick(self) -> None:
        now = self.loop.now
        with self._obs.span("serving", "tick.proposal", time=now):
            self.repo.roll_proposal(now, self.config.vote_window)
        self.registry.counter("serving.proposal_windows").inc()
        self._schedule_tick(now + self.config.vote_window, self._vote_tick)

    def _review_tick(self) -> None:
        now = self.loop.now
        with self._obs.span("serving", "tick.review", time=now) as span:
            reviewed = self.repo.run_review(now)
            span.set_attribute("reviewed", reviewed)
        if reviewed:
            self.registry.counter("serving.cases_reviewed").inc(reviewed)
        self._schedule_tick(now + self.config.review_interval, self._review_tick)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(
        self, request: Request, ctx: Optional[RequestContext] = None
    ) -> None:
        """Arrival entry point; called as a loop event at arrival time.

        ``ctx`` is the request's trace context (None when request-scoped
        tracing is off — the dark path stays exactly as cheap as before).
        Every terminal outcome hands the sampler a stage decomposition
        ``(name, start, end)`` that covers the response's full latency,
        which is what makes the critical-path attribution ≥ 95% by
        construction.
        """
        now = self.loop.now
        endpoint = request.endpoint
        self.registry.counter(f"serving.offered.{endpoint.value}").inc()
        if ctx is not None:
            ctx.arrived = now

        # Stage 1: validation — malformed requests never go further.
        error = request.validate()
        if error is not None:
            completed = now + self.config.validation_cost
            self._respond(
                request, Status.INVALID, now, completed,
                body={"error": error}, ctx=ctx,
                stages=(
                    (("validation", now, completed),)
                    if ctx is not None else ()
                ),
            )
            return

        # Stage 2: TTL+version read cache.
        key = request.cache_key()
        if key is not None:
            surface = _READ_SURFACE[endpoint]
            body = self.cache.lookup(key, now, self.repo.version(surface))
            if body is not None:
                self.registry.counter("serving.cache.hit").inc()
                completed = now + self.config.cache_hit_cost
                self._respond(
                    request, Status.OK, now, completed,
                    cached=True, body=body, ctx=ctx,
                    stages=(
                        (("cache", now, completed),)
                        if ctx is not None else ()
                    ),
                )
                return
            self.registry.counter("serving.cache.miss").inc()

        # Stage 3: admission — token bucket, then bounded queue.
        if not self._buckets[endpoint].try_take(now):
            self.registry.counter("serving.shed.rate_limit").inc()
            self._respond(
                request, Status.SHED, now, now,
                body={"error": "rate limit"}, ctx=ctx,
                stages=(
                    (("admission", now, now),) if ctx is not None else ()
                ),
            )
            return
        if self._busy < self.config.n_servers:
            self._start_service(request, arrived=now, ctx=ctx)
        elif self.queue.offer((request, now, ctx)):
            depth = len(self.queue)
            self.registry.gauge("serving.queue.depth").set(float(depth))
            self.registry.histogram("serving.queue.depth_at_enqueue").observe(
                float(depth)
            )
            if self._telemetry is not None:
                self._telemetry.observe_queue_depth(now, float(depth))
        else:
            self.registry.counter("serving.shed.queue_full").inc()
            self._respond(
                request, Status.SHED, now, now,
                body={"error": "queue full"}, ctx=ctx,
                stages=(
                    (("admission", now, now),) if ctx is not None else ()
                ),
            )

    def _start_service(
        self,
        request: Request,
        arrived: float,
        ctx: Optional[RequestContext] = None,
    ) -> None:
        now = self.loop.now
        self._busy += 1
        endpoint = request.endpoint
        base = self.config.service_times[endpoint]
        jitter = self.config.service_jitter
        service_time = base * (0.75 + jitter * float(self._rng.exponential(1.0)))
        self.registry.histogram(
            f"serving.queue_wait_ms.{endpoint.value}"
        ).observe((now - arrived) * 1e3)
        if ctx is not None:
            ctx.service_start = now
        self.loop.schedule(
            now + service_time,
            lambda: self._complete(request, arrived, ctx),
            priority=PRIORITY_COMPLETION,
        )

    def _complete(
        self,
        request: Request,
        arrived: float,
        ctx: Optional[RequestContext] = None,
    ) -> None:
        now = self.loop.now
        endpoint = request.endpoint
        if ctx is not None and ctx.sampled and self._obs.enabled:
            # Head-sampled request: wrap the substrate dispatch in a
            # live span with forced ids, so the substrate's own spans
            # become children of this request's tree.
            ctx.substrate_traced = True
            span = self._obs.tracer.span_in_trace(
                REQUEST_SOURCE,
                f"{STAGE_PREFIX}substrate",
                trace_id=ctx.trace_id,
                span_id=request_span_id(ctx.trace_id, "stage:substrate"),
                parent_id=request_span_id(ctx.trace_id, "root"),
                time=ctx.service_start,
            )
            with span:
                try:
                    status, body = self._dispatch[endpoint](request, now)
                except Exception as exc:
                    status, body = Status.ERROR, {"error": repr(exc)}
                    span.set_status("error")
        elif ctx is not None and self._obs.enabled:
            # Sampled-out request: sampling gates the tracing *cost*,
            # not just the export — substrate span emission is muted
            # for this dispatch (metrics stay live).  The suppression
            # flag is toggled inline (a context manager's enter/exit
            # would cost two extra method calls per request).
            obs = self._obs
            obs._suppressed += 1
            try:
                status, body = self._dispatch[endpoint](request, now)
            except Exception as exc:
                status, body = Status.ERROR, {"error": repr(exc)}
            finally:
                obs._suppressed -= 1
        else:
            try:
                status, body = self._dispatch[endpoint](request, now)
            except Exception as exc:  # a healthy run serves zero of these
                status, body = Status.ERROR, {"error": repr(exc)}
        key = request.cache_key()
        if key is not None and status == Status.OK:
            surface = _READ_SURFACE[endpoint]
            self.cache.store(key, body, now, self.repo.version(surface))
        # stages=None is the served-path marker: the sampler derives the
        # standard admission/queue/substrate decomposition lazily, only
        # for traces it actually keeps.
        self._respond(
            request, status, arrived, now, body=body, ctx=ctx,
            stages=None if ctx is not None else (),
        )
        self._busy -= 1
        if len(self.queue) > 0:
            queued_request, queued_arrival, queued_ctx = self.queue.take()
            depth = len(self.queue)
            self.registry.gauge("serving.queue.depth").set(float(depth))
            if self._telemetry is not None:
                self._telemetry.observe_queue_depth(now, float(depth))
            self._start_service(queued_request, queued_arrival, queued_ctx)

    def _respond(
        self,
        request: Request,
        status: Status,
        arrived: float,
        completed: float,
        cached: bool = False,
        body: Optional[Dict] = None,
        ctx: Optional[RequestContext] = None,
        stages: Optional[Tuple[Tuple[str, float, float], ...]] = (),
    ) -> None:
        endpoint = request.endpoint
        # One enum-descriptor walk, reused below: ``endpoint.value`` is
        # a property behind ``DynamicClassAttribute`` and costs real
        # time on this per-response path.
        endpoint_name = endpoint.value
        status_code = int(status)
        response = Response(
            endpoint=endpoint,
            status=status,
            arrived=arrived,
            completed=completed,
            cached=cached,
            body=body if body is not None else {},
        )
        self.responses.append(response)
        self.registry.counter(
            f"serving.status.{endpoint_name}.{status_code}"
        ).inc()
        if status != Status.SHED:
            latency_ms = response.latency * 1e3
            self.registry.histogram(
                f"serving.latency_ms.{endpoint_name}"
            ).observe(latency_ms)
            self.registry.histogram("serving.latency_ms.all").observe(
                latency_ms
            )
        if self._telemetry is not None:
            self._telemetry.record_response(
                endpoint_name, status_code, arrived, completed, cached
            )
        if self._sampler is not None and ctx is not None:
            self._sampler.on_response(
                ctx, endpoint_name, status_code, arrived, completed,
                stages, cached,
            )
        if ctx is None or ctx.sampled:
            # With sampling active, per-request trace events follow the
            # head decision — sampled-out requests leave no trace rows.
            self._obs.event(
                "serving",
                "request.served",
                time=completed,
                endpoint=endpoint_name,
                status=status_code,
                cached=cached,
                arrived=arrived,
            )
