"""Serving determinism gate: same seed, same bytes, twice.

``python -m repro.serving.check`` runs one seeded open-loop scenario
(flash crowd included) through the full serving stack twice and
asserts:

* **replay determinism** — metrics payloads *and* exported traces are
  byte-identical between the two runs (virtual time only; no wall clock
  leaked into any measurement);
* **middleware liveness** — the run exercised every stage: cache hits
  *and* misses, at least one shed (backpressure actually fired), some
  invalid requests rejected at validation, and policy refusals from the
  substrates;
* **platform liveness** — blocks were produced, cases reviewed, and
  admitted transactions landed in blocks.

Exits non-zero on any violation (the ``make serve-check`` target).
"""

from __future__ import annotations

import json
from typing import Dict

__all__ = ["check_serving", "CHECK_TRAFFIC", "CHECK_SERVING"]

# Small enough for CI, loaded enough that the queue fills during the
# spike (offered rate briefly exceeds 2 servers' capacity).
CHECK_TRAFFIC = dict(
    n_users=400,
    horizon=20.0,
    rate_per_user=0.9,
    seed=2022,
)
CHECK_SPIKE = dict(start=8.0, end=11.0, multiplier=6.0)
CHECK_SERVING = dict(
    n_servers=2,
    queue_limit=48,
    cache_ttl=0.5,
)


def _payload(result) -> str:
    return json.dumps(result.metrics, sort_keys=True)


def check_serving() -> Dict[str, object]:
    """Run the scenario twice and assert byte equivalence + liveness.

    Returns a summary dict; raises AssertionError on violation.
    """
    from repro.serving.gateway import ServingConfig
    from repro.serving.run import run_serving
    from repro.serving.schemas import Status
    from repro.workloads.traffic import SpikeWindow, TrafficConfig

    traffic = TrafficConfig(spikes=(SpikeWindow(**CHECK_SPIKE),), **CHECK_TRAFFIC)
    serving = ServingConfig(**CHECK_SERVING)

    first = run_serving(traffic, serving, trace=True)
    replay = run_serving(traffic, serving, trace=True)

    assert _payload(first) == _payload(replay), (
        "serving replay diverged: same seed, different metrics payloads"
    )
    assert first.trace_jsonl == replay.trace_jsonl, (
        "serving replay diverged: same seed, different trace exports"
    )
    assert first.trace_jsonl is not None and first.trace_jsonl

    counts = first.status_counts
    assert counts.get(int(Status.OK), 0) > 0, "no request succeeded"
    assert counts.get(int(Status.SHED), 0) > 0, (
        "backpressure never fired — the spike should overload 2 servers"
    )
    assert counts.get(int(Status.INVALID), 0) > 0, (
        "validation rejected nothing despite invalid_frac > 0"
    )
    assert counts.get(int(Status.REFUSED), 0) > 0, (
        "no substrate policy refusal (budgets/consent/dedup all silent)"
    )
    assert counts.get(int(Status.ERROR), 0) == 0, (
        "substrate raised instead of refusing — repository bug"
    )
    assert first.cache_hit_rate > 0, "read cache never hit"
    assert 0 < first.blocks_produced
    assert 0 < first.txs_included
    assert first.cases_reviewed > 0
    assert first.offered == first.completed, (
        "some requests never got a response (loop drained incompletely)"
    )

    return {
        "offered": first.offered,
        "ok": counts.get(int(Status.OK), 0),
        "invalid": counts.get(int(Status.INVALID), 0),
        "refused": counts.get(int(Status.REFUSED), 0),
        "shed": counts.get(int(Status.SHED), 0),
        "p50_ms": round(first.p50_ms, 4),
        "p99_ms": round(first.p99_ms, 4),
        "cache_hit_rate": round(first.cache_hit_rate, 4),
        "blocks_produced": first.blocks_produced,
        "trace_bytes": len(first.trace_jsonl),
        "byte_identical": True,
    }


if __name__ == "__main__":
    summary = check_serving()
    for key, value in summary.items():
        print(f"{key:16s} {value}")
    print("serve-check: OK (seeded replay byte-identical)")
