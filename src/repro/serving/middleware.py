"""The serving middleware chain: validate → cache → admit.

Every request walks the same three stages before it may touch a
substrate:

1. **Validation** — the schema's own ``validate()``; a malformed
   request costs one cheap rejection and never consults a substrate.
2. **Read cache** — TTL *and* version keyed: a cached read is served
   only while its TTL has not expired **and** the fronted surface has
   not changed since the entry was written (the repository bumps a
   per-surface version on every applied write).  Either staleness
   signal invalidates, so cached reads are never wrong, only cheap.
3. **Admission control** — a token bucket per endpoint bounds the
   *rate* each surface accepts, and a bounded FIFO queue absorbs
   bursts; when the bucket is dry or the queue is full the request is
   shed with an explicit ``429`` instead of queuing without bound.
   Overload therefore degrades goodput gracefully and keeps latency of
   admitted requests bounded — the backpressure half of "heavy traffic
   from millions of users".

All state advances on simulated time only (callers pass ``now``), so
the chain is deterministic and replayable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.serving.schemas import Request, Response

__all__ = ["TokenBucket", "BoundedQueue", "ReadCache", "CacheEntry"]


class TokenBucket:
    """Deterministic token-bucket rate limiter on the virtual clock.

    Refills continuously at ``rate`` tokens per simulated second up to
    ``burst``; ``try_take`` is the only mutator.  Float arithmetic on
    simulated timestamps is deterministic, so two seeded runs see the
    exact same admit/shed sequence.
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._refilled_at = 0.0

    def _refill(self, now: float) -> None:
        if now > self._refilled_at:
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate
            )
            self._refilled_at = now

    def tokens_at(self, now: float) -> float:
        """Token level at ``now`` (refill applied, nothing consumed)."""
        self._refill(now)
        return self._tokens

    def try_take(self, now: float) -> bool:
        """Consume one token if available; False means rate-shed."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class BoundedQueue:
    """FIFO admission queue with a hard depth bound.

    ``offer`` refuses (returns False) at capacity — the caller sheds
    with 429.  Depth is exposed for the queue-depth gauges.
    """

    def __init__(self, limit: int):
        if limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        self.limit = limit
        self._items: Deque[Any] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.limit

    def offer(self, item: Any) -> bool:
        if self.full:
            return False
        self._items.append(item)
        return True

    def take(self) -> Any:
        return self._items.popleft()


class CacheEntry:
    """One cached read: the body plus its freshness coordinates."""

    __slots__ = ("body", "expires_at", "version")

    def __init__(self, body: Dict[str, Any], expires_at: float, version: int):
        self.body = body
        self.expires_at = expires_at
        self.version = version


class ReadCache:
    """TTL + version keyed read cache for the GET endpoints.

    An entry is served only while **both** hold:

    * ``now < expires_at`` (the TTL bounds staleness in simulated time);
    * the fronted surface's version still equals the entry's version
      (any applied write to that surface invalidates immediately).

    Expired/stale entries are dropped lazily on lookup; a bounded entry
    count keeps memory O(capacity) no matter how many distinct keys the
    traffic touches (FIFO eviction by insertion order — reads repeat
    heavily under real traffic, so recency tracking buys little here).
    """

    def __init__(self, ttl: float, capacity: int = 4096):
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.ttl = float(ttl)
        self.capacity = capacity
        self._entries: Dict[Tuple[Any, ...], CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.stale_version = 0
        self.stale_ttl = 0

    def lookup(
        self, key: Tuple[Any, ...], now: float, version: int
    ) -> Optional[Dict[str, Any]]:
        """The cached body, or None (and the miss reason counters)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if now >= entry.expires_at:
            self.stale_ttl += 1
            self.misses += 1
            del self._entries[key]
            return None
        if entry.version != version:
            self.stale_version += 1
            self.misses += 1
            del self._entries[key]
            return None
        self.hits += 1
        return entry.body

    def store(
        self, key: Tuple[Any, ...], body: Dict[str, Any], now: float, version: int
    ) -> None:
        if key not in self._entries and len(self._entries) >= self.capacity:
            # FIFO eviction: dicts iterate in insertion order.
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = CacheEntry(dict(body), now + self.ttl, version)

    def __len__(self) -> int:
        return len(self._entries)


def validate(request: Request) -> Optional[str]:
    """Stage-1 validation; returns the error string or None."""
    return request.validate()


__all__.append("validate")
