"""repro.serving: a deterministic in-process request-serving tier.

The batch workloads answer "what does an epoch of platform activity
do?"; this package answers the operational question the paper's
"heavy traffic from millions of users" framing raises: what latency and
refusal behaviour does a *service* front-end exhibit under open-loop
load, and where does it saturate?

Layers (service/repository split):

* :mod:`~repro.serving.schemas` — typed request/response contracts for
  the four write surfaces and two read surfaces;
* :mod:`~repro.serving.loop` — the virtual-clock event loop (all
  latency is simulated time; runs are byte-identical);
* :mod:`~repro.serving.middleware` — validation, TTL+version read
  cache, token-bucket + bounded-queue admission control;
* :mod:`~repro.serving.repository` — the substrates behind a uniform
  call surface, with per-surface versions for cache invalidation;
* :mod:`~repro.serving.gateway` — the middleware chain wired onto the
  loop, plus periodic platform ticks (blocks, proposal windows,
  moderation review);
* :mod:`~repro.serving.run` — one-call runner returning p50/p99 and
  status breakdowns;
* :mod:`~repro.serving.check` — the ``make serve-check`` determinism
  gate.
"""

from repro.serving.gateway import ServingConfig, ServingGateway
from repro.serving.loop import (
    EventLoop,
    PRIORITY_ARRIVAL,
    PRIORITY_COMPLETION,
    PRIORITY_PLATFORM,
)
from repro.serving.middleware import BoundedQueue, ReadCache, TokenBucket
from repro.serving.repository import ServingRepository
from repro.serving.run import ServingRunResult, run_serving
from repro.serving.schemas import (
    CastVoteRequest,
    Endpoint,
    FileReportRequest,
    GetBalanceRequest,
    GetTallyRequest,
    IngestFrameRequest,
    Request,
    Response,
    Status,
    SubmitTxRequest,
)

__all__ = [
    "ServingConfig",
    "ServingGateway",
    "ServingRepository",
    "ServingRunResult",
    "run_serving",
    "EventLoop",
    "PRIORITY_ARRIVAL",
    "PRIORITY_COMPLETION",
    "PRIORITY_PLATFORM",
    "BoundedQueue",
    "ReadCache",
    "TokenBucket",
    "Endpoint",
    "Status",
    "Request",
    "Response",
    "SubmitTxRequest",
    "FileReportRequest",
    "CastVoteRequest",
    "IngestFrameRequest",
    "GetBalanceRequest",
    "GetTallyRequest",
]
