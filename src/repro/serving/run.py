"""One serving run: traffic in, latency/saturation measurements out.

:func:`run_serving` wires the stack — seeded traffic from
:mod:`repro.workloads.traffic`, the :class:`ServingGateway` middleware
chain, the :class:`ServingRepository` substrates, one
:class:`EventLoop` — runs it to completion on the virtual clock, and
returns a :class:`ServingRunResult` whose numbers are all simulated-time
measurements: same seed, same bytes, on any host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.obs.context import (
    RequestContext,
    RequestTraceSampler,
    SamplingPolicy,
    head_sampled,
)
from repro.obs.exporters import trace_to_jsonl
from repro.obs.instrument import Instrumentation
from repro.obs.slo import SLOEngine, SLOReport, SLOSpec, thresholds_for
from repro.obs.timeseries import WindowedTelemetry
from repro.serving.gateway import ServingConfig, ServingGateway
from repro.serving.loop import EventLoop, PRIORITY_ARRIVAL
from repro.serving.repository import ServingRepository
from repro.serving.schemas import Endpoint, Response, Status
from repro.sim.metrics import MetricsRegistry
from repro.workloads.traffic import TrafficConfig, generate_traffic

__all__ = ["ServingRunResult", "run_serving", "SERVICE_TIME_DOMAIN"]

#: Spawn-key namespace for the gateway's service-time stream (traffic
#: owns domain 7; see :data:`repro.workloads.traffic.TRAFFIC_DOMAIN`).
SERVICE_TIME_DOMAIN = 8


@dataclass
class ServingRunResult:
    """Everything a seeded serving run measured.

    ``endpoint_stats[endpoint]`` holds offered/status counts plus
    p50/p99 latency in simulated milliseconds; ``status_counts`` is the
    run-wide breakdown keyed by integer status code.  ``metrics`` is the
    full registry payload (the byte-equivalence gates compare its JSON
    dump), ``registry`` the live :class:`MetricsRegistry` behind it (for
    reporting helpers like :func:`repro.obs.latency_report`), and
    ``trace_jsonl`` the JSONL trace export when tracing was requested.

    The observability layer adds: ``telemetry`` (the live windowed
    rollup) with its byte-comparable ``timeseries_json`` export,
    ``slo_report`` (budgets + burn-rate alert timeline) with
    ``alerts_json``, and ``sampling_stats`` (how many request traces
    each keep rule exported).
    """

    seed: int
    horizon: float
    offered: int
    completed: int
    status_counts: Dict[int, int]
    endpoint_stats: Dict[str, Dict[str, float]]
    p50_ms: float
    p99_ms: float
    goodput_rps: float
    shed_rate: float
    cache_hit_rate: float
    blocks_produced: int
    txs_included: int
    cases_reviewed: int
    metrics: Dict[str, Any] = field(repr=False)
    registry: MetricsRegistry = field(repr=False)
    responses: List[Response] = field(repr=False)
    trace_jsonl: Optional[str] = field(repr=False, default=None)
    telemetry: Optional[WindowedTelemetry] = field(repr=False, default=None)
    timeseries_json: Optional[str] = field(repr=False, default=None)
    slo_report: Optional[SLOReport] = field(repr=False, default=None)
    alerts_json: Optional[str] = field(repr=False, default=None)
    sampling_stats: Optional[Dict[str, int]] = field(repr=False, default=None)


def _percentile(registry: MetricsRegistry, name: str, q: float) -> float:
    histogram = registry.peek_histogram(name)  # absent = no samples
    if histogram is None or histogram.count == 0:
        return 0.0
    return float(histogram.percentile(q))


def run_serving(
    traffic: TrafficConfig,
    serving: Optional[ServingConfig] = None,
    trace: bool = False,
    histogram_backend: str = "exact",
    slos: Optional[Sequence[SLOSpec]] = None,
    telemetry_window: Optional[float] = None,
    sampling: Optional[SamplingPolicy] = None,
    workers: Optional[int] = None,
) -> ServingRunResult:
    """Run one seeded open-loop scenario against the serving tier.

    The traffic seed also seeds the repository substrates and the
    gateway's service-time stream (distinct spawn-key domains), so one
    ``(TrafficConfig, ServingConfig)`` pair fully determines the run.

    Observability knobs (all off by default — the dark path is the
    PR 6 request path, byte for byte):

    * ``slos`` — declarative :class:`SLOSpec` objectives; implies
      windowed telemetry and attaches an :class:`SLOEngine` evaluation
      (``slo_report`` / ``alerts_json``) to the result.
    * ``telemetry_window`` — window width in simulated seconds for the
      rollup (defaults to 1.0 when only ``slos`` is given).
    * ``sampling`` — a :class:`SamplingPolicy`; implies ``trace`` and
      exports per-request span trees under its head/status/tail rules.
    * ``workers`` — parallelize *traffic generation* over a process
      pool; a pure scheduling knob (results byte-identical for any K).
    """
    serving = serving if serving is not None else ServingConfig()
    registry = MetricsRegistry(histogram_backend=histogram_backend)
    loop = EventLoop()
    trace = trace or sampling is not None
    obs: Optional[Instrumentation] = None
    if trace:
        obs = Instrumentation(
            metrics=registry,
            clock=lambda: loop.now,
            run_id=f"serve-{traffic.seed}",
        )
    telemetry: Optional[WindowedTelemetry] = None
    if slos is not None or telemetry_window is not None:
        telemetry = WindowedTelemetry(
            window=telemetry_window if telemetry_window is not None else 1.0,
            latency_thresholds_ms=thresholds_for(slos or ()),
        )
    sampler: Optional[RequestTraceSampler] = None
    if sampling is not None:
        sampler = RequestTraceSampler(obs.trace, sampling)
    repo = ServingRepository(
        n_users=traffic.n_users, seed=traffic.seed, obs=obs
    )
    service_rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=traffic.seed, spawn_key=(SERVICE_TIME_DOMAIN,)
        )
    )
    gateway = ServingGateway(
        repo, loop, serving, registry, service_rng, obs=obs,
        telemetry=telemetry, sampler=sampler,
    )

    arrivals = generate_traffic(traffic, workers=workers)
    head_rate = sampling.head_rate if sampling is not None else 0.0
    for arrival in arrivals:
        if sampler is not None:
            ctx: Optional[RequestContext] = RequestContext(
                trace_id=arrival.trace_id,
                user=arrival.user,
                seq=arrival.seq,
                sampled=head_sampled(arrival.trace_id, head_rate),
                arrived=arrival.time,
                service_start=arrival.time,
                substrate_traced=False,
            )
        else:
            ctx = None
        loop.schedule(
            arrival.time,
            (lambda request, rctx: lambda: gateway.submit(request, rctx))(
                arrival.request, ctx
            ),
            priority=PRIORITY_ARRIVAL,
        )
    gateway.start(horizon=traffic.horizon)
    loop.run()
    if sampler is not None:
        sampler.finalize()  # flush tail keeps before the trace export

    responses = gateway.responses
    status_counts: Dict[int, int] = {}
    for response in responses:
        code = int(response.status)
        status_counts[code] = status_counts.get(code, 0) + 1

    counters = registry.counters()
    endpoint_stats: Dict[str, Dict[str, float]] = {}
    for endpoint in Endpoint:
        offered_here = counters.get(f"serving.offered.{endpoint.value}", 0.0)
        if not offered_here:
            continue
        stats: Dict[str, float] = {"offered": offered_here}
        for status in (Status.OK, Status.INVALID, Status.REFUSED, Status.SHED,
                       Status.ERROR):
            stats[status.name.lower()] = counters.get(
                f"serving.status.{endpoint.value}.{int(status)}", 0.0
            )
        stats["p50_ms"] = _percentile(
            registry, f"serving.latency_ms.{endpoint.value}", 50
        )
        stats["p99_ms"] = _percentile(
            registry, f"serving.latency_ms.{endpoint.value}", 99
        )
        endpoint_stats[endpoint.value] = stats

    ok_count = status_counts.get(int(Status.OK), 0)
    shed_count = status_counts.get(int(Status.SHED), 0)
    offered = len(arrivals)
    cache_hits = gateway.cache.hits
    cache_lookups = cache_hits + gateway.cache.misses

    slo_report: Optional[SLOReport] = None
    if slos is not None and telemetry is not None:
        slo_report = SLOEngine(slos).evaluate(telemetry)
    sampling_stats: Optional[Dict[str, int]] = None
    if sampler is not None:
        sampling_stats = {
            "seen": sampler.seen,
            "kept": sampler.kept,
            "kept_head": sampler.kept_head,
            "kept_status": sampler.kept_status,
            "kept_tail": sampler.kept_tail,
        }

    return ServingRunResult(
        seed=traffic.seed,
        horizon=traffic.horizon,
        offered=offered,
        completed=len(responses),
        status_counts=status_counts,
        endpoint_stats=endpoint_stats,
        p50_ms=_percentile(registry, "serving.latency_ms.all", 50),
        p99_ms=_percentile(registry, "serving.latency_ms.all", 99),
        goodput_rps=ok_count / traffic.horizon,
        shed_rate=(shed_count / offered) if offered else 0.0,
        cache_hit_rate=(cache_hits / cache_lookups) if cache_lookups else 0.0,
        blocks_produced=repo.blocks_produced,
        txs_included=repo.txs_included,
        cases_reviewed=int(counters.get("serving.cases_reviewed", 0.0)),
        metrics=registry.as_dict(),
        registry=registry,
        responses=responses,
        trace_jsonl=trace_to_jsonl(obs.trace) if obs is not None else None,
        telemetry=telemetry,
        timeseries_json=telemetry.to_json() if telemetry is not None else None,
        slo_report=slo_report,
        alerts_json=slo_report.to_json() if slo_report is not None else None,
        sampling_stats=sampling_stats,
    )
