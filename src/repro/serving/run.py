"""One serving run: traffic in, latency/saturation measurements out.

:func:`run_serving` wires the stack — seeded traffic from
:mod:`repro.workloads.traffic`, the :class:`ServingGateway` middleware
chain, the :class:`ServingRepository` substrates, one
:class:`EventLoop` — runs it to completion on the virtual clock, and
returns a :class:`ServingRunResult` whose numbers are all simulated-time
measurements: same seed, same bytes, on any host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.obs.exporters import trace_to_jsonl
from repro.obs.instrument import Instrumentation
from repro.serving.gateway import ServingConfig, ServingGateway
from repro.serving.loop import EventLoop, PRIORITY_ARRIVAL
from repro.serving.repository import ServingRepository
from repro.serving.schemas import Endpoint, Response, Status
from repro.sim.metrics import MetricsRegistry
from repro.workloads.traffic import TrafficConfig, generate_traffic

__all__ = ["ServingRunResult", "run_serving", "SERVICE_TIME_DOMAIN"]

#: Spawn-key namespace for the gateway's service-time stream (traffic
#: owns domain 7; see :data:`repro.workloads.traffic.TRAFFIC_DOMAIN`).
SERVICE_TIME_DOMAIN = 8


@dataclass
class ServingRunResult:
    """Everything a seeded serving run measured.

    ``endpoint_stats[endpoint]`` holds offered/status counts plus
    p50/p99 latency in simulated milliseconds; ``status_counts`` is the
    run-wide breakdown keyed by integer status code.  ``metrics`` is the
    full registry payload (the byte-equivalence gates compare its JSON
    dump), ``registry`` the live :class:`MetricsRegistry` behind it (for
    reporting helpers like :func:`repro.obs.latency_report`), and
    ``trace_jsonl`` the JSONL trace export when tracing was requested.
    """

    seed: int
    horizon: float
    offered: int
    completed: int
    status_counts: Dict[int, int]
    endpoint_stats: Dict[str, Dict[str, float]]
    p50_ms: float
    p99_ms: float
    goodput_rps: float
    shed_rate: float
    cache_hit_rate: float
    blocks_produced: int
    txs_included: int
    cases_reviewed: int
    metrics: Dict[str, Any] = field(repr=False)
    registry: MetricsRegistry = field(repr=False)
    responses: List[Response] = field(repr=False)
    trace_jsonl: Optional[str] = field(repr=False, default=None)


def _percentile(registry: MetricsRegistry, name: str, q: float) -> float:
    histogram = registry.peek_histogram(name)  # absent = no samples
    if histogram is None or histogram.count == 0:
        return 0.0
    return float(histogram.percentile(q))


def run_serving(
    traffic: TrafficConfig,
    serving: Optional[ServingConfig] = None,
    trace: bool = False,
    histogram_backend: str = "exact",
) -> ServingRunResult:
    """Run one seeded open-loop scenario against the serving tier.

    The traffic seed also seeds the repository substrates and the
    gateway's service-time stream (distinct spawn-key domains), so one
    ``(TrafficConfig, ServingConfig)`` pair fully determines the run.
    """
    serving = serving if serving is not None else ServingConfig()
    registry = MetricsRegistry(histogram_backend=histogram_backend)
    loop = EventLoop()
    obs: Optional[Instrumentation] = None
    if trace:
        obs = Instrumentation(
            metrics=registry,
            clock=lambda: loop.now,
            run_id=f"serve-{traffic.seed}",
        )
    repo = ServingRepository(
        n_users=traffic.n_users, seed=traffic.seed, obs=obs
    )
    service_rng = np.random.default_rng(
        np.random.SeedSequence(
            entropy=traffic.seed, spawn_key=(SERVICE_TIME_DOMAIN,)
        )
    )
    gateway = ServingGateway(
        repo, loop, serving, registry, service_rng, obs=obs
    )

    arrivals = generate_traffic(traffic)
    for arrival in arrivals:
        loop.schedule(
            arrival.time,
            (lambda request: lambda: gateway.submit(request))(arrival.request),
            priority=PRIORITY_ARRIVAL,
        )
    gateway.start(horizon=traffic.horizon)
    loop.run()

    responses = gateway.responses
    status_counts: Dict[int, int] = {}
    for response in responses:
        code = int(response.status)
        status_counts[code] = status_counts.get(code, 0) + 1

    counters = registry.counters()
    endpoint_stats: Dict[str, Dict[str, float]] = {}
    for endpoint in Endpoint:
        offered_here = counters.get(f"serving.offered.{endpoint.value}", 0.0)
        if not offered_here:
            continue
        stats: Dict[str, float] = {"offered": offered_here}
        for status in (Status.OK, Status.INVALID, Status.REFUSED, Status.SHED,
                       Status.ERROR):
            stats[status.name.lower()] = counters.get(
                f"serving.status.{endpoint.value}.{int(status)}", 0.0
            )
        stats["p50_ms"] = _percentile(
            registry, f"serving.latency_ms.{endpoint.value}", 50
        )
        stats["p99_ms"] = _percentile(
            registry, f"serving.latency_ms.{endpoint.value}", 99
        )
        endpoint_stats[endpoint.value] = stats

    ok_count = status_counts.get(int(Status.OK), 0)
    shed_count = status_counts.get(int(Status.SHED), 0)
    offered = len(arrivals)
    cache_hits = gateway.cache.hits
    cache_lookups = cache_hits + gateway.cache.misses

    return ServingRunResult(
        seed=traffic.seed,
        horizon=traffic.horizon,
        offered=offered,
        completed=len(responses),
        status_counts=status_counts,
        endpoint_stats=endpoint_stats,
        p50_ms=_percentile(registry, "serving.latency_ms.all", 50),
        p99_ms=_percentile(registry, "serving.latency_ms.all", 99),
        goodput_rps=ok_count / traffic.horizon,
        shed_rate=(shed_count / offered) if offered else 0.0,
        cache_hit_rate=(cache_hits / cache_lookups) if cache_lookups else 0.0,
        blocks_produced=repo.blocks_produced,
        txs_included=repo.txs_included,
        cases_reviewed=int(counters.get("serving.cases_reviewed", 0.0)),
        metrics=registry.as_dict(),
        registry=registry,
        responses=responses,
        trace_jsonl=trace_to_jsonl(obs.trace) if obs is not None else None,
    )
