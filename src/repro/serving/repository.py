"""The repository layer: substrates behind a uniform call surface.

The service/repository split keeps the gateway free of substrate
details: the gateway owns *when* work happens (queues, rates, virtual
time), the repository owns *what* happens (which substrate call, how
its outcome maps onto a :class:`~repro.serving.schemas.Status`).

One :class:`ServingRepository` fronts the four write surfaces plus the
two read surfaces:

* ``submit_tx`` → mempool admission (server-assigned nonces; blocks are
  produced by the platform tick, not per request);
* ``file_report`` → a reputation edge plus a moderation REPORT case
  (review capacity drains on the platform tick);
* ``cast_vote`` → a ballot on the open proposal (windows roll over on
  the platform tick);
* ``ingest_frame`` → the full privacy pipeline (consent gate → PET →
  DP budget → disclosure);
* ``get_balance`` / ``get_tally`` → confirmed-state reads, version
  stamped for the TTL+version cache.

Every applied write bumps the owning surface's **version** — the signal
the read cache keys on.  Policy refusals (bad nonce, duplicate ballot,
exhausted budget, missing consent, duplicate report) return ``REFUSED``
and bump nothing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.dao.dao import DAO
from repro.dao.members import Member
from repro.errors import DaoError
from repro.governance.moderation import (
    AbuseClassifier,
    HumanModeratorPool,
    ModerationService,
    ReportDesk,
)
from repro.governance.sanctions import GraduatedSanctionPolicy
from repro.ledger.chain import Blockchain
from repro.ledger.consensus import PoAConsensus
from repro.ledger.crypto import sha256
from repro.obs.instrument import Instrumentation
from repro.privacy.budget import PrivacyBudget
from repro.privacy.consent import ConsentRegistry
from repro.privacy.pets import LaplaceMechanism
from repro.privacy.pipeline import PrivacyPipeline
from repro.privacy.sensors import SensorFrame
from repro.serving.schemas import (
    CastVoteRequest,
    FileReportRequest,
    GetBalanceRequest,
    GetTallyRequest,
    IngestFrameRequest,
    Status,
    SubmitTxRequest,
)
from repro.sim.rng import RngRegistry
from repro.workloads.load import agent_address, synthetic_transfer
from repro.world.interactions import Interaction

__all__ = [
    "ServingRepository",
    "SERVING_CHANNELS",
    "HOT_SUBJECT_STRIDE",
    "CONSENT_DENIED_MOD",
]

#: (channel, epsilon-per-frame) the serving privacy surface accepts.
SERVING_CHANNELS: Tuple[Tuple[str, float], ...] = (
    ("gaze", 0.35),
    ("gait", 0.25),
    ("heart_rate", 0.45),
)

#: Frame traffic targets subjects ``0, stride, 2*stride, …`` so the
#: per-subject DP caps genuinely exhaust under sustained load.
HOT_SUBJECT_STRIDE = 50

#: Every k-th hot subject (by hot rank) never opts in, so the consent
#: gate carries real refusal traffic.
CONSENT_DENIED_MOD = 10


class ServingRepository:
    """Owns the substrates and maps their outcomes to statuses.

    All randomness (classifier errors, reviewer accuracy, PET noise)
    comes from the seeded :class:`RngRegistry`, and every timestamp is
    the caller's simulated ``now`` — the repository is deterministic
    given (seed, call sequence).
    """

    def __init__(
        self,
        n_users: int,
        seed: int,
        privacy_cap: float = 4.0,
        electorate_size: Optional[int] = 2_000,
        review_capacity: int = 50,
        obs: Optional[Instrumentation] = None,
    ):
        if n_users < 2:
            raise ValueError(f"n_users must be >= 2, got {n_users}")
        self.n_users = n_users
        self.seed = seed
        rngs = RngRegistry(seed=seed)
        self.agents: List[str] = [agent_address(i) for i in range(n_users)]
        self._validator = sha256(b"serving-validator").hex()

        # Ledger: confirmed balances move only when blocks are produced.
        self.chain = Blockchain(
            PoAConsensus([self._validator]),
            genesis_balances={a: 1_000_000 for a in self.agents},
        )
        self._nonces: Dict[int, int] = {}
        # Amount+fee admitted since the last block, per sender: the
        # mempool checks signatures/nonces at admission but affordability
        # only at block selection, so without this an overspend would be
        # admitted and then linger unincludable.
        self._pending_spend: Dict[int, int] = {}

        # Governance: a rolling proposal window; votes hit the open one.
        n_members = (
            n_users if electorate_size is None else min(n_users, electorate_size)
        )
        self.n_members = n_members
        self.dao = DAO(name="serving")
        for address in self.agents[:n_members]:
            self.dao.add_member(Member(address=address, tokens=1.0))
        self._proposal_id: Optional[str] = None
        self._proposal_seq = 0

        # Moderation: reports open cases; the platform tick reviews.
        self.moderation = ModerationService(
            sanctions=GraduatedSanctionPolicy(world=None),
            classifier=AbuseClassifier(rngs.stream("serving.moderation.classifier")),
            report_desk=ReportDesk(rngs.stream("serving.moderation.reports")),
            reviewer=HumanModeratorPool(
                rngs.stream("serving.moderation.reviewer"),
                capacity_per_epoch=review_capacity,
            ),
            obs=obs,
        )
        self._abusive_rng = rngs.stream("serving.moderation.ground_truth")

        # Privacy: the authoritative pipeline with per-channel PETs.
        self.pipeline = PrivacyPipeline(
            consent=ConsentRegistry(),
            budget=PrivacyBudget(default_cap=privacy_cap),
            obs=obs,
        )
        for channel, epsilon in SERVING_CHANNELS:
            self.pipeline.set_pet(
                channel,
                LaplaceMechanism(epsilon, rng=rngs.stream(f"serving.pets.{channel}")),
            )
        self._channel_names = tuple(c for c, _ in SERVING_CHANNELS)
        for rank, subject in enumerate(range(0, n_users, HOT_SUBJECT_STRIDE)):
            if rank % CONSENT_DENIED_MOD != 0:
                channel = self._channel_names[rank % len(self._channel_names)]
                self.pipeline.consent.grant(self.agents[subject], channel)

        # Per-surface versions: the read cache's invalidation signal.
        self._versions: Dict[str, int] = {"ledger": 0, "tally": 0}
        self.blocks_produced = 0
        self.txs_included = 0

    # ------------------------------------------------------------------
    # Versions (cache invalidation)
    # ------------------------------------------------------------------
    def version(self, surface: str) -> int:
        return self._versions[surface]

    def _bump(self, surface: str) -> None:
        self._versions[surface] += 1

    # ------------------------------------------------------------------
    # Write surfaces
    # ------------------------------------------------------------------
    def submit_tx(
        self, request: SubmitTxRequest, now: float
    ) -> Tuple[Status, Dict[str, Any]]:
        """Mempool admission with a server-assigned nonce."""
        if request.user >= self.n_users or request.recipient >= self.n_users:
            return Status.INVALID, {"error": "unknown user index"}
        pending = self._pending_spend.get(request.user, 0)
        cost = request.amount + request.fee
        balance = self.chain.state.balance_of(self.agents[request.user])
        if pending + cost > balance:
            return Status.REFUSED, {"error": "insufficient confirmed balance"}
        nonce = self._nonces.get(request.user, 0)
        stx = synthetic_transfer(
            self.agents[request.user],
            self.agents[request.recipient],
            request.amount,
            request.fee,
            nonce,
        )
        if not self.chain.mempool.submit(stx, self.chain.state, time=now):
            # Duplicate/stale-nonce policy said no — a refusal, not an error.
            return Status.REFUSED, {"error": "mempool refused transaction"}
        self._nonces[request.user] = nonce + 1
        self._pending_spend[request.user] = pending + cost
        return Status.OK, {"tx_id": stx.tx_id, "nonce": nonce}

    def file_report(
        self, request: FileReportRequest, now: float
    ) -> Tuple[Status, Dict[str, Any]]:
        """A moderation REPORT case for the accused interaction."""
        if request.user >= self.n_users or request.accused >= self.n_users:
            return Status.INVALID, {"error": "unknown user index"}
        # Ground truth for the reviewer draw: most reports are honest.
        abusive = bool(self._abusive_rng.random() < 0.8)
        interaction = Interaction(
            time=now,
            initiator=self.agents[request.accused],
            target=self.agents[request.user],
            kind="chat",
            content=request.reason,
            abusive=abusive,
            metadata={"severity": float(request.severity)},
        )
        case = self.moderation.file_report(interaction, time=now)
        if case is None:
            return Status.REFUSED, {"error": "interaction already reported"}
        return Status.OK, {"case_id": case.case_id}

    def cast_vote(
        self, request: CastVoteRequest, now: float
    ) -> Tuple[Status, Dict[str, Any]]:
        """A ballot on the open proposal (REFUSED on any voting rule)."""
        if request.user >= self.n_users:
            return Status.INVALID, {"error": "unknown user index"}
        if self._proposal_id is None:
            return Status.REFUSED, {"error": "no open proposal"}
        try:
            self.dao.cast_ballot(
                self._proposal_id,
                self.agents[request.user],
                option=request.option,
                time=now,
            )
        except DaoError as exc:
            return Status.REFUSED, {"error": str(exc)}
        self._bump("tally")
        return Status.OK, {"proposal_id": self._proposal_id}

    def ingest_frame(
        self, request: IngestFrameRequest, now: float
    ) -> Tuple[Status, Dict[str, Any]]:
        """One frame through consent → PET → budget → disclosure."""
        if request.user >= self.n_users:
            return Status.INVALID, {"error": "unknown user index"}
        if request.channel not in self._channel_names:
            return Status.INVALID, {
                "error": f"unknown channel {request.channel!r}"
            }
        frame = SensorFrame(
            channel=request.channel,
            subject=self.agents[request.user],
            time=now,
            values=np.asarray([float(request.magnitude)], dtype=float),
        )
        stats = self.pipeline.stats
        before = (stats.blocked_consent, stats.blocked_budget, stats.suppressed)
        released = self.pipeline.ingest(frame)
        if released is not None:
            return Status.OK, {"pet": released.pet_applied[-1] if released.pet_applied else "none"}
        after = (stats.blocked_consent, stats.blocked_budget, stats.suppressed)
        reason = ("blocked_consent", "blocked_budget", "suppressed")[
            next(i for i in range(3) if after[i] != before[i])
        ]
        return Status.REFUSED, {"error": reason}

    # ------------------------------------------------------------------
    # Read surfaces
    # ------------------------------------------------------------------
    def get_balance(
        self, request: GetBalanceRequest, now: float
    ) -> Tuple[Status, Dict[str, Any]]:
        if request.user >= self.n_users:
            return Status.INVALID, {"error": "unknown user index"}
        return Status.OK, {
            "balance": self.chain.state.balance_of(self.agents[request.user])
        }

    def get_tally(
        self, request: GetTallyRequest, now: float
    ) -> Tuple[Status, Dict[str, Any]]:
        if self._proposal_id is None:
            return Status.REFUSED, {"error": "no open proposal"}
        tally = self.dao.tally(self._proposal_id)
        return Status.OK, {
            "proposal_id": self._proposal_id,
            "weights": dict(sorted(tally.weights.items())),
            "voters": tally.voters,
        }

    # ------------------------------------------------------------------
    # Platform ticks (driven by the gateway's periodic loop events)
    # ------------------------------------------------------------------
    def produce_blocks(self, now: float, block_size: int) -> int:
        """Drain the mempool into blocks; bumps the ledger version."""
        produced = 0
        while len(self.chain.mempool) > 0:
            block = self.chain.propose_block(
                self._validator, timestamp=now, max_txs=block_size
            )
            if not block.transactions:
                break
            produced += 1
            self.txs_included += len(block.transactions)
        if produced:
            self.blocks_produced += produced
            self._bump("ledger")
        if len(self.chain.mempool) == 0:
            # Everything admitted has been confirmed (or the pool is
            # empty anyway): pending-spend accounting starts fresh
            # against the new confirmed balances.
            self._pending_spend.clear()
        return produced

    def roll_proposal(self, now: float, voting_period: float) -> str:
        """Close any due proposal and open the next voting window."""
        self.dao.close_due(now)
        self._proposal_seq += 1
        proposal = self.dao.submit_proposal(
            title=f"serving window {self._proposal_seq}",
            proposer=self.agents[0],
            topic="governance",
            created_at=now,
            voting_period=voting_period,
        )
        self._proposal_id = proposal.proposal_id
        self._bump("tally")
        return proposal.proposal_id

    def run_review(self, now: float) -> int:
        """One review-capacity slice over the moderation queue."""
        return self.moderation.run_review(now)
