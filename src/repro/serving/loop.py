"""Virtual-clock event loop for the serving tier.

Latency under load is the first-class metric for metaverse
infrastructure, but wall-clock measurements are hostage to the host:
the same run times differently on different machines, and a seeded run
stops being byte-identical the moment a real clock leaks into a metric.
This loop keeps *all* serving-tier time simulated: arrivals, queue
waits, service completions, and periodic platform work (block
production, proposal windows, moderation review) are heap events on one
virtual clock, so p50/p99 latency and saturation throughput are exact,
reproducible numbers on any host.

Determinism contract
--------------------
Events fire in ``(time, priority, seq)`` order: ties at the same
simulated instant break first by the caller-chosen priority band, then
by schedule order.  Nothing reads the wall clock; callbacks may
schedule further events but never reorder already-scheduled ones.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

__all__ = ["EventLoop", "PRIORITY_ARRIVAL", "PRIORITY_COMPLETION", "PRIORITY_PLATFORM"]

# Priority bands for same-instant ties.  Completions fire before
# platform ticks so a request finishing exactly at a block boundary is
# part of that block's mempool; arrivals fire last so platform state
# (fresh block, fresh proposal) is visible to requests arriving at the
# boundary instant.
PRIORITY_COMPLETION = 0
PRIORITY_PLATFORM = 1
PRIORITY_ARRIVAL = 2

_Event = Tuple[float, int, int, Callable[[], None]]


class EventLoop:
    """A deterministic discrete-event loop with a virtual clock.

    ``now`` is the simulated time of the event currently firing (or the
    last fired).  Scheduling in the past raises — the serving tier never
    rewrites history.
    """

    def __init__(self) -> None:
        self._heap: List[_Event] = []
        self._seq = 0
        self.now = 0.0
        self.fired = 0

    def schedule(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = PRIORITY_PLATFORM,
    ) -> None:
        """Schedule ``callback`` at simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        heapq.heappush(self._heap, (float(time), priority, self._seq, callback))
        self._seq += 1

    def __len__(self) -> int:
        return len(self._heap)

    def run(self, horizon: Optional[float] = None) -> int:
        """Fire events in order until the heap drains (or passes
        ``horizon``); returns the number fired.

        Events scheduled beyond the horizon stay in the heap — a
        follow-up ``run`` can continue them, which is how the bench
        drains in-flight requests after the arrival window closes.
        """
        fired = 0
        while self._heap:
            if horizon is not None and self._heap[0][0] > horizon:
                break
            time, _priority, _seq, callback = heapq.heappop(self._heap)
            self.now = time
            callback()
            fired += 1
        self.fired += fired
        return fired
