"""Typed request/response schemas for the online serving tier.

The paper frames the metaverse as a *live* social system — users submit
transactions, file abuse reports, cast governance votes, and stream
sensor data continuously, not in epoch batches.  These schemas are the
wire contract of that request-driven view: one frozen dataclass per
endpoint, each knowing how to validate itself (`validate()` returns an
error string, never raises) and whether it is cacheable (`cache_key()`
returns a key for reads, ``None`` for writes).

Status codes follow the HTTP convention the rest of the stack speaks:

* ``OK`` (200) — the substrate accepted the request;
* ``INVALID`` (400) — schema validation failed, the substrate was never
  consulted;
* ``REFUSED`` (409) — the substrate applied policy and said no (budget
  exhausted, consent missing, duplicate ballot, bad nonce …) — a
  *correct* refusal, not an error;
* ``SHED`` (429) — admission control dropped the request before any
  substrate work (rate limit or queue overflow) — explicit backpressure
  instead of unbounded queuing;
* ``ERROR`` (500) — an unexpected substrate exception (a healthy run
  serves zero of these).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Optional, Tuple

__all__ = [
    "Endpoint",
    "Status",
    "Request",
    "SubmitTxRequest",
    "FileReportRequest",
    "CastVoteRequest",
    "IngestFrameRequest",
    "GetBalanceRequest",
    "GetTallyRequest",
    "Response",
    "REPORT_REASONS",
]


class Endpoint(str, enum.Enum):
    """The serving surfaces, one per fronted substrate."""

    SUBMIT_TX = "submit_tx"
    FILE_REPORT = "file_report"
    CAST_VOTE = "cast_vote"
    INGEST_FRAME = "ingest_frame"
    GET_BALANCE = "get_balance"
    GET_TALLY = "get_tally"


#: Endpoints served from the TTL+version read cache.
READ_ENDPOINTS = frozenset({Endpoint.GET_BALANCE, Endpoint.GET_TALLY})


class Status(enum.IntEnum):
    """HTTP-style response statuses (see module docstring)."""

    OK = 200
    INVALID = 400
    REFUSED = 409
    SHED = 429
    ERROR = 500


#: The moderation-report taxonomy (graduated severities are validated
#: against (0, 1]; the reason is free vocabulary from this list).
REPORT_REASONS: Tuple[str, ...] = (
    "harassment",
    "hate_speech",
    "scam",
    "impersonation",
    "explicit_content",
)


@dataclass(frozen=True)
class Request:
    """Base request: a user index plus endpoint-specific payload.

    ``user`` is the synthetic agent index (the repository maps it to a
    ledger address).  Subclasses set :attr:`ENDPOINT` and implement
    :meth:`validate`.
    """

    user: int

    ENDPOINT: ClassVar[Optional[Endpoint]] = None

    @property
    def endpoint(self) -> Endpoint:
        return type(self).ENDPOINT

    @property
    def is_read(self) -> bool:
        return type(self).ENDPOINT in READ_ENDPOINTS

    def validate(self) -> Optional[str]:
        """Return an error message, or None when the request is valid."""
        if not isinstance(self.user, int) or self.user < 0:
            return f"user must be a non-negative index, got {self.user!r}"
        return None

    def cache_key(self) -> Optional[Tuple[Any, ...]]:
        """Read-cache key; ``None`` marks the request uncacheable."""
        return None


@dataclass(frozen=True)
class SubmitTxRequest(Request):
    """Ledger surface: submit a fee-market transfer.

    The nonce is assigned server-side (the repository tracks per-sender
    nonces), mirroring how wallets defer to their provider's pending
    count.
    """

    recipient: int = 0
    amount: int = 1
    fee: int = 1

    ENDPOINT = Endpoint.SUBMIT_TX

    def validate(self) -> Optional[str]:
        base = super().validate()
        if base is not None:
            return base
        if not isinstance(self.recipient, int) or self.recipient < 0:
            return f"recipient must be a non-negative index, got {self.recipient!r}"
        if self.recipient == self.user:
            return "self-transfers are not allowed"
        if not isinstance(self.amount, int) or self.amount <= 0:
            return f"amount must be a positive integer, got {self.amount!r}"
        if not isinstance(self.fee, int) or self.fee < 0:
            return f"fee must be a non-negative integer, got {self.fee!r}"
        return None


@dataclass(frozen=True)
class FileReportRequest(Request):
    """Moderation surface: report another user's interaction."""

    accused: int = 0
    severity: float = 0.5
    reason: str = "harassment"

    ENDPOINT = Endpoint.FILE_REPORT

    def validate(self) -> Optional[str]:
        base = super().validate()
        if base is not None:
            return base
        if not isinstance(self.accused, int) or self.accused < 0:
            return f"accused must be a non-negative index, got {self.accused!r}"
        if self.accused == self.user:
            return "self-reports are not allowed"
        if not (
            isinstance(self.severity, (int, float))
            and math.isfinite(self.severity)
            and 0.0 < self.severity <= 1.0
        ):
            return f"severity must be a finite float in (0, 1], got {self.severity!r}"
        if self.reason not in REPORT_REASONS:
            return f"reason must be one of {REPORT_REASONS}, got {self.reason!r}"
        return None


@dataclass(frozen=True)
class CastVoteRequest(Request):
    """Governance surface: a ballot on the currently open proposal."""

    option: str = "yes"

    ENDPOINT = Endpoint.CAST_VOTE

    def validate(self) -> Optional[str]:
        base = super().validate()
        if base is not None:
            return base
        if self.option not in ("yes", "no", "abstain"):
            return f"option must be yes/no/abstain, got {self.option!r}"
        return None


@dataclass(frozen=True)
class IngestFrameRequest(Request):
    """Privacy surface: one sensor frame offered for release.

    ``user`` is the *subject* of the frame.  ``magnitude`` seeds the
    deterministic frame values; the per-channel PET and the subject's
    DP budget decide whether the release happens.
    """

    channel: str = "gaze"
    magnitude: float = 1.0

    ENDPOINT = Endpoint.INGEST_FRAME

    def validate(self) -> Optional[str]:
        base = super().validate()
        if base is not None:
            return base
        if not isinstance(self.channel, str) or not self.channel:
            return f"channel must be a non-empty string, got {self.channel!r}"
        if not (
            isinstance(self.magnitude, (int, float))
            and math.isfinite(self.magnitude)
        ):
            return f"magnitude must be a finite float, got {self.magnitude!r}"
        return None


@dataclass(frozen=True)
class GetBalanceRequest(Request):
    """Read surface: the user's confirmed ledger balance."""

    ENDPOINT = Endpoint.GET_BALANCE

    def cache_key(self) -> Optional[Tuple[Any, ...]]:
        return (Endpoint.GET_BALANCE.value, self.user)


@dataclass(frozen=True)
class GetTallyRequest(Request):
    """Read surface: the live tally of the open proposal."""

    ENDPOINT = Endpoint.GET_TALLY

    def cache_key(self) -> Optional[Tuple[Any, ...]]:
        return (Endpoint.GET_TALLY.value,)


@dataclass(frozen=True)
class Response:
    """One served request, stamped entirely in simulated time.

    ``latency`` is ``completed - arrived`` in simulated seconds — shed
    responses complete at arrival (the refusal is immediate), cache hits
    complete after the cache-hit cost, served requests after queue wait
    plus service time.
    """

    endpoint: Endpoint
    status: Status
    arrived: float
    completed: float
    cached: bool = False
    body: Dict[str, Any] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        return self.completed - self.arrived

    @property
    def ok(self) -> bool:
        return self.status == Status.OK
