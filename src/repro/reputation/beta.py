"""Beta reputation (Jøsang & Ismail 2002).

Each entity's reputation is the expectation of a Beta(α, β) posterior
over "behaves well", where α counts positive and β negative feedback
(both starting at 1 — the uniform prior).  Scores live in (0, 1) and
new entities start at exactly 0.5, which matches the paper's need for a
system "inherently attached to users" that newcomers neither game nor
are crushed by.

Feedback ages: :meth:`decay` exponentially forgets old evidence so that
reformed users can recover and old merit does not shield new abuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ReputationError

__all__ = ["BetaScore", "BetaReputation"]


@dataclass
class BetaScore:
    """Posterior evidence for one entity."""

    positive: float = 0.0
    negative: float = 0.0

    @property
    def alpha(self) -> float:
        return self.positive + 1.0

    @property
    def beta(self) -> float:
        return self.negative + 1.0

    @property
    def expectation(self) -> float:
        """E[Beta(α, β)] = α / (α + β); the reputation score."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def evidence(self) -> float:
        """Total observed feedback mass (confidence proxy)."""
        return self.positive + self.negative

    def observe(self, positive: bool, weight: float = 1.0) -> None:
        if weight < 0:
            raise ReputationError(f"feedback weight must be >= 0, got {weight}")
        if positive:
            self.positive += weight
        else:
            self.negative += weight

    def decay(self, factor: float) -> None:
        if not 0 <= factor <= 1:
            raise ReputationError(f"decay factor must be in [0, 1], got {factor}")
        self.positive *= factor
        self.negative *= factor


class BetaReputation:
    """Registry of beta scores keyed by entity id.

    Examples
    --------
    >>> rep = BetaReputation()
    >>> rep.record("avatar-1", positive=True)
    >>> rep.score("avatar-1") > rep.score("stranger")
    True
    """

    def __init__(self, decay_factor: float = 0.95):
        if not 0 <= decay_factor <= 1:
            raise ReputationError(
                f"decay_factor must be in [0, 1], got {decay_factor}"
            )
        self._scores: Dict[str, BetaScore] = {}
        self._decay_factor = decay_factor

    def record(self, entity: str, positive: bool, weight: float = 1.0) -> None:
        """Add one piece of feedback about ``entity``."""
        self._scores.setdefault(entity, BetaScore()).observe(positive, weight)

    def score(self, entity: str) -> float:
        """Reputation in (0, 1); unknown entities score the prior 0.5."""
        record = self._scores.get(entity)
        return record.expectation if record is not None else 0.5

    def evidence(self, entity: str) -> float:
        record = self._scores.get(entity)
        return record.evidence if record is not None else 0.0

    def decay_all(self, factor: Optional[float] = None) -> None:
        """Age every score by ``factor`` (default: configured factor)."""
        f = self._decay_factor if factor is None else factor
        for record in self._scores.values():
            record.decay(f)

    def entities(self) -> Dict[str, float]:
        """Snapshot of entity → score."""
        return {entity: record.expectation for entity, record in self._scores.items()}

    def __contains__(self, entity: str) -> bool:
        return entity in self._scores

    def __len__(self) -> int:
        return len(self._scores)
