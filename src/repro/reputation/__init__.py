"""Reputation substrate (paper §IV-C).

Beta reputation (local evidence), EigenTrust (global collusion-resistant
propagation), a blended facade with optional ledger anchoring, and Sybil
attack generators for resistance experiments.
"""

from repro.reputation.beta import BetaReputation, BetaScore
from repro.reputation.eigentrust import EigenTrust
from repro.reputation.sybil import SybilAttack, SybilOutcome, run_sybil_attack
from repro.reputation.system import FeedbackEvent, ReputationSystem

__all__ = [
    "BetaReputation",
    "BetaScore",
    "EigenTrust",
    "SybilAttack",
    "SybilOutcome",
    "run_sybil_attack",
    "FeedbackEvent",
    "ReputationSystem",
]
