"""EigenTrust (Kamvar, Schlosser & Garcia-Molina, WWW 2003).

Global trust as the stationary distribution of a walk over normalised
local trust: peers who are trusted by trusted peers become trusted.
The pre-trusted set both seeds the walk and damps Sybil clusters —
fake identities that only endorse each other receive no inbound trust
from the pre-trusted core, so their global trust stays near zero.  This
is exactly the "counterbalance attacks during decision-making" property
the paper wants from a reputation layer (§IV-C).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ReputationError

__all__ = ["EigenTrust"]


class EigenTrust:
    """Accumulates pairwise trust observations and computes global trust.

    Parameters
    ----------
    pretrusted:
        Identities assumed honest (platform founders, audited operators).
    alpha:
        Probability mass teleported to the pre-trusted set each step
        (the damping that bounds Sybil influence).
    """

    def __init__(self, pretrusted: Optional[Iterable[str]] = None, alpha: float = 0.15):
        if not 0 <= alpha <= 1:
            raise ReputationError(f"alpha must be in [0, 1], got {alpha}")
        self._alpha = alpha
        self._pretrusted: Set[str] = set(pretrusted or [])
        # local[(i, j)] = accumulated satisfaction of i with j (>= 0)
        self._local: Dict[Tuple[str, str], float] = {}
        self._identities: Set[str] = set(self._pretrusted)

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def record_interaction(self, truster: str, trustee: str, satisfaction: float) -> None:
        """Record that ``truster`` rated an interaction with ``trustee``.

        ``satisfaction`` is clamped at 0 from below (EigenTrust local
        trust is non-negative; negative experiences simply add nothing,
        per the original paper's ``max(sat, 0)`` rule).
        """
        if truster == trustee:
            raise ReputationError("self-trust is not recordable")
        self._identities.add(truster)
        self._identities.add(trustee)
        if satisfaction > 0:
            key = (truster, trustee)
            self._local[key] = self._local.get(key, 0.0) + satisfaction

    def add_identity(self, identity: str) -> None:
        """Make an identity known even before any interactions."""
        self._identities.add(identity)

    @property
    def identities(self) -> List[str]:
        return sorted(self._identities)

    # ------------------------------------------------------------------
    # Global trust
    # ------------------------------------------------------------------
    def compute(
        self, max_iterations: int = 100, tolerance: float = 1e-9
    ) -> Dict[str, float]:
        """Power-iterate to the global trust vector.

        Returns identity → trust, summing to 1 over all identities.
        With no identities the result is empty; with no pre-trusted
        identities the teleport distribution is uniform.
        """
        ids = self.identities
        if not ids:
            return {}
        index = {identity: i for i, identity in enumerate(ids)}
        n = len(ids)

        # Row-normalised local trust matrix C (row i = who i trusts).
        matrix = np.zeros((n, n))
        for (truster, trustee), value in self._local.items():
            matrix[index[truster], index[trustee]] = value
        row_sums = matrix.sum(axis=1)

        # Teleport vector p: uniform over pre-trusted, else uniform.
        p = np.zeros(n)
        pretrusted = [i for i in self._pretrusted if i in index]
        if pretrusted:
            for identity in pretrusted:
                p[index[identity]] = 1.0 / len(pretrusted)
        else:
            p[:] = 1.0 / n

        # Rows with no outgoing trust fall back to the teleport vector.
        stochastic = np.empty((n, n))
        for i in range(n):
            if row_sums[i] > 0:
                stochastic[i] = matrix[i] / row_sums[i]
            else:
                stochastic[i] = p

        trust = p.copy()
        for _ in range(max_iterations):
            updated = (1 - self._alpha) * stochastic.T.dot(trust) + self._alpha * p
            if np.abs(updated - trust).sum() < tolerance:
                trust = updated
                break
            trust = updated
        total = trust.sum()
        if total > 0:
            trust = trust / total
        return {identity: float(trust[index[identity]]) for identity in ids}

    def trust_of(self, identity: str, **kwargs) -> float:
        """Convenience single lookup (recomputes the full vector)."""
        return self.compute(**kwargs).get(identity, 0.0)
