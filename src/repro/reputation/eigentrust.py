"""EigenTrust (Kamvar, Schlosser & Garcia-Molina, WWW 2003).

Global trust as the stationary distribution of a walk over normalised
local trust: peers who are trusted by trusted peers become trusted.
The pre-trusted set both seeds the walk and damps Sybil clusters —
fake identities that only endorse each other receive no inbound trust
from the pre-trusted core, so their global trust stays near zero.  This
is exactly the "counterbalance attacks during decision-making" property
the paper wants from a reputation layer (§IV-C).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ReputationError

__all__ = ["EigenTrust"]


class EigenTrust:
    """Accumulates pairwise trust observations and computes global trust.

    Parameters
    ----------
    pretrusted:
        Identities assumed honest (platform founders, audited operators).
    alpha:
        Probability mass teleported to the pre-trusted set each step
        (the damping that bounds Sybil influence).
    """

    def __init__(self, pretrusted: Optional[Iterable[str]] = None, alpha: float = 0.15):
        if not 0 <= alpha <= 1:
            raise ReputationError(f"alpha must be in [0, 1], got {alpha}")
        self._alpha = alpha
        self._pretrusted: Set[str] = set(pretrusted or [])
        # local[(i, j)] = accumulated satisfaction of i with j (>= 0)
        self._local: Dict[Tuple[str, str], float] = {}
        self._identities: Set[str] = set(self._pretrusted)
        # Cached converged trust vector; valid while ``_dirty`` is False
        # and the solver parameters match ``_cache_params``.  Every
        # observation that actually changes the graph invalidates it.
        self._cached_trust: Optional[Dict[str, float]] = None
        self._cache_params: Optional[Tuple[int, float]] = None
        self._dirty = True
        #: Number of full power iterations executed (exposed so tests
        #: and benchmarks can assert cache hits do not re-iterate).
        self.compute_count = 0

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def record_interaction(self, truster: str, trustee: str, satisfaction: float) -> None:
        """Record that ``truster`` rated an interaction with ``trustee``.

        ``satisfaction`` is clamped at 0 from below (EigenTrust local
        trust is non-negative; negative experiences simply add nothing,
        per the original paper's ``max(sat, 0)`` rule).
        """
        if truster == trustee:
            raise ReputationError("self-trust is not recordable")
        if truster not in self._identities or trustee not in self._identities:
            self._identities.add(truster)
            self._identities.add(trustee)
            self._dirty = True
        if satisfaction > 0:
            key = (truster, trustee)
            self._local[key] = self._local.get(key, 0.0) + satisfaction
            self._dirty = True

    def add_identity(self, identity: str) -> None:
        """Make an identity known even before any interactions."""
        if identity not in self._identities:
            self._identities.add(identity)
            self._dirty = True

    @property
    def identities(self) -> List[str]:
        return sorted(self._identities)

    # ------------------------------------------------------------------
    # Global trust
    # ------------------------------------------------------------------
    def compute(
        self, max_iterations: int = 100, tolerance: float = 1e-9
    ) -> Dict[str, float]:
        """Power-iterate to the global trust vector.

        Returns identity → trust, summing to 1 over all identities.
        With no identities the result is empty; with no pre-trusted
        identities the teleport distribution is uniform.

        The converged vector is cached: repeated calls with no new
        observations (and the same solver parameters) return the cached
        result without re-iterating.
        """
        cached = self._cached(max_iterations, tolerance)
        return dict(cached)

    def _cached(self, max_iterations: int, tolerance: float) -> Dict[str, float]:
        """The cached trust vector, recomputing only when stale.

        Callers must not mutate the returned dict (``compute`` hands out
        a copy; ``trust_of`` only reads).
        """
        params = (max_iterations, tolerance)
        if not self._dirty and self._cache_params == params:
            return self._cached_trust  # type: ignore[return-value]
        self._cached_trust = self._power_iterate(max_iterations, tolerance)
        self._cache_params = params
        self._dirty = False
        return self._cached_trust

    def _power_iterate(self, max_iterations: int, tolerance: float) -> Dict[str, float]:
        ids = self.identities
        if not ids:
            return {}
        self.compute_count += 1
        index = {identity: i for i, identity in enumerate(ids)}
        n = len(ids)

        # Local trust matrix C (row i = who i trusts), built with one
        # fancy-indexed assignment instead of a Python loop per edge.
        matrix = np.zeros((n, n))
        if self._local:
            rows = np.fromiter(
                (index[truster] for truster, _ in self._local),
                dtype=np.intp,
                count=len(self._local),
            )
            cols = np.fromiter(
                (index[trustee] for _, trustee in self._local),
                dtype=np.intp,
                count=len(self._local),
            )
            vals = np.fromiter(
                self._local.values(), dtype=np.float64, count=len(self._local)
            )
            matrix[rows, cols] = vals
        row_sums = matrix.sum(axis=1, keepdims=True)

        # Teleport vector p: uniform over pre-trusted, else uniform.
        p = np.zeros(n)
        pretrusted = [i for i in self._pretrusted if i in index]
        if pretrusted:
            p[[index[identity] for identity in pretrusted]] = 1.0 / len(pretrusted)
        else:
            p[:] = 1.0 / n

        # Row-normalise; rows with no outgoing trust fall back to p.
        has_out = row_sums[:, 0] > 0
        stochastic = np.where(
            has_out[:, None],
            matrix / np.where(row_sums > 0, row_sums, 1.0),
            p[None, :],
        )

        trust = p.copy()
        for _ in range(max_iterations):
            updated = (1 - self._alpha) * stochastic.T.dot(trust) + self._alpha * p
            if np.abs(updated - trust).sum() < tolerance:
                trust = updated
                break
            trust = updated
        total = trust.sum()
        if total > 0:
            trust = trust / total
        return {identity: float(trust[index[identity]]) for identity in ids}

    def trust_of(self, identity: str, **kwargs) -> float:
        """Single lookup served from the cached vector — O(1) between
        observations instead of a full power iteration per call."""
        max_iterations = kwargs.pop("max_iterations", 100)
        tolerance = kwargs.pop("tolerance", 1e-9)
        if kwargs:
            raise TypeError(f"unexpected arguments: {sorted(kwargs)}")
        return self._cached(max_iterations, tolerance).get(identity, 0.0)
