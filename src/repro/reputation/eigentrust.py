"""EigenTrust (Kamvar, Schlosser & Garcia-Molina, WWW 2003).

Global trust as the stationary distribution of a walk over normalised
local trust: peers who are trusted by trusted peers become trusted.
The pre-trusted set both seeds the walk and damps Sybil clusters —
fake identities that only endorse each other receive no inbound trust
from the pre-trusted core, so their global trust stays near zero.  This
is exactly the "counterbalance attacks during decision-making" property
the paper wants from a reputation layer (§IV-C).

Scaling: the solver **warm-starts** each recompute from the previous
converged vector, so a single new rating costs a few refinement sweeps
instead of a full from-scratch iteration (the teleport term makes the
fixed point unique, so the warm start changes the path, not the
destination).  Past a density threshold the local-trust matrix is never
materialised — sweeps run over a sparse edge list with
``numpy.bincount``, making per-sweep cost O(identities + edges) instead
of O(identities²).  ``compute_count`` / ``sweep_count`` /
``last_sweep_count`` expose how much work each recompute actually did.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ReputationError

__all__ = ["EigenTrust"]

# The dense path materialises an n x n matrix; past either bound the
# sparse edge-list path is used instead (above _SPARSE_MIN_IDS the
# matrix build itself is the bottleneck; between 64 and that bound
# sparsity decides).
_SPARSE_MIN_IDS = 512
_SPARSE_DENSITY = 0.25


class EigenTrust:
    """Accumulates pairwise trust observations and computes global trust.

    Parameters
    ----------
    pretrusted:
        Identities assumed honest (platform founders, audited operators).
    alpha:
        Probability mass teleported to the pre-trusted set each step
        (the damping that bounds Sybil influence).
    warm_start:
        Start each recompute from the previous converged vector
        (default).  Disable to reproduce the cold-start behaviour, e.g.
        as a benchmark reference.
    """

    def __init__(
        self,
        pretrusted: Optional[Iterable[str]] = None,
        alpha: float = 0.15,
        warm_start: bool = True,
    ):
        if not 0 <= alpha <= 1:
            raise ReputationError(f"alpha must be in [0, 1], got {alpha}")
        self._alpha = alpha
        self._pretrusted: Set[str] = set(pretrusted or [])
        # local[(i, j)] = accumulated satisfaction of i with j (>= 0)
        self._local: Dict[Tuple[str, str], float] = {}
        self._identities: Set[str] = set(self._pretrusted)
        self._warm_start = warm_start
        # Cached converged trust vector; valid while ``_dirty`` is False
        # and the solver parameters match ``_cache_params``.  Every
        # observation that actually changes the graph invalidates it.
        self._cached_trust: Optional[Dict[str, float]] = None
        self._cache_params: Optional[Tuple[int, float]] = None
        self._dirty = True
        # Sorted identity list, rebuilt only when identities change (at
        # population scale re-sorting per recompute dominates).
        self._sorted_ids: Optional[List[str]] = None
        # Identity-set version: bumped whenever the identity set (and
        # therefore the sorted index mapping) changes; keys every
        # index-aligned cache below.
        self._ids_version = 0
        self._index_cache: Optional[Tuple[int, Dict[str, int]]] = None
        # Edge arrays aligned to the current index mapping, maintained
        # incrementally between identity changes: value updates write in
        # place, fresh edges buffer in pending lists and are concatenated
        # at the next solve.  A write between existing identities
        # therefore costs O(1) bookkeeping, not an O(edges) rebuild.
        self._edge_pos: Dict[Tuple[str, str], int] = {}
        self._mat_version: Optional[int] = None
        self._rows_np = self._cols_np = self._vals_np = None
        self._pend_rows: List[int] = []
        self._pend_cols: List[int] = []
        self._pend_vals: List[float] = []
        # Previous converged vector as an index-aligned array (warm
        # start without a per-identity Python loop), plus the identity
        # list it was aligned to (for re-mapping after the set changes).
        self._prev_trust_np: Optional[np.ndarray] = None
        self._prev_ids: List[str] = []
        self._prev_trust_version: Optional[int] = None
        #: Number of full recomputes executed (exposed so tests and
        #: benchmarks can assert cache hits do not re-iterate).
        self.compute_count = 0
        #: Total refinement sweeps across all recomputes, and the sweeps
        #: the most recent recompute needed — warm starts show up as
        #: ``last_sweep_count`` collapsing after the first compute.
        self.sweep_count = 0
        self.last_sweep_count = 0

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def record_interaction(self, truster: str, trustee: str, satisfaction: float) -> None:
        """Record that ``truster`` rated an interaction with ``trustee``.

        ``satisfaction`` is clamped at 0 from below (EigenTrust local
        trust is non-negative; negative experiences simply add nothing,
        per the original paper's ``max(sat, 0)`` rule).
        """
        if truster == trustee:
            raise ReputationError("self-trust is not recordable")
        if truster not in self._identities or trustee not in self._identities:
            self._identities.add(truster)
            self._identities.add(trustee)
            self._dirty = True
            self._invalidate_index()
        if satisfaction > 0:
            key = (truster, trustee)
            existing = self._local.get(key)
            if existing is None:
                self._local[key] = satisfaction
                self._edge_pos[key] = len(self._local) - 1
                if self._mat_version == self._ids_version:
                    cache = self._index_cache
                    if cache is not None and cache[0] == self._ids_version:
                        index = cache[1]
                        self._pend_rows.append(index[truster])
                        self._pend_cols.append(index[trustee])
                        self._pend_vals.append(satisfaction)
                    else:  # pragma: no cover - defensive: force rebuild
                        self._mat_version = None
            else:
                self._local[key] = existing + satisfaction
                if self._mat_version == self._ids_version:
                    pos = self._edge_pos[key]
                    base = 0 if self._vals_np is None else len(self._vals_np)
                    if pos < base:
                        self._vals_np[pos] += satisfaction
                    else:
                        self._pend_vals[pos - base] += satisfaction
            self._dirty = True

    def add_identity(self, identity: str) -> None:
        """Make an identity known even before any interactions."""
        if identity not in self._identities:
            self._identities.add(identity)
            self._dirty = True
            self._invalidate_index()

    def add_identities(self, identities: Iterable[str]) -> None:
        """Bulk :meth:`add_identity`: one set update and one index
        invalidation for the whole batch, so registering a million-agent
        society triggers one sorted-index rebuild instead of one per
        agent."""
        new = set(identities)
        if self._identities:
            new -= self._identities
        if new:
            self._identities.update(new)
            self._dirty = True
            self._invalidate_index()

    def _invalidate_index(self) -> None:
        """The identity set changed: the sorted index mapping (and every
        array aligned to it) is stale."""
        self._sorted_ids = None
        self._ids_version += 1

    @property
    def identities(self) -> List[str]:
        if self._sorted_ids is None:
            self._sorted_ids = sorted(self._identities)
        return list(self._sorted_ids)

    # ------------------------------------------------------------------
    # Global trust
    # ------------------------------------------------------------------
    def compute(
        self, max_iterations: int = 100, tolerance: float = 1e-9
    ) -> Dict[str, float]:
        """Iterate to the global trust vector.

        Returns identity → trust, summing to 1 over all identities.
        With no identities the result is empty; with no pre-trusted
        identities the teleport distribution is uniform.

        The converged vector is cached: repeated calls with no new
        observations (and the same solver parameters) return the cached
        result without re-iterating.  When observations did arrive, the
        previous vector seeds the new iteration (warm start), so an
        incremental update costs a few sweeps, not a cold solve.
        """
        self._ensure_solved(max_iterations, tolerance)
        if self._cached_trust is None:
            # Built lazily: single-identity reads (``trust_of``) are
            # served straight from the solved array and never pay the
            # O(n) dict materialisation.
            trust = self._prev_trust_np
            if trust is None:
                self._cached_trust = {}
            else:
                self._cached_trust = {
                    identity: float(trust[i])
                    for i, identity in enumerate(self.identities)
                }
        return dict(self._cached_trust)

    def _ensure_solved(self, max_iterations: int, tolerance: float) -> None:
        """Recompute the trust vector only when stale."""
        params = (max_iterations, tolerance)
        if not self._dirty and self._cache_params == params:
            return
        self._solve(max_iterations, tolerance)
        self._cached_trust = None
        self._cache_params = params
        self._dirty = False

    def _index(self, ids: List[str]) -> Dict[str, int]:
        """identity → row index, cached until the identity set changes."""
        cache = self._index_cache
        if cache is not None and cache[0] == self._ids_version:
            return cache[1]
        index = {identity: i for i, identity in enumerate(ids)}
        self._index_cache = (self._ids_version, index)
        return index

    def _solve(self, max_iterations: int, tolerance: float) -> None:
        ids = self.identities
        if not ids:
            self._prev_trust_np = None
            self._prev_ids = []
            self._prev_trust_version = self._ids_version
            return
        self.compute_count += 1
        index = self._index(ids)
        n = len(ids)
        n_edges = len(self._local)

        # Teleport vector p: uniform over pre-trusted, else uniform.
        p = np.zeros(n)
        pretrusted = [i for i in self._pretrusted if i in index]
        if pretrusted:
            p[[index[identity] for identity in pretrusted]] = 1.0 / len(pretrusted)
        else:
            p[:] = 1.0 / n

        trust = self._start_vector(ids, index, p)
        use_sparse = n >= _SPARSE_MIN_IDS or (
            n >= 64 and n_edges < _SPARSE_DENSITY * n * n
        )
        if use_sparse:
            trust, sweeps = self._iterate_sparse(
                trust, p, index, max_iterations, tolerance
            )
        else:
            trust, sweeps = self._iterate_dense(
                trust, p, index, max_iterations, tolerance
            )
        self.sweep_count += sweeps
        self.last_sweep_count = sweeps

        total = trust.sum()
        if total > 0:
            trust = trust / total
        self._prev_trust_np = trust
        self._prev_ids = ids
        self._prev_trust_version = self._ids_version

    def _start_vector(
        self, ids: List[str], index: Dict[str, int], p: np.ndarray
    ) -> np.ndarray:
        """Warm start from the previous converged vector when possible.

        While the identity set is unchanged the previous solution is
        already index-aligned and is reused directly.  After an identity
        change, surviving identities keep their old mass (new ones start
        at 0) and the vector is renormalised onto the simplex.  Falls
        back to the teleport distribution on a cold start (or when warm
        starting is disabled).
        """
        if not self._warm_start:
            return p.copy()
        previous = self._prev_trust_np
        if previous is None:
            return p.copy()
        if (
            self._prev_trust_version == self._ids_version
            and len(previous) == len(ids)
        ):
            return previous.copy()
        trust = np.zeros(len(ids))
        for identity, value in zip(self._prev_ids, previous):
            i = index.get(identity)
            if i is not None:
                trust[i] = value
        total = trust.sum()
        if total <= 0:
            return p.copy()
        return trust / total

    def _iterate_dense(
        self,
        trust: np.ndarray,
        p: np.ndarray,
        index: Dict[str, int],
        max_iterations: int,
        tolerance: float,
    ) -> Tuple[np.ndarray, int]:
        """Materialised-matrix sweeps (small, dense graphs).

        Local trust matrix C (row i = who i trusts) is built with one
        fancy-indexed assignment instead of a Python loop per edge.
        """
        n = len(p)
        matrix = np.zeros((n, n))
        if self._local:
            rows, cols, vals = self._edge_arrays(index)
            matrix[rows, cols] = vals
        row_sums = matrix.sum(axis=1, keepdims=True)

        # Row-normalise; rows with no outgoing trust fall back to p.
        has_out = row_sums[:, 0] > 0
        stochastic = np.where(
            has_out[:, None],
            matrix / np.where(row_sums > 0, row_sums, 1.0),
            p[None, :],
        )
        sweeps = 0
        for _ in range(max_iterations):
            updated = (1 - self._alpha) * stochastic.T.dot(trust) + self._alpha * p
            sweeps += 1
            if np.abs(updated - trust).sum() < tolerance:
                trust = updated
                break
            trust = updated
        return trust, sweeps

    def _iterate_sparse(
        self,
        trust: np.ndarray,
        p: np.ndarray,
        index: Dict[str, int],
        max_iterations: int,
        tolerance: float,
    ) -> Tuple[np.ndarray, int]:
        """Edge-list sweeps: O(identities + edges) per sweep, no n x n
        matrix.  Semantically identical to the dense path — rows with no
        outgoing trust distribute their mass over the teleport vector."""
        n = len(p)
        if self._local:
            rows, cols, vals = self._edge_arrays(index)
            row_sums = np.bincount(rows, weights=vals, minlength=n)
            weights = vals / row_sums[rows]
            has_out = row_sums > 0
        else:
            rows = cols = None
            weights = None
            has_out = np.zeros(n, dtype=bool)
        sweeps = 0
        one_minus_alpha = 1 - self._alpha
        for _ in range(max_iterations):
            if rows is None:
                propagated = np.zeros(n)
            else:
                propagated = np.bincount(
                    cols, weights=trust[rows] * weights, minlength=n
                )
            dangling_mass = trust[~has_out].sum()
            updated = one_minus_alpha * (propagated + dangling_mass * p) + self._alpha * p
            sweeps += 1
            if np.abs(updated - trust).sum() < tolerance:
                trust = updated
                break
            trust = updated
        return trust, sweeps

    def _edge_arrays(
        self, index: Dict[str, int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rows, cols, values) of accumulated local trust, in stable
        insertion order (deterministic across same-history instances).

        Rebuilt from scratch only when the identity set changed since
        the previous solve; otherwise pending same-identity writes are
        folded in with one concatenate (O(pending + memcpy), no Python
        iteration over the whole edge dict).
        """
        if self._mat_version != self._ids_version:
            count = len(self._local)
            self._rows_np = np.fromiter(
                (index[truster] for truster, _ in self._local),
                dtype=np.intp,
                count=count,
            )
            self._cols_np = np.fromiter(
                (index[trustee] for _, trustee in self._local),
                dtype=np.intp,
                count=count,
            )
            self._vals_np = np.fromiter(
                self._local.values(), dtype=np.float64, count=count
            )
            self._pend_rows.clear()
            self._pend_cols.clear()
            self._pend_vals.clear()
            self._mat_version = self._ids_version
        elif self._pend_rows:
            self._rows_np = np.concatenate(
                [self._rows_np, np.asarray(self._pend_rows, dtype=np.intp)]
            )
            self._cols_np = np.concatenate(
                [self._cols_np, np.asarray(self._pend_cols, dtype=np.intp)]
            )
            self._vals_np = np.concatenate(
                [self._vals_np, np.asarray(self._pend_vals, dtype=np.float64)]
            )
            self._pend_rows.clear()
            self._pend_cols.clear()
            self._pend_vals.clear()
        return self._rows_np, self._cols_np, self._vals_np

    def trust_of(self, identity: str, **kwargs) -> float:
        """Single lookup served from the cached vector — O(1) between
        observations instead of a full power iteration per call."""
        max_iterations = kwargs.pop("max_iterations", 100)
        tolerance = kwargs.pop("tolerance", 1e-9)
        if kwargs:
            raise TypeError(f"unexpected arguments: {sorted(kwargs)}")
        self._ensure_solved(max_iterations, tolerance)
        trust = self._prev_trust_np
        if trust is None:
            return 0.0
        i = self._index(self.identities).get(identity)
        return float(trust[i]) if i is not None else 0.0

    def max_trust(self, **kwargs) -> float:
        """Largest global-trust value, read off the solved vector.

        Unlike :meth:`compute` this never materialises the per-identity
        dict — the columnar load path reads it once per epoch, which at
        1M agents is the difference between an O(1) array max and
        building a million-entry dict to throw away."""
        max_iterations = kwargs.pop("max_iterations", 100)
        tolerance = kwargs.pop("tolerance", 1e-9)
        if kwargs:
            raise TypeError(f"unexpected arguments: {sorted(kwargs)}")
        self._ensure_solved(max_iterations, tolerance)
        trust = self._prev_trust_np
        if trust is None or trust.size == 0:
            return 0.0
        return float(trust.max())
