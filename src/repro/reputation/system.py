"""The reputation system facade — §IV-C's "reputation-based system under
the Blockchain ... inherently attached to users".

Combines two estimators:

* **beta reputation** — fast, local, per-entity evidence counting; and
* **EigenTrust** — global, collusion-resistant trust propagation;

into a single ``score()`` in [0, 1] (a configurable convex blend), with
optional ledger anchoring: every feedback event can be registered as a
RECORD transaction, so reputations are auditable and tamper-evident.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ReputationError
from repro.obs.instrument import NULL_OBS, Instrumentation
from repro.reputation.beta import BetaReputation
from repro.reputation.eigentrust import EigenTrust

__all__ = ["FeedbackEvent", "ReputationSystem"]


# Anchor callback: receives one canonical-encodable feedback payload.
ReputationAnchor = Callable[[Dict[str, object]], None]


@dataclass(frozen=True)
class FeedbackEvent:
    """One rating of ``target`` by ``rater``."""

    time: float
    rater: str
    target: str
    positive: bool
    weight: float
    context: str


class ReputationSystem:
    """Blended local + global reputation with optional ledger anchoring.

    Parameters
    ----------
    pretrusted:
        Identities seeding EigenTrust (e.g. platform-audited operators).
    blend:
        Weight of the beta (local) estimate in the final score; the
        remaining weight goes to normalised EigenTrust.  ``blend=1``
        degrades to pure beta reputation (cheap, Sybil-prone);
        ``blend=0`` to pure EigenTrust.
    decay_factor:
        Per-epoch forgetting applied by :meth:`decay`.
    anchor:
        Optional callback that registers feedback on a ledger.
    obs:
        Optional observability instrumentation; trust recomputes and
        their refinement-sweep counts are exported as counters
        (``reputation.trust.computes`` / ``reputation.trust.sweeps``),
        so the cost of every write is measurable at population scale.
    """

    def __init__(
        self,
        pretrusted: Optional[Iterable[str]] = None,
        blend: float = 0.5,
        decay_factor: float = 0.95,
        anchor: Optional[ReputationAnchor] = None,
        obs: Optional[Instrumentation] = None,
    ):
        if not 0 <= blend <= 1:
            raise ReputationError(f"blend must be in [0, 1], got {blend}")
        self._beta = BetaReputation(decay_factor=decay_factor)
        self._eigentrust = EigenTrust(pretrusted=pretrusted)
        self._blend = blend
        self._anchor = anchor
        self._obs = obs if obs is not None else NULL_OBS
        self._events: List[FeedbackEvent] = []
        self._global_cache: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def record(
        self,
        rater: str,
        target: str,
        positive: bool,
        time: float = 0.0,
        weight: float = 1.0,
        context: str = "",
    ) -> FeedbackEvent:
        """Record one rating; updates both estimators and the anchor."""
        if rater == target:
            raise ReputationError(f"{rater} cannot rate themselves")
        event = FeedbackEvent(
            time=time,
            rater=rater,
            target=target,
            positive=positive,
            weight=weight,
            context=context,
        )
        self._events.append(event)
        self._beta.record(target, positive, weight)
        self._eigentrust.record_interaction(
            rater, target, weight if positive else -weight
        )
        self._global_cache = None
        if self._anchor is not None:
            self._anchor(
                {
                    "activity": "reputation_feedback",
                    "rater": rater,
                    "target": target,
                    "positive": positive,
                    "weight": weight,
                    "context": context,
                    "time": time,
                }
            )
        return event

    def register_identity(self, identity: str) -> None:
        """Make an identity visible to EigenTrust before any feedback."""
        self._eigentrust.add_identity(identity)

    def register_identities(self, identities: Iterable[str]) -> None:
        """Bulk :meth:`register_identity` — one index invalidation for
        the whole society instead of one per agent."""
        self._eigentrust.add_identities(identities)

    # ------------------------------------------------------------------
    # Scores
    # ------------------------------------------------------------------
    def local_score(self, entity: str) -> float:
        """Beta-reputation estimate in (0, 1)."""
        return self._beta.score(entity)

    def global_trust(self) -> Dict[str, float]:
        """EigenTrust vector (cached until new feedback arrives)."""
        if self._global_cache is None:
            computes_before = self._eigentrust.compute_count
            self._global_cache = self._eigentrust.compute()
            if self._eigentrust.compute_count != computes_before:
                self._obs.counter("reputation.trust.computes").inc()
                self._obs.counter("reputation.trust.sweeps").inc(
                    self._eigentrust.last_sweep_count
                )
        return self._global_cache

    def global_trust_top(self) -> float:
        """Max of :meth:`global_trust` without materialising the dict.

        Solve-triggering and counter semantics are identical to a
        :meth:`global_trust` cache miss, so metrics derived from either
        read are interchangeable — the columnar load path uses this for
        its per-epoch trust gauge at population scale."""
        if self._global_cache is not None:
            values = self._global_cache.values()
            return max(values) if values else 0.0
        computes_before = self._eigentrust.compute_count
        top = self._eigentrust.max_trust()
        if self._eigentrust.compute_count != computes_before:
            self._obs.counter("reputation.trust.computes").inc()
            self._obs.counter("reputation.trust.sweeps").inc(
                self._eigentrust.last_sweep_count
            )
        return top

    @property
    def trust_compute_count(self) -> int:
        """Full trust recomputes executed so far (cache misses)."""
        return self._eigentrust.compute_count

    @property
    def trust_sweep_count(self) -> int:
        """Total refinement sweeps across all recomputes — warm starts
        keep this growing by a few per write instead of ~dozens."""
        return self._eigentrust.sweep_count

    def score(self, entity: str) -> float:
        """Blended reputation in [0, 1].

        EigenTrust values sum to 1 over identities, so they are rescaled
        by the max before blending to be comparable with beta scores.
        """
        local = self.local_score(entity)
        trust = self.global_trust()
        if not trust:
            return local
        top = max(trust.values())
        normalised = trust.get(entity, 0.0) / top if top > 0 else 0.0
        return self._blend * local + (1 - self._blend) * normalised

    def ranking(self, top_n: Optional[int] = None) -> List[str]:
        """Entities ordered by blended score, best first."""
        entities = set(self._beta.entities()) | set(self.global_trust())
        ordered = sorted(entities, key=lambda e: (-self.score(e), e))
        return ordered[:top_n] if top_n is not None else ordered

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def decay(self) -> None:
        """Age the local evidence one epoch."""
        self._beta.decay_all()

    @property
    def events(self) -> List[FeedbackEvent]:
        return list(self._events)

    def feedback_count(self, target: Optional[str] = None) -> int:
        if target is None:
            return len(self._events)
        return sum(1 for event in self._events if event.target == target)
