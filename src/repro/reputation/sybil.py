"""Sybil attack modelling against reputation systems.

The paper proposes reputation to "counterbalance attacks during
decision-making processes" (§IV-C); the canonical attack on reputation
itself is the Sybil: one adversary mints many identities that endorse
each other to inflate a chosen beneficiary.  This module generates such
attacks so experiments can measure each estimator's resistance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import ReputationError
from repro.reputation.system import ReputationSystem

__all__ = ["SybilAttack", "SybilOutcome", "run_sybil_attack"]


@dataclass(frozen=True)
class SybilAttack:
    """Attack configuration.

    ``sybil_count`` fake identities each rate ``beneficiary`` positively
    ``ratings_per_sybil`` times and cross-endorse each other with
    probability ``cross_endorse_prob`` (a denser clique looks more
    organic to naive estimators).
    """

    beneficiary: str
    sybil_count: int
    ratings_per_sybil: int = 3
    cross_endorse_prob: float = 0.5

    def __post_init__(self) -> None:
        if self.sybil_count < 1:
            raise ReputationError(
                f"sybil_count must be >= 1, got {self.sybil_count}"
            )
        if self.ratings_per_sybil < 1:
            raise ReputationError(
                f"ratings_per_sybil must be >= 1, got {self.ratings_per_sybil}"
            )
        if not 0 <= self.cross_endorse_prob <= 1:
            raise ReputationError(
                "cross_endorse_prob must be in [0, 1], "
                f"got {self.cross_endorse_prob}"
            )


@dataclass(frozen=True)
class SybilOutcome:
    """Scores before and after the attack."""

    beneficiary: str
    score_before: float
    score_after: float
    sybil_ids: List[str]

    @property
    def inflation(self) -> float:
        """Absolute score gain achieved by the attack."""
        return self.score_after - self.score_before


def run_sybil_attack(
    system: ReputationSystem,
    attack: SybilAttack,
    rng: np.random.Generator,
    time: float = 0.0,
) -> SybilOutcome:
    """Execute ``attack`` against ``system`` and report the inflation.

    The sybil identities are named deterministically from the
    beneficiary so repeated runs are reproducible given the same rng
    stream.
    """
    score_before = system.score(attack.beneficiary)
    sybil_ids = [
        f"sybil:{attack.beneficiary[:8]}:{i}" for i in range(attack.sybil_count)
    ]
    for sybil in sybil_ids:
        system.register_identity(sybil)
        for _ in range(attack.ratings_per_sybil):
            system.record(
                rater=sybil,
                target=attack.beneficiary,
                positive=True,
                time=time,
                context="sybil",
            )
    # Cross-endorsements make the clique self-referential.
    for i, sybil in enumerate(sybil_ids):
        for j, other in enumerate(sybil_ids):
            if i == j:
                continue
            if rng.random() < attack.cross_endorse_prob:
                system.record(
                    rater=sybil,
                    target=other,
                    positive=True,
                    time=time,
                    context="sybil-cross",
                )
    score_after = system.score(attack.beneficiary)
    return SybilOutcome(
        beneficiary=attack.beneficiary,
        score_before=score_before,
        score_after=score_after,
        sybil_ids=sybil_ids,
    )
