"""Wallets: Merkle-signature-scheme key management and transaction signing.

A wallet deterministically derives ``2**height`` Lamport one-time key
pairs from its seed, builds a Merkle tree over their public-key digests,
and uses the tree root (hex) as its **address**.  Each signature consumes
the next one-time key and ships the Merkle path proving that key belongs
to the address — so validators can verify with public data only.

One-time keys are finite.  By default the wallet *wraps around* when all
keys are used (``allow_reuse=True``) because long simulations may sign
thousands of transactions; reuse is counted in ``reused_signatures`` so
experiments can report it.  Set ``allow_reuse=False`` for strict
one-time semantics (signing then raises after exhaustion).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.errors import LedgerError
from repro.ledger.crypto import (
    LamportKeyPair,
    generate_lamport_keypair,
    lamport_sign,
    sha256,
)
from repro.ledger.merkle import MerkleTree
from repro.ledger.transactions import SignedTransaction, Transaction, TxKind

__all__ = ["Wallet"]


class Wallet:
    """A deterministic MSS wallet.

    Parameters
    ----------
    seed:
        Bytes (or str, UTF-8 encoded) from which all key material derives.
        The same seed always produces the same address.
    height:
        Key-tree height; the wallet owns ``2**height`` one-time keys.
    bits:
        Lamport parameter: number of message-digest bits signed.  Smaller
        is faster; 32 is plenty for simulation integrity checks.
    allow_reuse:
        Whether signing may wrap around to already-used one-time keys
        once all are consumed.

    Examples
    --------
    >>> w = Wallet(seed=b"alice")
    >>> tx = w.build_transaction(recipient="ff" * 32, amount=5, nonce=0)
    >>> stx = w.sign(tx)
    >>> stx.verify()
    True
    """

    def __init__(
        self,
        seed: bytes,
        height: int = 5,
        bits: int = 32,
        allow_reuse: bool = True,
    ):
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        if not seed:
            raise ValueError("wallet seed must be non-empty")
        if height < 0 or height > 16:
            raise ValueError(f"height must be in [0, 16], got {height}")
        self._seed = bytes(seed)
        self._height = height
        self._bits = bits
        self._allow_reuse = allow_reuse
        self._key_count = 2 ** height
        self._keys = [
            generate_lamport_keypair(self._derive_key_seed(i), bits=bits)
            for i in range(self._key_count)
        ]
        self._tree = MerkleTree([kp.public_digest for kp in self._keys])
        self._next_key = 0
        self.reused_signatures = 0
        self._nonce_counter = itertools.count()

    def _derive_key_seed(self, index: int) -> bytes:
        return sha256(self._seed + b":ots:" + index.to_bytes(4, "big"))

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def address(self) -> str:
        """Hex address: the Merkle root of the one-time public keys."""
        return self._tree.root.hex()

    @property
    def keys_remaining(self) -> int:
        """One-time keys never used so far (0 once wrapped)."""
        return max(0, self._key_count - self._next_key)

    @property
    def signatures_issued(self) -> int:
        return self._next_key

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------
    def sign(self, tx: Transaction) -> SignedTransaction:
        """Sign ``tx`` with the next one-time key.

        Raises
        ------
        LedgerError
            If the wallet address does not match ``tx.sender``, or keys
            are exhausted and reuse is disabled.
        """
        if tx.sender != self.address:
            raise LedgerError(
                f"wallet {self.address[:12]} cannot sign for sender {tx.sender[:12]}"
            )
        index = self._next_key
        if index >= self._key_count:
            if not self._allow_reuse:
                raise LedgerError(
                    f"wallet {self.address[:12]} exhausted its "
                    f"{self._key_count} one-time keys"
                )
            self.reused_signatures += 1
            index = self._next_key % self._key_count
        self._next_key += 1
        keypair = self._keys[index]
        signature = lamport_sign(keypair, tx.signing_bytes)
        proof = self._tree.proof(index)
        return SignedTransaction(tx=tx, signature=signature, key_proof=proof)

    # ------------------------------------------------------------------
    # Convenience builders
    # ------------------------------------------------------------------
    def build_transaction(
        self,
        recipient: str,
        amount: int,
        nonce: int,
        fee: int = 0,
        kind: TxKind = TxKind.TRANSFER,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Transaction:
        """Build (but do not sign) a transaction from this wallet."""
        return Transaction(
            sender=self.address,
            recipient=recipient,
            amount=amount,
            fee=fee,
            nonce=nonce,
            kind=kind,
            payload=payload or {},
        )

    def transfer(
        self, recipient: str, amount: int, nonce: int, fee: int = 0
    ) -> SignedTransaction:
        """Build and sign a plain transfer."""
        return self.sign(self.build_transaction(recipient, amount, nonce, fee=fee))

    def record(
        self, nonce: int, record_payload: Dict[str, Any], fee: int = 0
    ) -> SignedTransaction:
        """Build and sign a data-collection RECORD transaction (§II-D)."""
        tx = self.build_transaction(
            recipient="",
            amount=0,
            nonce=nonce,
            fee=fee,
            kind=TxKind.RECORD,
            payload=record_payload,
        )
        return self.sign(tx)

    def call_contract(
        self,
        contract_address: str,
        method: str,
        args: Dict[str, Any],
        nonce: int,
        amount: int = 0,
        fee: int = 0,
    ) -> SignedTransaction:
        """Build and sign a smart-contract call."""
        tx = self.build_transaction(
            recipient=contract_address,
            amount=amount,
            nonce=nonce,
            fee=fee,
            kind=TxKind.CONTRACT,
            payload={"method": method, "args": args},
        )
        return self.sign(tx)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Wallet(address={self.address[:12]}..., keys={self._key_count})"
