"""Account state machine: balances, nonces, and stakes.

``LedgerState`` is a pure state container with an ``apply`` method that
validates and executes one signed transaction.  The blockchain replays
blocks through it; the mempool uses throwaway copies to pre-validate.

Validation rules (all raise :class:`InvalidTransactionError`):

* the signature and key proof must verify,
* the nonce must equal the sender's next expected nonce (replay guard),
* the sender must cover ``amount + fee``,
* stake operations must respect bonded balances.

Contract calls are delegated to an executor callable so the state module
does not depend on the contract VM (dependencies stay one-directional).
"""

from __future__ import annotations

from collections.abc import Mapping, MutableMapping
from itertools import islice
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.world.columnar import AgentTable

from repro.errors import InvalidTransactionError
from repro.ledger.transactions import SignedTransaction, TxKind

__all__ = ["LedgerState"]

# A copy-on-write chain flattens itself into a plain dict once this many
# overlay layers stack up, bounding per-read cost while keeping child
# creation O(1) (one flatten per _FLATTEN_DEPTH blocks, amortised).
_FLATTEN_DEPTH = 16

_MISSING = object()


class _CowMap(MutableMapping):
    """Mapping overlay: reads fall through to the parent snapshot,
    writes land in a local delta dict.

    The parent is logically frozen once a child exists (the chain never
    mutates a committed block state); nothing enforces that, so do not
    hand a parent out for mutation after calling ``LedgerState.child``.
    """

    __slots__ = ("_local", "_parent", "_depth")

    def __init__(self, parent: Optional[Mapping] = None):
        if isinstance(parent, _CowMap) and parent._depth >= _FLATTEN_DEPTH:
            parent = parent._compacted()
        self._parent = parent
        self._local: Dict = {}
        self._depth = parent._depth + 1 if isinstance(parent, _CowMap) else 1

    def _compacted(self):
        """Collapse the overlay chain to at most one layer.

        A plain-dict (or absent) base is fully materialised, as the
        original flatten did.  Any other base — e.g. a columnar
        :class:`~repro.world.columnar.ColumnMap` over a million-agent
        table — stays the bottom layer untouched and only the overlay
        deltas fold into a single dict, keeping the flatten O(touched
        keys) instead of O(population)."""
        layers = []
        node: Any = self
        while isinstance(node, _CowMap):
            layers.append(node._local)
            node = node._parent
        if node is None or type(node) is dict:
            base = dict(node) if node else {}
            for local in reversed(layers):
                base.update(local)
            return base
        deltas: Dict = {}
        for local in reversed(layers):
            deltas.update(local)
        folded = type(self)(node)
        folded._local = deltas
        return folded

    def _merged(self) -> Dict:
        """Materialise the full mapping (newest layer wins)."""
        layers = []
        node: Any = self
        while isinstance(node, _CowMap):
            layers.append(node._local)
            node = node._parent
        base = dict(node) if node else {}
        for local in reversed(layers):
            base.update(local)
        return base

    def __getitem__(self, key):
        node: Any = self
        while isinstance(node, _CowMap):
            value = node._local.get(key, _MISSING)
            if value is not _MISSING:
                return value
            node = node._parent
        if node is not None:
            return node[key]
        raise KeyError(key)

    def get(self, key, default=None):
        node: Any = self
        while isinstance(node, _CowMap):
            value = node._local.get(key, _MISSING)
            if value is not _MISSING:
                return value
            node = node._parent
        if node is not None:
            return node.get(key, default)
        return default

    def __contains__(self, key) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def __setitem__(self, key, value) -> None:
        self._local[key] = value

    def __delitem__(self, key) -> None:
        raise TypeError("ledger state maps are append/update-only")

    def __iter__(self) -> Iterator:
        return iter(self._merged())

    def __len__(self) -> int:
        return len(self._merged())

    def __eq__(self, other) -> bool:
        if isinstance(other, _CowMap):
            return self._merged() == other._merged()
        if isinstance(other, Mapping):
            return self._merged() == dict(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"_CowMap({self._merged()!r})"


class _CowStorageMap(_CowMap):
    """Contract-storage overlay: values are *mutable* nested dicts, so a
    read that resolves to a parent layer deep-copies the value into the
    local layer first — executors may then mutate it freely without
    corrupting the parent snapshot."""

    __slots__ = ()

    def __getitem__(self, key):
        value = self._local.get(key, _MISSING)
        if value is not _MISSING:
            return value
        node: Any = self._parent
        while isinstance(node, _CowMap):
            value = node._local.get(key, _MISSING)
            if value is not _MISSING:
                break
            node = node._parent
        if value is _MISSING:
            if node is None:
                raise KeyError(key)
            value = node.get(key, _MISSING)
            if value is _MISSING:
                raise KeyError(key)
        value = _deep_copy_storage(value)
        self._local[key] = value
        return value

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default


class _CowList:
    """Append-only list overlay: a frozen parent prefix plus local
    appends.  Supports the subset of the list protocol the ledger uses
    (append, len, iteration, indexing, equality)."""

    __slots__ = ("_parent", "_parent_len", "_local", "_depth")

    def __init__(self, parent):
        depth = parent._depth + 1 if isinstance(parent, _CowList) else 1
        if depth > _FLATTEN_DEPTH:
            parent = list(parent)
            depth = 1
        self._parent = parent
        self._parent_len = len(parent)
        self._local: list = []
        self._depth = depth

    def append(self, item) -> None:
        self._local.append(item)

    def __len__(self) -> int:
        return self._parent_len + len(self._local)

    def __iter__(self) -> Iterator:
        yield from islice(iter(self._parent), self._parent_len)
        yield from self._local

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("list index out of range")
        if index >= self._parent_len:
            return self._local[index - self._parent_len]
        return self._parent[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, (_CowList, list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"_CowList({list(self)!r})"

# Executor signature: (state, signed_tx) -> result payload (or None).
ContractExecutor = Callable[["LedgerState", SignedTransaction], Optional[Dict[str, Any]]]


class LedgerState:
    """Mutable account state: balances, nonces, stakes, contract storage.

    ``contract_storage`` is a two-level dict
    ``{contract_address: {key: value}}`` that the contract VM reads and
    writes through; keeping it here means a state copy captures contract
    state too, so fork replays are exact.
    """

    def __init__(self, initial_balances: Optional[Dict[str, int]] = None):
        self.balances: Dict[str, int] = dict(initial_balances or {})
        for address, balance in self.balances.items():
            if balance < 0:
                raise ValueError(f"negative initial balance for {address[:12]}")
        self.nonces: Dict[str, int] = {}
        self.stakes: Dict[str, int] = {}
        self.contract_storage: Dict[str, Dict[str, Any]] = {}
        self.records: list = []  # applied RECORD payloads, in order

    @classmethod
    def from_columns(cls, table: "AgentTable") -> "LedgerState":
        """Genesis state whose balances read straight from an
        :class:`~repro.world.columnar.AgentTable` balance column — no
        million-entry genesis dict is ever built.

        The table's columns become the frozen copy-on-write base: blocks
        apply to :meth:`child` overlays exactly as with a dict genesis,
        so the columns must not be mutated after the chain starts (same
        contract as any parent snapshot).  Nonces/stakes start empty,
        matching ``LedgerState({addr: bal, ...})`` semantics where
        absent keys read as zero.
        """
        balances = table.balances
        if balances.size and int(balances.min()) < 0:
            raise ValueError("negative initial balance in column")
        state = cls.__new__(cls)
        state.balances = table.balance_map()
        state.nonces = {}
        state.stakes = {}
        state.contract_storage = {}
        state.records = []
        return state

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def balance_of(self, address: str) -> int:
        return self.balances.get(address, 0)

    def nonce_of(self, address: str) -> int:
        """Next expected nonce for ``address``."""
        return self.nonces.get(address, 0)

    def stake_of(self, address: str) -> int:
        return self.stakes.get(address, 0)

    @property
    def total_supply(self) -> int:
        """Total tokens across balances and stakes (fees are paid to
        proposers via :meth:`credit_fees`, so supply is conserved)."""
        return sum(self.balances.values()) + sum(self.stakes.values())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(
        self,
        stx: SignedTransaction,
        contract_executor: Optional[ContractExecutor] = None,
    ) -> Optional[Dict[str, Any]]:
        """Validate and execute ``stx``; returns the contract result (if
        any).  State is unchanged when an exception is raised *before*
        any mutation; contract executors must enforce their own atomicity
        (the chain applies blocks to a copy, so a failed block never
        corrupts committed state)."""
        stx.require_valid()
        tx = stx.tx
        expected_nonce = self.nonce_of(tx.sender)
        if tx.nonce != expected_nonce:
            raise InvalidTransactionError(
                f"bad nonce for {tx.sender[:12]}: got {tx.nonce}, "
                f"expected {expected_nonce}"
            )
        cost = tx.amount + tx.fee
        if self.balance_of(tx.sender) < cost:
            raise InvalidTransactionError(
                f"insufficient balance for {tx.sender[:12]}: "
                f"have {self.balance_of(tx.sender)}, need {cost}"
            )

        result: Optional[Dict[str, Any]] = None
        if tx.kind == TxKind.TRANSFER:
            self._debit(tx.sender, tx.amount)
            self._credit(tx.recipient, tx.amount)
        elif tx.kind == TxKind.RECORD:
            self.records.append({"sender": tx.sender, **tx.payload})
        elif tx.kind == TxKind.STAKE:
            self._debit(tx.sender, tx.amount)
            self.stakes[tx.sender] = self.stake_of(tx.sender) + tx.amount
        elif tx.kind == TxKind.UNSTAKE:
            if self.stake_of(tx.sender) < tx.amount:
                raise InvalidTransactionError(
                    f"cannot unstake {tx.amount}, only "
                    f"{self.stake_of(tx.sender)} bonded"
                )
            self.stakes[tx.sender] = self.stake_of(tx.sender) - tx.amount
            self._credit(tx.sender, tx.amount)
        elif tx.kind in (TxKind.CONTRACT, TxKind.MINT):
            if contract_executor is None:
                raise InvalidTransactionError(
                    f"no contract executor available for {tx.kind.value} tx"
                )
            # Value sent to a contract moves before execution, matching
            # the usual smart-contract model.
            self._debit(tx.sender, tx.amount)
            self._credit(tx.recipient, tx.amount)
            result = contract_executor(self, stx)
        else:  # pragma: no cover - enum is exhaustive
            raise InvalidTransactionError(f"unknown tx kind {tx.kind}")

        # Fee is burned from the sender here and credited to the block
        # proposer by the chain via credit_fees().
        if tx.fee:
            self._debit(tx.sender, tx.fee)
        self.nonces[tx.sender] = expected_nonce + 1
        return result

    def credit_fees(self, proposer: str, total_fees: int) -> None:
        """Pay collected block fees to the proposer."""
        if total_fees < 0:
            raise ValueError("total_fees must be >= 0")
        if total_fees:
            self._credit(proposer, total_fees)

    def _debit(self, address: str, amount: int) -> None:
        balance = self.balance_of(address)
        if balance < amount:
            raise InvalidTransactionError(
                f"debit of {amount} exceeds balance {balance} of {address[:12]}"
            )
        self.balances[address] = balance - amount

    def _credit(self, address: str, amount: int) -> None:
        if not address:
            return  # burns (empty recipient) are allowed
        self.balances[address] = self.balance_of(address) + amount

    # ------------------------------------------------------------------
    # Copies
    # ------------------------------------------------------------------
    def copy(self) -> "LedgerState":
        """Deep-enough *eager* copy (contract storage values are assumed
        canonical-encodable, i.e. tree-shaped).  Fully independent of
        this state in both directions; cost is O(state size).  Prefer
        :meth:`child` on hot paths where this state is a frozen
        snapshot."""
        clone = LedgerState()
        clone.balances = dict(self.balances)
        clone.nonces = dict(self.nonces)
        clone.stakes = dict(self.stakes)
        clone.contract_storage = {
            addr: _deep_copy_storage(storage)
            for addr, storage in self.contract_storage.items()
        }
        clone.records = list(self.records)
        return clone

    def child(self) -> "LedgerState":
        """O(1) copy-on-write snapshot layered over this state.

        The child reads through to this state and writes only deltas —
        the chain uses this so appending a block costs O(touched keys)
        instead of O(total accounts).  Contract: once a child exists,
        this state is a frozen snapshot and must not be mutated (the
        chain guarantees that — committed block states are never written
        again); mutate the child only.
        """
        clone = LedgerState.__new__(LedgerState)
        clone.balances = _CowMap(self.balances)
        clone.nonces = _CowMap(self.nonces)
        clone.stakes = _CowMap(self.stakes)
        clone.contract_storage = _CowStorageMap(self.contract_storage)
        clone.records = _CowList(self.records)
        return clone


def _deep_copy_storage(value: Any) -> Any:
    if isinstance(value, dict):
        return {k: _deep_copy_storage(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_deep_copy_storage(v) for v in value]
    return value
