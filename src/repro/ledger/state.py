"""Account state machine: balances, nonces, and stakes.

``LedgerState`` is a pure state container with an ``apply`` method that
validates and executes one signed transaction.  The blockchain replays
blocks through it; the mempool uses throwaway copies to pre-validate.

Validation rules (all raise :class:`InvalidTransactionError`):

* the signature and key proof must verify,
* the nonce must equal the sender's next expected nonce (replay guard),
* the sender must cover ``amount + fee``,
* stake operations must respect bonded balances.

Contract calls are delegated to an executor callable so the state module
does not depend on the contract VM (dependencies stay one-directional).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import InvalidTransactionError
from repro.ledger.transactions import SignedTransaction, TxKind

__all__ = ["LedgerState"]

# Executor signature: (state, signed_tx) -> result payload (or None).
ContractExecutor = Callable[["LedgerState", SignedTransaction], Optional[Dict[str, Any]]]


class LedgerState:
    """Mutable account state: balances, nonces, stakes, contract storage.

    ``contract_storage`` is a two-level dict
    ``{contract_address: {key: value}}`` that the contract VM reads and
    writes through; keeping it here means a state copy captures contract
    state too, so fork replays are exact.
    """

    def __init__(self, initial_balances: Optional[Dict[str, int]] = None):
        self.balances: Dict[str, int] = dict(initial_balances or {})
        for address, balance in self.balances.items():
            if balance < 0:
                raise ValueError(f"negative initial balance for {address[:12]}")
        self.nonces: Dict[str, int] = {}
        self.stakes: Dict[str, int] = {}
        self.contract_storage: Dict[str, Dict[str, Any]] = {}
        self.records: list = []  # applied RECORD payloads, in order

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def balance_of(self, address: str) -> int:
        return self.balances.get(address, 0)

    def nonce_of(self, address: str) -> int:
        """Next expected nonce for ``address``."""
        return self.nonces.get(address, 0)

    def stake_of(self, address: str) -> int:
        return self.stakes.get(address, 0)

    @property
    def total_supply(self) -> int:
        """Total tokens across balances and stakes (fees are paid to
        proposers via :meth:`credit_fees`, so supply is conserved)."""
        return sum(self.balances.values()) + sum(self.stakes.values())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(
        self,
        stx: SignedTransaction,
        contract_executor: Optional[ContractExecutor] = None,
    ) -> Optional[Dict[str, Any]]:
        """Validate and execute ``stx``; returns the contract result (if
        any).  State is unchanged when an exception is raised *before*
        any mutation; contract executors must enforce their own atomicity
        (the chain applies blocks to a copy, so a failed block never
        corrupts committed state)."""
        stx.require_valid()
        tx = stx.tx
        expected_nonce = self.nonce_of(tx.sender)
        if tx.nonce != expected_nonce:
            raise InvalidTransactionError(
                f"bad nonce for {tx.sender[:12]}: got {tx.nonce}, "
                f"expected {expected_nonce}"
            )
        cost = tx.amount + tx.fee
        if self.balance_of(tx.sender) < cost:
            raise InvalidTransactionError(
                f"insufficient balance for {tx.sender[:12]}: "
                f"have {self.balance_of(tx.sender)}, need {cost}"
            )

        result: Optional[Dict[str, Any]] = None
        if tx.kind == TxKind.TRANSFER:
            self._debit(tx.sender, tx.amount)
            self._credit(tx.recipient, tx.amount)
        elif tx.kind == TxKind.RECORD:
            self.records.append({"sender": tx.sender, **tx.payload})
        elif tx.kind == TxKind.STAKE:
            self._debit(tx.sender, tx.amount)
            self.stakes[tx.sender] = self.stake_of(tx.sender) + tx.amount
        elif tx.kind == TxKind.UNSTAKE:
            if self.stake_of(tx.sender) < tx.amount:
                raise InvalidTransactionError(
                    f"cannot unstake {tx.amount}, only "
                    f"{self.stake_of(tx.sender)} bonded"
                )
            self.stakes[tx.sender] = self.stake_of(tx.sender) - tx.amount
            self._credit(tx.sender, tx.amount)
        elif tx.kind in (TxKind.CONTRACT, TxKind.MINT):
            if contract_executor is None:
                raise InvalidTransactionError(
                    f"no contract executor available for {tx.kind.value} tx"
                )
            # Value sent to a contract moves before execution, matching
            # the usual smart-contract model.
            self._debit(tx.sender, tx.amount)
            self._credit(tx.recipient, tx.amount)
            result = contract_executor(self, stx)
        else:  # pragma: no cover - enum is exhaustive
            raise InvalidTransactionError(f"unknown tx kind {tx.kind}")

        # Fee is burned from the sender here and credited to the block
        # proposer by the chain via credit_fees().
        if tx.fee:
            self._debit(tx.sender, tx.fee)
        self.nonces[tx.sender] = expected_nonce + 1
        return result

    def credit_fees(self, proposer: str, total_fees: int) -> None:
        """Pay collected block fees to the proposer."""
        if total_fees < 0:
            raise ValueError("total_fees must be >= 0")
        if total_fees:
            self._credit(proposer, total_fees)

    def _debit(self, address: str, amount: int) -> None:
        balance = self.balance_of(address)
        if balance < amount:
            raise InvalidTransactionError(
                f"debit of {amount} exceeds balance {balance} of {address[:12]}"
            )
        self.balances[address] = balance - amount

    def _credit(self, address: str, amount: int) -> None:
        if not address:
            return  # burns (empty recipient) are allowed
        self.balances[address] = self.balance_of(address) + amount

    # ------------------------------------------------------------------
    # Copies
    # ------------------------------------------------------------------
    def copy(self) -> "LedgerState":
        """Deep-enough copy for speculative execution (contract storage
        values are assumed canonical-encodable, i.e. tree-shaped)."""
        clone = LedgerState()
        clone.balances = dict(self.balances)
        clone.nonces = dict(self.nonces)
        clone.stakes = dict(self.stakes)
        clone.contract_storage = {
            addr: _deep_copy_storage(storage)
            for addr, storage in self.contract_storage.items()
        }
        clone.records = list(self.records)
        return clone


def _deep_copy_storage(value: Any) -> Any:
    if isinstance(value, dict):
        return {k: _deep_copy_storage(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_deep_copy_storage(v) for v in value]
    return value
