"""Blocks: headers committing to ordered transaction lists.

A block header carries ``(height, prev_hash, merkle_root, timestamp,
proposer)``; the body is the ordered list of signed transactions.  The
Merkle root commits to transaction ids, so light audit clients can check
inclusion with a :class:`~repro.ledger.merkle.MerkleProof` and the header
alone (used by ``repro.ledger.audit``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import InvalidBlockError
from repro.ledger.crypto import sha256
from repro.ledger.encoding import canonical_encode
from repro.ledger.merkle import MerkleProof, MerkleTree
from repro.ledger.transactions import SignedTransaction

__all__ = ["Block", "build_block"]


@dataclass(frozen=True)
class Block:
    """An immutable block.

    The genesis block has ``height == 0``, ``prev_hash == "00" * 32``,
    an empty body, and proposer ``"genesis"``.
    """

    height: int
    prev_hash: str
    merkle_root: str
    timestamp: float
    proposer: str
    transactions: Tuple[SignedTransaction, ...] = ()

    def __post_init__(self) -> None:
        if self.height < 0:
            raise InvalidBlockError(f"height must be >= 0, got {self.height}")

    def header_dict(self) -> Dict[str, Any]:
        return {
            "height": self.height,
            "prev_hash": self.prev_hash,
            "merkle_root": self.merkle_root,
            "timestamp": self.timestamp,
            "proposer": self.proposer,
        }

    # Blocks are frozen, so derived hashes are computed once and cached:
    # fork choice, chain queries, and error paths all re-read block_hash.
    @cached_property
    def block_hash(self) -> str:
        """Hex hash over the canonical header encoding."""
        return sha256(canonical_encode(self.header_dict())).hex()

    @cached_property
    def tx_ids(self) -> List[str]:
        """Body transaction ids, in order (do not mutate)."""
        return [stx.tx_id for stx in self.transactions]

    @cached_property
    def total_fees(self) -> int:
        return sum(stx.tx.fee for stx in self.transactions)

    @cached_property
    def _merkle_tree(self) -> MerkleTree:
        return MerkleTree([bytes.fromhex(tx_id) for tx_id in self.tx_ids])

    def compute_merkle_root(self) -> str:
        """The Merkle root over the body's transaction ids (cached —
        the body is immutable, so one tree build serves validation and
        every later inclusion proof)."""
        return self._merkle_tree.root.hex()

    def validate_structure(self) -> None:
        """Structural checks independent of chain context.

        Raises
        ------
        InvalidBlockError
            If the Merkle root does not match the body, a transaction id
            is duplicated, or any signature fails.
        """
        if self.compute_merkle_root() != self.merkle_root:
            raise InvalidBlockError(
                f"block {self.block_hash[:12]}: merkle root mismatch"
            )
        ids = self.tx_ids
        if len(set(ids)) != len(ids):
            raise InvalidBlockError(
                f"block {self.block_hash[:12]}: duplicate transaction in body"
            )
        for stx in self.transactions:
            if not stx.verify():
                raise InvalidBlockError(
                    f"block {self.block_hash[:12]}: invalid signature on "
                    f"tx {stx.tx_id[:12]}"
                )

    def inclusion_proof(self, tx_id: str) -> MerkleProof:
        """Merkle proof that ``tx_id`` is in this block.

        Raises
        ------
        InvalidBlockError
            If the transaction is not in the body.
        """
        ids = self.tx_ids
        try:
            index = ids.index(tx_id)
        except ValueError:
            raise InvalidBlockError(
                f"tx {tx_id[:12]} not in block {self.block_hash[:12]}"
            ) from None
        return self._merkle_tree.proof(index)


def build_block(
    height: int,
    prev_hash: str,
    timestamp: float,
    proposer: str,
    transactions: Sequence[SignedTransaction],
) -> Block:
    """Assemble a block, computing the Merkle root from the body."""
    txs = tuple(transactions)
    leaves = [bytes.fromhex(stx.tx_id) for stx in txs]
    tree = MerkleTree(leaves)
    block = Block(
        height=height,
        prev_hash=prev_hash,
        merkle_root=tree.root.hex(),
        timestamp=float(timestamp),
        proposer=proposer,
        transactions=txs,
    )
    # Seed the cache so validation does not rebuild the tree just built.
    block.__dict__["_merkle_tree"] = tree
    return block
