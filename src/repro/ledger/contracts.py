"""Smart contracts: deterministic on-chain programs.

The paper relies on smart contracts for DAOs, asset registries, and
automated services ("the system can also automatically handle services,
such as selling a property asset in the metaverse", §III-B).  This module
provides the minimal VM those uses need:

* :class:`SmartContract` — base class; subclasses expose ``method_*``
  handlers that read/write their own storage namespace.
* :class:`ContractRegistry` — deploys contracts to deterministic
  addresses and acts as the ``contract_executor`` the ledger state
  machine delegates CONTRACT/MINT transactions to.
* Built-ins: :class:`TokenContract` (fungible sub-token),
  :class:`RegistryContract` (owned key→value store, used for digital-twin
  and NFT provenance anchoring), :class:`EscrowContract` (two-party
  conditional payment), and :class:`VotingContract` (on-chain ballot box
  used to anchor DAO outcomes).

Contracts are deterministic by construction: they may only touch their
storage dict and the call context — no I/O, no wall clock, no randomness.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ContractError
from repro.ledger.crypto import sha256
from repro.ledger.state import LedgerState
from repro.ledger.transactions import SignedTransaction, TxKind
from repro.obs.instrument import NULL_OBS, Instrumentation

__all__ = [
    "ContractContext",
    "SmartContract",
    "ContractRegistry",
    "TokenContract",
    "RegistryContract",
    "EscrowContract",
    "VotingContract",
]


@dataclass
class ContractContext:
    """Everything a contract method may observe.

    Attributes
    ----------
    sender:
        Address that signed the calling transaction.
    amount:
        Value attached to the call (already credited to the contract
        account by the state machine).
    storage:
        This contract's private storage namespace.
    state:
        The full ledger state — provided so contracts can *pay out*
        via :meth:`transfer_out`; direct reads of other accounts are
        allowed (they are public on a chain) but writes must go through
        the helper to preserve balance accounting.
    contract_address:
        The called contract's own address.
    """

    sender: str
    amount: int
    storage: Dict[str, Any]
    state: LedgerState
    contract_address: str

    def transfer_out(self, recipient: str, amount: int) -> None:
        """Move tokens from the contract's account to ``recipient``."""
        if amount < 0:
            raise ContractError(f"cannot transfer negative amount {amount}")
        balance = self.state.balance_of(self.contract_address)
        if balance < amount:
            raise ContractError(
                f"contract {self.contract_address[:12]} holds {balance}, "
                f"cannot pay {amount}"
            )
        self.state.balances[self.contract_address] = balance - amount
        self.state.balances[recipient] = self.state.balance_of(recipient) + amount


class SmartContract:
    """Base class for contracts.

    A method call ``{"method": "mint", "args": {...}}`` dispatches to
    ``self.method_mint(ctx, **args)``.  Handlers raise
    :class:`ContractError` to revert (the chain discards the whole block
    state on failure, so reverts are atomic at block granularity).
    """

    name = "contract"

    def call(self, method: str, args: Dict[str, Any], ctx: ContractContext) -> Dict[str, Any]:
        handler: Optional[Callable[..., Dict[str, Any]]] = getattr(
            self, f"method_{method}", None
        )
        if handler is None:
            raise ContractError(f"{self.name}: unknown method {method!r}")
        try:
            result = handler(ctx, **args)
        except TypeError as exc:
            raise ContractError(f"{self.name}.{method}: bad arguments ({exc})") from exc
        return result or {}


class _DispatchEntry:
    """Resolved handler plus its pre-validated argument schema.

    Built once per (contract address, method) on first dispatch; later
    calls skip the ``getattr`` walk and validate the payload's ``args``
    keys against the signature-derived schema instead of paying a
    ``try/except TypeError`` round trip through the interpreter.
    """

    __slots__ = ("contract", "handler", "required", "allowed", "has_kwargs", "label")

    def __init__(self, contract: SmartContract, method: str, handler: Callable[..., Any]):
        self.contract = contract
        self.handler = handler
        self.label = f"{contract.name}.{method}"
        required = set()
        allowed = set()
        has_kwargs = False
        params = list(inspect.signature(handler).parameters.values())
        # First parameter is the ContractContext (bound methods already
        # exclude ``self``).
        for param in params[1:]:
            if param.kind is inspect.Parameter.VAR_KEYWORD:
                has_kwargs = True
                continue
            if param.kind is inspect.Parameter.VAR_POSITIONAL:
                continue
            allowed.add(param.name)
            if param.default is inspect.Parameter.empty:
                required.add(param.name)
        self.required = frozenset(required)
        self.allowed = frozenset(allowed)
        self.has_kwargs = has_kwargs

    def check(self, args: Dict[str, Any]) -> None:
        """Raise :class:`ContractError` on a schema mismatch without
        invoking the handler."""
        missing = self.required - args.keys()
        if missing:
            raise ContractError(
                f"{self.label}: bad arguments (missing {sorted(missing)})"
            )
        if not self.has_kwargs:
            unexpected = args.keys() - self.allowed
            if unexpected:
                raise ContractError(
                    f"{self.label}: bad arguments (unexpected {sorted(unexpected)})"
                )


class ContractRegistry:
    """Deploys contracts and executes CONTRACT/MINT transactions.

    Deployment is an operator action (off-chain in this simulation, as
    in permissioned pilots); addresses are deterministic hashes of
    ``(name, deploy_index)`` so scenarios are reproducible.
    """

    def __init__(self, obs: Optional[Instrumentation] = None) -> None:
        self._contracts: Dict[str, SmartContract] = {}
        self._deploy_count = 0
        self._obs = obs if obs is not None else NULL_OBS
        # (address, method) -> resolved handler + arg schema; entries
        # for an address are dropped whenever that address is
        # (re)registered, so a replaced contract can never be called
        # through a stale handler.
        self._dispatch: Dict[Tuple[str, str], _DispatchEntry] = {}

    def deploy(self, contract: SmartContract) -> str:
        """Register ``contract`` and return its hex address."""
        address = sha256(
            f"contract:{contract.name}:{self._deploy_count}".encode("utf-8")
        ).hex()
        self._deploy_count += 1
        self.register(address, contract)
        return address

    def register(self, address: str, contract: SmartContract) -> None:
        """(Re)register ``contract`` at ``address``.

        Invalidates any dispatch-cache entries for the address — the
        cache must never route a call to a handler of a contract that is
        no longer deployed there.
        """
        self._contracts[address] = contract
        stale = [key for key in self._dispatch if key[0] == address]
        for key in stale:
            del self._dispatch[key]

    def get(self, address: str) -> SmartContract:
        if address not in self._contracts:
            raise ContractError(f"no contract deployed at {address[:12]}")
        return self._contracts[address]

    def addresses(self) -> Dict[str, str]:
        """Map of deployed address → contract name."""
        return {addr: c.name for addr, c in self._contracts.items()}

    # The ContractExecutor protocol consumed by LedgerState.apply():
    def __call__(
        self, state: LedgerState, stx: SignedTransaction
    ) -> Optional[Dict[str, Any]]:
        tx = stx.tx
        if tx.kind not in (TxKind.CONTRACT, TxKind.MINT):
            raise ContractError(f"executor invoked for non-contract tx {tx.kind}")
        contract = self.get(tx.recipient)
        storage = state.contract_storage.setdefault(tx.recipient, {})
        ctx = ContractContext(
            sender=tx.sender,
            amount=tx.amount,
            storage=storage,
            state=state,
            contract_address=tx.recipient,
        )
        method = tx.payload.get("method", "")
        args = tx.payload.get("args", {})
        if not isinstance(args, dict):
            raise ContractError(f"{contract.name}: args must be a dict")
        entry = self._resolve(tx.recipient, contract, method)
        with self._obs.span(
            "ledger.contracts",
            f"{contract.name}.{method}",
            contract=contract.name,
            method=method,
            sender=tx.sender,
            tx_id=stx.tx_id,
        ):
            if entry is None:
                # Contract overrides ``call`` — honour its custom
                # dispatch instead of the cached fast path.
                result = contract.call(method, args, ctx)
            else:
                entry.check(args)
                try:
                    result = entry.handler(ctx, **args)
                except TypeError as exc:
                    raise ContractError(
                        f"{entry.label}: bad arguments ({exc})"
                    ) from exc
                result = result or {}
        self._obs.counter(f"ledger.contracts.{contract.name}.calls").inc()
        return result

    def _resolve(
        self, address: str, contract: SmartContract, method: str
    ) -> Optional[_DispatchEntry]:
        """The cached dispatch entry for (address, method).

        Returns None when the contract customises :meth:`SmartContract.call`
        (its dispatch cannot be assumed to be ``method_*`` lookup).
        Raises :class:`ContractError` for an unknown method, mirroring
        the uncached path; unknown methods are not cached (a payload
        probing random names must not grow the table).
        """
        key = (address, method)
        entry = self._dispatch.get(key)
        if entry is not None and entry.contract is contract:
            self._obs.counter("ledger.contracts.dispatch_cache.hits").inc()
            return entry
        if type(contract).call is not SmartContract.call:
            return None
        handler = getattr(contract, f"method_{method}", None)
        if handler is None:
            raise ContractError(f"{contract.name}: unknown method {method!r}")
        entry = _DispatchEntry(contract, method, handler)
        self._dispatch[key] = entry
        self._obs.counter("ledger.contracts.dispatch_cache.misses").inc()
        return entry


class TokenContract(SmartContract):
    """A fungible sub-token (e.g. a world's local currency).

    Methods: ``mint`` (owner only), ``transfer``, ``balance``.
    """

    name = "token"

    def __init__(self, owner: str):
        self._owner = owner

    def method_mint(self, ctx: ContractContext, to: str, value: int) -> Dict[str, Any]:
        if ctx.sender != self._owner:
            raise ContractError("token: only the owner may mint")
        if value <= 0:
            raise ContractError(f"token: mint value must be positive, got {value}")
        balances = ctx.storage.setdefault("balances", {})
        balances[to] = balances.get(to, 0) + value
        ctx.storage["supply"] = ctx.storage.get("supply", 0) + value
        return {"minted": value, "to": to}

    def method_transfer(self, ctx: ContractContext, to: str, value: int) -> Dict[str, Any]:
        if value <= 0:
            raise ContractError(f"token: transfer value must be positive, got {value}")
        balances = ctx.storage.setdefault("balances", {})
        if balances.get(ctx.sender, 0) < value:
            raise ContractError(
                f"token: {ctx.sender[:12]} holds {balances.get(ctx.sender, 0)}, "
                f"cannot send {value}"
            )
        balances[ctx.sender] -= value
        balances[to] = balances.get(to, 0) + value
        return {"from": ctx.sender, "to": to, "value": value}

    def method_balance(self, ctx: ContractContext, of: str) -> Dict[str, Any]:
        balances = ctx.storage.get("balances", {})
        return {"of": of, "balance": balances.get(of, 0)}


class RegistryContract(SmartContract):
    """Owned key→value registry.

    First writer of a key becomes its owner; only the owner may update.
    Used to anchor digital-twin provenance and NFT metadata (§IV-A:
    "the most straightforward approach to protecting digital twins'
    authenticity and origin is using a digital ledger").
    """

    name = "registry"

    def method_register(self, ctx: ContractContext, key: str, value: Any) -> Dict[str, Any]:
        entries = ctx.storage.setdefault("entries", {})
        if key in entries and entries[key]["owner"] != ctx.sender:
            raise ContractError(
                f"registry: key {key!r} owned by {entries[key]['owner'][:12]}"
            )
        entries[key] = {"owner": ctx.sender, "value": value}
        return {"key": key, "owner": ctx.sender}

    def method_lookup(self, ctx: ContractContext, key: str) -> Dict[str, Any]:
        entries = ctx.storage.get("entries", {})
        if key not in entries:
            raise ContractError(f"registry: key {key!r} not registered")
        return dict(entries[key], key=key)

    def method_transfer_ownership(
        self, ctx: ContractContext, key: str, to: str
    ) -> Dict[str, Any]:
        entries = ctx.storage.get("entries", {})
        if key not in entries:
            raise ContractError(f"registry: key {key!r} not registered")
        if entries[key]["owner"] != ctx.sender:
            raise ContractError(f"registry: {ctx.sender[:12]} does not own {key!r}")
        entries[key]["owner"] = to
        return {"key": key, "owner": to}


class EscrowContract(SmartContract):
    """Two-party escrow: buyer deposits, then releases to the seller or
    refunds themselves.  One open deal per (buyer, seller, deal_id)."""

    name = "escrow"

    def method_deposit(
        self, ctx: ContractContext, seller: str, deal_id: str
    ) -> Dict[str, Any]:
        if ctx.amount <= 0:
            raise ContractError("escrow: deposit requires attached value")
        deals = ctx.storage.setdefault("deals", {})
        key = f"{ctx.sender}:{seller}:{deal_id}"
        if key in deals:
            raise ContractError(f"escrow: deal {deal_id!r} already open")
        deals[key] = {"buyer": ctx.sender, "seller": seller, "amount": ctx.amount}
        return {"deal": key, "amount": ctx.amount}

    def _pop_deal(self, ctx: ContractContext, seller: str, deal_id: str) -> Dict[str, Any]:
        deals = ctx.storage.get("deals", {})
        key = f"{ctx.sender}:{seller}:{deal_id}"
        if key not in deals:
            raise ContractError(f"escrow: no open deal {deal_id!r}")
        return deals.pop(key)

    def method_release(
        self, ctx: ContractContext, seller: str, deal_id: str
    ) -> Dict[str, Any]:
        deal = self._pop_deal(ctx, seller, deal_id)
        ctx.transfer_out(deal["seller"], deal["amount"])
        return {"released": deal["amount"], "to": deal["seller"]}

    def method_refund(
        self, ctx: ContractContext, seller: str, deal_id: str
    ) -> Dict[str, Any]:
        deal = self._pop_deal(ctx, seller, deal_id)
        ctx.transfer_out(deal["buyer"], deal["amount"])
        return {"refunded": deal["amount"], "to": deal["buyer"]}


class VotingContract(SmartContract):
    """On-chain ballot box for anchoring DAO outcomes.

    ``open`` a poll, ``vote`` once per address, ``close`` and read the
    tally.  The richer voting semantics (weights, delegation, quorum)
    live in ``repro.dao``; this contract is the immutable audit record.
    """

    name = "voting"

    def method_open(self, ctx: ContractContext, poll_id: str, options: list) -> Dict[str, Any]:
        polls = ctx.storage.setdefault("polls", {})
        if poll_id in polls:
            raise ContractError(f"voting: poll {poll_id!r} already exists")
        if not options:
            raise ContractError("voting: a poll needs at least one option")
        polls[poll_id] = {
            "creator": ctx.sender,
            "options": list(options),
            "votes": {},
            "open": True,
        }
        return {"poll": poll_id, "options": list(options)}

    def method_vote(self, ctx: ContractContext, poll_id: str, option: str) -> Dict[str, Any]:
        polls = ctx.storage.get("polls", {})
        if poll_id not in polls:
            raise ContractError(f"voting: no poll {poll_id!r}")
        poll = polls[poll_id]
        if not poll["open"]:
            raise ContractError(f"voting: poll {poll_id!r} is closed")
        if option not in poll["options"]:
            raise ContractError(f"voting: {option!r} is not an option of {poll_id!r}")
        if ctx.sender in poll["votes"]:
            raise ContractError(f"voting: {ctx.sender[:12]} already voted in {poll_id!r}")
        poll["votes"][ctx.sender] = option
        return {"poll": poll_id, "voter": ctx.sender, "option": option}

    def method_close(self, ctx: ContractContext, poll_id: str) -> Dict[str, Any]:
        polls = ctx.storage.get("polls", {})
        if poll_id not in polls:
            raise ContractError(f"voting: no poll {poll_id!r}")
        poll = polls[poll_id]
        if poll["creator"] != ctx.sender:
            raise ContractError("voting: only the creator may close a poll")
        poll["open"] = False
        tally: Dict[str, int] = {option: 0 for option in poll["options"]}
        for option in poll["votes"].values():
            tally[option] += 1
        return {"poll": poll_id, "tally": tally}
