"""On-chain audit of data-collection and processing activities.

§II-D of the paper: "A distributed ledger (Blockchain) can register any
party's data collection and processing activities in the metaverse.
Finally, the metaverse should guarantee no data monopoly from any
parties in the data collection practices."

:class:`DataCollectionAuditor` implements both halves:

* :meth:`register_activity` writes a RECORD transaction describing who
  collected what, from whom, for which purpose, and with which PET
  applied; the chain timestamps and Merkle-commits it.
* :meth:`activities` / :meth:`prove_activity` let auditors enumerate and
  cryptographically verify registrations.
* :meth:`monopoly_report` measures each party's share of collection
  activity and flags shares above a configurable threshold — the "no
  data monopoly" guarantee made checkable.
"""

from __future__ import annotations

from collections import Counter as CollectionsCounter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import LedgerError
from repro.ledger.chain import Blockchain
from repro.ledger.transactions import SignedTransaction, TxKind
from repro.ledger.wallet import Wallet

__all__ = ["ActivityRecord", "MonopolyReport", "DataCollectionAuditor"]


@dataclass(frozen=True)
class ActivityRecord:
    """One registered data-collection activity, as read back from chain."""

    tx_id: str
    block_height: int
    timestamp: float
    party: str
    subject: str
    category: str
    purpose: str
    pet_applied: str


@dataclass(frozen=True)
class MonopolyReport:
    """Concentration analysis of collection activity."""

    shares: Dict[str, float]
    herfindahl_index: float
    dominant_party: Optional[str]
    dominant_share: float
    threshold: float

    @property
    def monopoly_detected(self) -> bool:
        return self.dominant_share > self.threshold


class DataCollectionAuditor:
    """Registers and audits data-collection activities on a chain."""

    def __init__(self, chain: Blockchain):
        self._chain = chain
        # Per-party next-nonce cache so bulk registration is O(n), not
        # O(n^2) (scanning the mempool per record).
        self._nonce_cache: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_activity(
        self,
        wallet: Wallet,
        subject: str,
        category: str,
        purpose: str,
        pet_applied: str = "none",
        fee: int = 0,
    ) -> SignedTransaction:
        """Build, sign, and submit a RECORD transaction to the mempool.

        The caller (or a consensus driver) must still produce a block for
        the record to become final.
        """
        nonce = self._next_nonce(wallet.address)
        stx = wallet.record(
            nonce=nonce,
            fee=fee,
            record_payload={
                "activity": "data_collection",
                "subject": subject,
                "category": category,
                "purpose": purpose,
                "pet_applied": pet_applied,
            },
        )
        if not self._chain.mempool.submit(stx, state=self._chain.state):
            self._nonce_cache[wallet.address] = nonce  # roll back
            raise LedgerError(
                f"audit record from {wallet.address[:12]} rejected by mempool"
            )
        return stx

    def _next_nonce(self, address: str) -> int:
        """Next usable nonce, cached per party for O(1) bulk registration."""
        base = self._chain.state.nonce_of(address)
        nonce = max(base, self._nonce_cache.get(address, 0))
        self._nonce_cache[address] = nonce + 1
        return nonce

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def activities(
        self,
        party: Optional[str] = None,
        subject: Optional[str] = None,
        category: Optional[str] = None,
    ) -> List[ActivityRecord]:
        """All finalized activities matching the filters, chain order."""
        out: List[ActivityRecord] = []
        for block, stx in self._chain.iter_transactions():
            if stx.tx.kind != TxKind.RECORD:
                continue
            payload = stx.tx.payload
            if payload.get("activity") != "data_collection":
                continue
            record = ActivityRecord(
                tx_id=stx.tx_id,
                block_height=block.height,
                timestamp=block.timestamp,
                party=stx.tx.sender,
                subject=payload.get("subject", ""),
                category=payload.get("category", ""),
                purpose=payload.get("purpose", ""),
                pet_applied=payload.get("pet_applied", "none"),
            )
            if party is not None and record.party != party:
                continue
            if subject is not None and record.subject != subject:
                continue
            if category is not None and record.category != category:
                continue
            out.append(record)
        return out

    def prove_activity(self, tx_id: str) -> bool:
        """Cryptographically verify a registration: the transaction's
        signature must hold and its Merkle proof must bind it to its
        block header on the canonical chain."""
        located = self._chain.find_transaction(tx_id)
        if located is None:
            return False
        block, stx = located
        if not stx.verify():
            return False
        proof = block.inclusion_proof(tx_id)
        return proof.verify(bytes.fromhex(tx_id), bytes.fromhex(block.merkle_root))

    # ------------------------------------------------------------------
    # Monopoly analysis
    # ------------------------------------------------------------------
    def monopoly_report(self, threshold: float = 0.5) -> MonopolyReport:
        """Share of collection activity per party, plus the
        Herfindahl–Hirschman concentration index (sum of squared
        shares; 1.0 = single collector, →0 = perfectly dispersed)."""
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        counts = CollectionsCounter(record.party for record in self.activities())
        total = sum(counts.values())
        if total == 0:
            return MonopolyReport(
                shares={},
                herfindahl_index=0.0,
                dominant_party=None,
                dominant_share=0.0,
                threshold=threshold,
            )
        shares = {party: count / total for party, count in counts.items()}
        hhi = sum(share ** 2 for share in shares.values())
        dominant_party = max(shares, key=lambda p: (shares[p], p))
        return MonopolyReport(
            shares=shares,
            herfindahl_index=hhi,
            dominant_party=dominant_party,
            dominant_share=shares[dominant_party],
            threshold=threshold,
        )
