"""Consensus strategies: who may propose each block.

The paper treats the blockchain as a trust substrate without prescribing
a consensus algorithm, so the ledger supports the two schemes actually
used by the platforms it cites (Decentraland-style chains run on
proof-of-stake networks; permissioned pilots use proof-of-authority):

* :class:`PoAConsensus` — a fixed validator set takes deterministic
  round-robin turns.
* :class:`PoSConsensus` — the proposer is drawn stake-weighted from the
  bonded accounts, using a hash of ``(prev_hash, height)`` as the
  deterministic lottery ticket, so every node agrees on the winner
  without communication.

Both implement the same two-method protocol consumed by
:class:`~repro.ledger.chain.Blockchain`.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

from repro.errors import InvalidBlockError
from repro.ledger.block import Block
from repro.ledger.crypto import sha256
from repro.ledger.state import LedgerState

__all__ = ["ConsensusStrategy", "PoAConsensus", "PoSConsensus"]


class ConsensusStrategy(Protocol):
    """Protocol every consensus scheme implements."""

    def expected_proposer(
        self, height: int, prev_hash: str, state: LedgerState
    ) -> Optional[str]:
        """Who must propose the block at ``height`` on top of
        ``prev_hash`` (None if anyone may)."""

    def validate(self, block: Block, state: LedgerState) -> None:
        """Raise :class:`InvalidBlockError` if ``block`` violates the
        scheme's proposer rule."""


class PoAConsensus:
    """Proof-of-authority: a fixed, ordered validator set rotates.

    The proposer for height ``h`` is ``validators[h % len(validators)]``,
    which gives liveness (every slot has exactly one eligible proposer)
    and trivial auditability.
    """

    def __init__(self, validators: Sequence[str]):
        if not validators:
            raise ValueError("PoA requires at least one validator")
        if len(set(validators)) != len(validators):
            raise ValueError("validator addresses must be unique")
        self._validators: List[str] = list(validators)

    @property
    def validators(self) -> List[str]:
        return list(self._validators)

    def expected_proposer(
        self, height: int, prev_hash: str, state: LedgerState
    ) -> Optional[str]:
        return self._validators[height % len(self._validators)]

    def validate(self, block: Block, state: LedgerState) -> None:
        expected = self.expected_proposer(block.height, block.prev_hash, state)
        if block.proposer != expected:
            raise InvalidBlockError(
                f"PoA: block {block.height} proposed by "
                f"{block.proposer[:12]}, expected {expected[:12]}"
            )


class PoSConsensus:
    """Proof-of-stake: stake-weighted deterministic proposer lottery.

    The lottery ticket is ``sha256(prev_hash || height)`` reduced modulo
    total stake; accounts are laid out on the stake line in sorted
    address order, and the ticket picks the account whose interval it
    lands in.  Determinism means every honest node computes the same
    proposer; stake-weighting means proposal frequency is proportional
    to bonded stake (verified statistically in the test suite).

    ``min_stake`` excludes dust accounts from eligibility.
    """

    def __init__(self, min_stake: int = 1):
        if min_stake < 1:
            raise ValueError(f"min_stake must be >= 1, got {min_stake}")
        self._min_stake = min_stake

    def eligible(self, state: LedgerState) -> List[str]:
        """Eligible validator addresses, in deterministic sorted order."""
        return sorted(
            addr for addr, stake in state.stakes.items() if stake >= self._min_stake
        )

    def expected_proposer(
        self, height: int, prev_hash: str, state: LedgerState
    ) -> Optional[str]:
        eligible = self.eligible(state)
        if not eligible:
            return None
        total = sum(state.stakes[addr] for addr in eligible)
        seed = sha256(bytes.fromhex(prev_hash) + height.to_bytes(8, "big"))
        ticket = int.from_bytes(seed[:8], "big") % total
        cursor = 0
        for addr in eligible:
            cursor += state.stakes[addr]
            if ticket < cursor:
                return addr
        return eligible[-1]  # pragma: no cover - unreachable by construction

    def validate(self, block: Block, state: LedgerState) -> None:
        expected = self.expected_proposer(block.height, block.prev_hash, state)
        if expected is None:
            raise InvalidBlockError(
                f"PoS: no eligible validators for block {block.height}"
            )
        if block.proposer != expected:
            raise InvalidBlockError(
                f"PoS: block {block.height} proposed by "
                f"{block.proposer[:12]}, expected {expected[:12]}"
            )
