"""Canonical byte encoding for hashable ledger structures.

Hashing a transaction or block requires a byte representation that every
node computes identically.  ``canonical_encode`` serialises a restricted
JSON-like value space (``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, ``list``/``tuple``, ``dict`` with string keys) into an
unambiguous, sorted, length-prefixed byte string.

The encoding is injective on its domain: distinct values never encode to
the same bytes, because every atom carries a type tag and a length
prefix, and containers encode their size.
"""

from __future__ import annotations

from typing import Any

__all__ = ["canonical_encode", "EncodingError"]


class EncodingError(TypeError):
    """Raised when a value is outside the canonical-encodable domain."""


def _frame(tag: bytes, body: bytes) -> bytes:
    return tag + len(body).to_bytes(8, "big") + body


def canonical_encode(value: Any) -> bytes:
    """Encode ``value`` into canonical bytes.

    Raises
    ------
    EncodingError
        For unsupported types (including dicts with non-string keys).
    """
    if value is None:
        return _frame(b"N", b"")
    # bool must be checked before int: bool is an int subclass.
    if isinstance(value, bool):
        return _frame(b"B", b"\x01" if value else b"\x00")
    if isinstance(value, int):
        text = str(value).encode("ascii")
        return _frame(b"I", text)
    if isinstance(value, float):
        # repr round-trips floats exactly in Python 3.
        return _frame(b"F", repr(value).encode("ascii"))
    if isinstance(value, str):
        return _frame(b"S", value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return _frame(b"Y", bytes(value))
    if isinstance(value, (list, tuple)):
        body = b"".join(canonical_encode(item) for item in value)
        return _frame(b"L", len(value).to_bytes(8, "big") + body)
    if isinstance(value, dict):
        items = []
        for key in sorted(value):
            if not isinstance(key, str):
                raise EncodingError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            items.append(canonical_encode(key) + canonical_encode(value[key]))
        return _frame(b"D", len(value).to_bytes(8, "big") + b"".join(items))
    raise EncodingError(f"cannot canonically encode {type(value).__name__}")
