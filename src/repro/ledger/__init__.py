"""Blockchain substrate: the trust and audit layer of the metaverse.

Implements, from scratch on ``hashlib`` alone: Lamport/Merkle hash-based
signatures, Merkle trees with inclusion proofs, canonically-hashed
transactions and blocks, an account state machine, a fee-prioritised
mempool, PoA and PoS consensus, a deterministic smart-contract VM with
built-in token/registry/escrow/voting contracts, a fork-choosing chain,
and the data-collection auditor the paper calls for in §II-D.
"""

from repro.ledger.audit import ActivityRecord, DataCollectionAuditor, MonopolyReport
from repro.ledger.block import Block, build_block
from repro.ledger.chain import Blockchain
from repro.ledger.consensus import PoAConsensus, PoSConsensus
from repro.ledger.contracts import (
    ContractContext,
    ContractRegistry,
    EscrowContract,
    RegistryContract,
    SmartContract,
    TokenContract,
    VotingContract,
)
from repro.ledger.crypto import (
    LamportKeyPair,
    LamportSignature,
    generate_lamport_keypair,
    lamport_sign,
    lamport_verify,
    sha256,
)
from repro.ledger.encoding import EncodingError, canonical_encode
from repro.ledger.mempool import Mempool
from repro.ledger.merkle import EMPTY_ROOT, MerkleProof, MerkleTree
from repro.ledger.state import LedgerState
from repro.ledger.transactions import SignedTransaction, Transaction, TxKind
from repro.ledger.wallet import Wallet

__all__ = [
    "ActivityRecord",
    "DataCollectionAuditor",
    "MonopolyReport",
    "Block",
    "build_block",
    "Blockchain",
    "PoAConsensus",
    "PoSConsensus",
    "ContractContext",
    "ContractRegistry",
    "EscrowContract",
    "RegistryContract",
    "SmartContract",
    "TokenContract",
    "VotingContract",
    "LamportKeyPair",
    "LamportSignature",
    "generate_lamport_keypair",
    "lamport_sign",
    "lamport_verify",
    "sha256",
    "EncodingError",
    "canonical_encode",
    "Mempool",
    "EMPTY_ROOT",
    "MerkleProof",
    "MerkleTree",
    "LedgerState",
    "SignedTransaction",
    "Transaction",
    "TxKind",
    "Wallet",
]
