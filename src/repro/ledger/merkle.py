"""Merkle trees with inclusion proofs.

Used in three places: block headers commit to their transaction list,
wallets commit to their one-time public keys (Merkle signature scheme),
and the audit registry proves that a recorded data-collection event is
included in the chain without revealing siblings' payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.ledger.crypto import sha256

__all__ = ["MerkleTree", "MerkleProof", "EMPTY_ROOT"]

# Root of a tree over zero leaves; a fixed domain-separated constant.
EMPTY_ROOT = sha256(b"repro:merkle:empty")

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return sha256(_LEAF_PREFIX + data)


def _hash_node(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: the leaf index and the sibling path bottom-up.

    Each path element is ``(sibling_hash, sibling_is_right)``.
    """

    leaf_index: int
    path: Tuple[Tuple[bytes, bool], ...]

    def compute_root(self, leaf_data: bytes) -> bytes:
        """Fold the path over the leaf to recover the implied root."""
        node = _hash_leaf(leaf_data)
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                node = _hash_node(node, sibling)
            else:
                node = _hash_node(sibling, node)
        return node

    def verify(self, leaf_data: bytes, root: bytes) -> bool:
        """True if ``leaf_data`` is proven to be under ``root``."""
        return self.compute_root(leaf_data) == root


class MerkleTree:
    """Binary Merkle tree over a fixed sequence of byte-string leaves.

    Odd levels duplicate their last node (Bitcoin-style padding).  Leaf
    and interior hashes are domain-separated to rule out second-preimage
    tricks that splice interior nodes in as leaves.

    Examples
    --------
    >>> tree = MerkleTree([b"a", b"b", b"c"])
    >>> proof = tree.proof(2)
    >>> proof.verify(b"c", tree.root)
    True
    >>> proof.verify(b"x", tree.root)
    False
    """

    def __init__(self, leaves: Sequence[bytes]):
        self._leaves: List[bytes] = [bytes(leaf) for leaf in leaves]
        self._levels: List[List[bytes]] = self._build()

    def _build(self) -> List[List[bytes]]:
        if not self._leaves:
            return [[EMPTY_ROOT]]
        level = [_hash_leaf(leaf) for leaf in self._leaves]
        levels = [level]
        while len(level) > 1:
            if len(level) % 2 == 1:
                level = level + [level[-1]]
                levels[-1] = level
            nxt = [
                _hash_node(level[i], level[i + 1])
                for i in range(0, len(level), 2)
            ]
            levels.append(nxt)
            level = nxt
        return levels

    @property
    def root(self) -> bytes:
        """The Merkle root (constant ``EMPTY_ROOT`` for an empty tree)."""
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._leaves)

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``.

        Raises
        ------
        IndexError
            If ``index`` is out of range (including any index on an
            empty tree).
        """
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range 0..{len(self._leaves) - 1}")
        path: List[Tuple[bytes, bool]] = []
        position = index
        for level in self._levels[:-1]:
            if position % 2 == 0:
                sibling_index = position + 1
                sibling_is_right = True
            else:
                sibling_index = position - 1
                sibling_is_right = False
            # levels were padded during build, so the sibling always exists
            path.append((level[sibling_index], sibling_is_right))
            position //= 2
        return MerkleProof(leaf_index=index, path=tuple(path))

    def __len__(self) -> int:
        return len(self._leaves)
