"""Mempool: pending transactions awaiting inclusion in a block.

Orders candidates by fee (highest first) while respecting per-sender
nonce order, rejects duplicates and obviously-invalid transactions at
admission, and evicts the lowest-fee entries when full.

Two persistent fee-ordered structures keep the hot paths sub-linear,
both built on the same lazy-deletion idiom (stale heap entries are
skipped on pop instead of being searched out on removal):

* a global **min**-heap over ``(fee, tx_id)`` serves eviction — finding
  the cheapest resident is O(log n) amortised instead of a full scan
  per admission; and
* a global **max**-heap over ``(sender max fee, sender)`` plus a
  per-sender nonce-chain index serves selection — block assembly pulls
  the best executable transaction in O(log n) per pick instead of
  rescanning every sender per pick (O(senders x picks)).

A sender's heap key is the *maximum* resident fee of that sender, which
upper-bounds the fee of whatever transaction of theirs is currently
executable; selection therefore never has to look at a sender whose
bound is below the best candidate already in hand, which is what makes
block assembly sub-linear in the number of senders.

Admissions, rejections, and evictions emit trace events through the
optional ``obs`` instrumentation (eviction events carry fee, age, and
sender — the paper's transparency requirement applied to mempool
pressure).  A transaction admitted without a timestamp has no age, so
its eviction event carries ``age=None`` rather than a misleading 0.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import InvalidTransactionError
from repro.ledger.state import LedgerState
from repro.ledger.transactions import SignedTransaction
from repro.obs.instrument import NULL_OBS, Instrumentation

__all__ = ["Mempool"]


def _fee_key(stx: SignedTransaction) -> Tuple[int, str]:
    """Total order used everywhere a "best" transaction is picked:
    highest fee first, ties broken by tx_id so every node agrees."""
    return (stx.tx.fee, stx.tx_id)


class _SenderChain:
    """One sender's resident transactions, indexed by nonce.

    ``by_nonce`` buckets replacements (same sender, same nonce,
    different tx_id) together; selection considers only the best-fee
    member of the bucket at the executable nonce.  ``max_fee`` is served
    from a lazy max-heap over the chain's residents and is the sender's
    key in the pool-wide selection heap.
    """

    __slots__ = ("txs", "by_nonce", "_fee_heap")

    def __init__(self) -> None:
        self.txs: Dict[str, SignedTransaction] = {}
        self.by_nonce: Dict[int, List[SignedTransaction]] = {}
        # Max-heap of (-fee, tx_id); stale entries skipped on peek.
        self._fee_heap: List[Tuple[int, str]] = []

    def __len__(self) -> int:
        return len(self.txs)

    def add(self, stx: SignedTransaction) -> None:
        self.txs[stx.tx_id] = stx
        self.by_nonce.setdefault(stx.tx.nonce, []).append(stx)
        heapq.heappush(self._fee_heap, (-stx.tx.fee, stx.tx_id))

    def remove(self, tx_id: str) -> SignedTransaction:
        stx = self.txs.pop(tx_id)
        bucket = self.by_nonce[stx.tx.nonce]
        if len(bucket) == 1:
            del self.by_nonce[stx.tx.nonce]
        else:
            bucket[:] = [s for s in bucket if s.tx_id != tx_id]
        return stx

    def max_fee(self) -> int:
        """Highest resident fee (the chain must be non-empty)."""
        heap = self._fee_heap
        while heap:
            neg_fee, tx_id = heap[0]
            if tx_id in self.txs:
                return -neg_fee
            heapq.heappop(heap)  # stale: pruned/evicted earlier
        raise KeyError("max_fee() on an empty sender chain")

    def best_at(self, nonce: int) -> Optional[SignedTransaction]:
        """Best-fee resident at exactly ``nonce`` (None if no bucket)."""
        bucket = self.by_nonce.get(nonce)
        if not bucket:
            return None
        return max(bucket, key=_fee_key)


class Mempool:
    """Fee-prioritised, nonce-ordered transaction pool.

    Parameters
    ----------
    capacity:
        Maximum resident transactions; admission beyond this evicts the
        cheapest entry (or rejects the newcomer if it is the cheapest).
    obs:
        Optional observability instrumentation; when omitted the pool
        stays dark (null instrumentation).
    """

    def __init__(self, capacity: int = 10_000, obs: Optional[Instrumentation] = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._by_id: Dict[str, SignedTransaction] = {}
        self._chains: Dict[str, _SenderChain] = {}
        # Min-heap of (fee, tx_id) over all residents; entries whose
        # tx_id is no longer resident are stale and skipped on pop
        # (lazy deletion).  Serves eviction.
        self._fee_heap: List[Tuple[int, str]] = []
        # Max-heap of (-max resident fee, sender); an entry is live
        # while its fee still equals the sender's current max_fee().
        # Serves selection: the top is an upper bound on the best
        # executable fee of any sender not yet considered.
        self._head_heap: List[Tuple[int, str]] = []
        self._admitted_at: Dict[str, float] = {}
        self._obs = obs if obs is not None else NULL_OBS
        self.rejected_count = 0
        self.evicted_count = 0

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._by_id

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self,
        stx: SignedTransaction,
        state: Optional[LedgerState] = None,
        time: Optional[float] = None,
    ) -> bool:
        """Admit ``stx`` if valid and not a duplicate.

        If ``state`` is provided, stale nonces (already consumed on
        chain) are rejected at admission.  ``time`` (simulated) stamps
        the admission for eviction-age accounting and trace events.
        Returns True on admission.
        """
        if stx.tx_id in self._by_id:
            return self._reject(stx, "duplicate", time)
        if not stx.verify():
            return self._reject(stx, "bad-signature", time)
        if state is not None and stx.tx.nonce < state.nonce_of(stx.tx.sender):
            return self._reject(stx, "stale-nonce", time)
        if len(self._by_id) >= self._capacity and not self._evict_for(stx, time):
            return self._reject(stx, "full-pool-fee-too-low", time)
        sender = stx.tx.sender
        self._by_id[stx.tx_id] = stx
        chain = self._chains.get(sender)
        if chain is None:
            chain = self._chains[sender] = _SenderChain()
        chain.add(stx)
        heapq.heappush(self._fee_heap, (stx.tx.fee, stx.tx_id))
        heapq.heappush(self._head_heap, (-chain.max_fee(), sender))
        if time is not None:
            self._admitted_at[stx.tx_id] = float(time)
        self._obs.counter("ledger.mempool.admitted").inc()
        self._obs.event(
            "ledger.mempool",
            "tx.admitted",
            time=time,
            tx_id=stx.tx_id,
            sender=sender,
            fee=stx.tx.fee,
        )
        return True

    def _reject(
        self, stx: SignedTransaction, reason: str, time: Optional[float]
    ) -> bool:
        self.rejected_count += 1
        self._obs.counter("ledger.mempool.rejected").inc()
        self._obs.event(
            "ledger.mempool",
            "tx.rejected",
            time=time,
            tx_id=stx.tx_id,
            sender=stx.tx.sender,
            fee=stx.tx.fee,
            reason=reason,
        )
        return False

    def _cheapest_resident(self) -> Optional[SignedTransaction]:
        """Lowest-(fee, tx_id) resident via the heap (lazy deletion)."""
        while self._fee_heap:
            fee, tx_id = self._fee_heap[0]
            resident = self._by_id.get(tx_id)
            if resident is not None and resident.tx.fee == fee:
                return resident
            heapq.heappop(self._fee_heap)  # stale: evicted/pruned earlier
        return None

    def _evict_for(
        self, newcomer: SignedTransaction, time: Optional[float] = None
    ) -> bool:
        """Evict the cheapest resident if the newcomer pays more."""
        cheapest = self._cheapest_resident()
        if cheapest is None or cheapest.tx.fee >= newcomer.tx.fee:
            return False
        admitted_at = self._admitted_at.get(cheapest.tx_id)
        # A resident admitted without a timestamp has no age; emitting 0
        # would claim it was evicted the instant it arrived.
        age = (
            float(time) - admitted_at
            if time is not None and admitted_at is not None
            else None
        )
        self._remove(cheapest.tx_id)
        self.evicted_count += 1
        self._obs.counter("ledger.mempool.evicted").inc()
        self._obs.event(
            "ledger.mempool",
            "tx.evicted",
            time=time,
            tx_id=cheapest.tx_id,
            sender=cheapest.tx.sender,
            fee=cheapest.tx.fee,
            age=age,
            displaced_by=newcomer.tx_id,
        )
        return True

    def _remove(self, tx_id: str) -> None:
        stx = self._by_id.pop(tx_id)
        self._admitted_at.pop(tx_id, None)
        sender = stx.tx.sender
        chain = self._chains.get(sender)
        if chain is None:
            return
        chain.remove(tx_id)
        if not chain.txs:
            del self._chains[sender]
        else:
            # Re-key the sender in the selection heap; the old entry
            # goes stale and is skipped lazily.
            heapq.heappush(self._head_heap, (-chain.max_fee(), sender))

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(self, state: LedgerState, max_count: int = 100) -> List[SignedTransaction]:
        """Pick up to ``max_count`` executable transactions.

        Greedy by ``(fee, tx_id)``, but a sender's transactions are only
        eligible in nonce order starting from the sender's current
        on-chain nonce, so the returned list always applies cleanly in
        order.  Replacements (same sender and nonce) are resolved in
        favour of the highest-fee resident.

        Implementation: senders are drawn from the persistent max-fee
        head heap; a sender is only materialised into the candidate heap
        when its fee upper bound beats the best candidate in hand, so a
        block of K picks costs O((K + drawn) log n) rather than
        O(senders x picks).  The pool is not mutated — drawn senders are
        restored to the head heap before returning.
        """
        if max_count <= 0:
            return []
        head_heap = self._head_heap
        chains = self._chains
        # Senders drawn out of the persistent heap this call (restored
        # on exit); their executable candidate lives in ``candidates``.
        drawn: Set[str] = set()
        # Next executable nonce per sender, as adjusted by this call's
        # own picks (the pool itself is left untouched).
        session_nonce: Dict[str, int] = {}
        candidates: List[Tuple[int, str, SignedTransaction]] = []
        selected: List[SignedTransaction] = []

        def draw_best_sender() -> Optional[int]:
            """Peek the best live sender bound; None when exhausted."""
            while head_heap:
                neg_fee, sender = head_heap[0]
                chain = chains.get(sender)
                if (
                    chain is None
                    or sender in drawn
                    or chain.max_fee() != -neg_fee
                ):
                    heapq.heappop(head_heap)  # stale or already drawn
                    continue
                return -neg_fee
            return None

        try:
            while len(selected) < max_count:
                # Materialise senders until every unseen sender's fee
                # bound is at or below the best candidate in hand.  A
                # bound equal to the candidate fee must still be drawn:
                # the tx_id tie-break may favour the unseen sender.
                while True:
                    bound = draw_best_sender()
                    if bound is None or (candidates and bound < -candidates[0][0]):
                        break
                    _, sender = heapq.heappop(head_heap)
                    drawn.add(sender)
                    chain = chains[sender]
                    nonce = state.nonce_of(sender)
                    session_nonce[sender] = nonce
                    head = chain.best_at(nonce)
                    if head is not None:
                        heapq.heappush(
                            candidates, (-head.tx.fee, _desc_id(head.tx_id), head)
                        )
                if not candidates:
                    break
                _, _, best = heapq.heappop(candidates)
                selected.append(best)
                sender = best.tx.sender
                nxt = best.tx.nonce + 1
                session_nonce[sender] = nxt
                successor = chains[sender].best_at(nxt)
                if successor is not None:
                    heapq.heappush(
                        candidates,
                        (-successor.tx.fee, _desc_id(successor.tx_id), successor),
                    )
        finally:
            # Restore every drawn sender's live entry; stale duplicates
            # left behind are cleaned up lazily on later pops.
            for sender in drawn:
                chain = chains.get(sender)
                if chain is not None and chain.txs:
                    heapq.heappush(head_heap, (-chain.max_fee(), sender))
        return selected

    def prune_included(self, included_ids: List[str]) -> int:
        """Drop transactions that made it into a block; returns count.

        Batched: each sender's chain is re-keyed in the selection heap
        once, so pruning a whole block is O(pruned log pool) rather than
        O(block x pool).
        """
        targets = {tx_id for tx_id in included_ids if tx_id in self._by_id}
        if not targets:
            return 0
        touched_senders = set()
        for tx_id in targets:
            stx = self._by_id.pop(tx_id)
            self._admitted_at.pop(tx_id, None)
            sender = stx.tx.sender
            touched_senders.add(sender)
            self._chains[sender].remove(tx_id)
        for sender in touched_senders:
            chain = self._chains[sender]
            if chain.txs:
                heapq.heappush(self._head_heap, (-chain.max_fee(), sender))
            else:
                del self._chains[sender]
        return len(targets)

    def pending(self) -> List[SignedTransaction]:
        """All resident transactions (no particular order)."""
        return list(self._by_id.values())


def _desc_id(tx_id: str) -> str:
    """Invert a hex tx_id's sort order.

    Candidate heaps are min-heaps keyed ``(-fee, _desc_id(tx_id))``, so
    popping yields the highest fee with ties broken by *highest* tx_id —
    the same total order the greedy reference uses.
    """
    return "".join("%x" % (15 - int(ch, 16)) for ch in tx_id)
