"""Mempool: pending transactions awaiting inclusion in a block.

Orders candidates by fee (highest first) while respecting per-sender
nonce order, rejects duplicates and obviously-invalid transactions at
admission, and evicts the lowest-fee entries when full.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import InvalidTransactionError
from repro.ledger.state import LedgerState
from repro.ledger.transactions import SignedTransaction

__all__ = ["Mempool"]


class Mempool:
    """Fee-prioritised, nonce-ordered transaction pool.

    Parameters
    ----------
    capacity:
        Maximum resident transactions; admission beyond this evicts the
        cheapest entry (or rejects the newcomer if it is the cheapest).
    """

    def __init__(self, capacity: int = 10_000):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._by_id: Dict[str, SignedTransaction] = {}
        self._by_sender: Dict[str, List[SignedTransaction]] = {}
        self.rejected_count = 0
        self.evicted_count = 0

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._by_id

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, stx: SignedTransaction, state: Optional[LedgerState] = None) -> bool:
        """Admit ``stx`` if valid and not a duplicate.

        If ``state`` is provided, stale nonces (already consumed on
        chain) are rejected at admission.  Returns True on admission.
        """
        if stx.tx_id in self._by_id:
            self.rejected_count += 1
            return False
        if not stx.verify():
            self.rejected_count += 1
            return False
        if state is not None and stx.tx.nonce < state.nonce_of(stx.tx.sender):
            self.rejected_count += 1
            return False
        if len(self._by_id) >= self._capacity and not self._evict_for(stx):
            self.rejected_count += 1
            return False
        self._by_id[stx.tx_id] = stx
        self._by_sender.setdefault(stx.tx.sender, []).append(stx)
        self._by_sender[stx.tx.sender].sort(key=lambda s: s.tx.nonce)
        return True

    def _evict_for(self, newcomer: SignedTransaction) -> bool:
        """Evict the cheapest resident if the newcomer pays more."""
        cheapest = min(self._by_id.values(), key=lambda s: (s.tx.fee, s.tx_id))
        if cheapest.tx.fee >= newcomer.tx.fee:
            return False
        self._remove(cheapest.tx_id)
        self.evicted_count += 1
        return True

    def _remove(self, tx_id: str) -> None:
        stx = self._by_id.pop(tx_id)
        sender_list = self._by_sender.get(stx.tx.sender, [])
        self._by_sender[stx.tx.sender] = [s for s in sender_list if s.tx_id != tx_id]
        if not self._by_sender[stx.tx.sender]:
            del self._by_sender[stx.tx.sender]

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(self, state: LedgerState, max_count: int = 100) -> List[SignedTransaction]:
        """Pick up to ``max_count`` executable transactions.

        Greedy by fee, but a sender's transactions are only eligible in
        nonce order starting from the sender's current on-chain nonce,
        so the returned list always applies cleanly in order.
        """
        if max_count <= 0:
            return []
        next_nonce: Dict[str, int] = {}
        pointer: Dict[str, int] = {}
        for sender in self._by_sender:
            next_nonce[sender] = state.nonce_of(sender)
            pointer[sender] = 0
        selected: List[SignedTransaction] = []
        while len(selected) < max_count:
            best: Optional[SignedTransaction] = None
            for sender, queue in self._by_sender.items():
                idx = pointer[sender]
                # advance past stale nonces
                while idx < len(queue) and queue[idx].tx.nonce < next_nonce[sender]:
                    idx += 1
                pointer[sender] = idx
                if idx >= len(queue):
                    continue
                candidate = queue[idx]
                if candidate.tx.nonce != next_nonce[sender]:
                    continue  # gap: later nonces are not yet executable
                if best is None or (candidate.tx.fee, candidate.tx_id) > (
                    best.tx.fee,
                    best.tx_id,
                ):
                    best = candidate
            if best is None:
                break
            selected.append(best)
            next_nonce[best.tx.sender] += 1
            pointer[best.tx.sender] += 1
        return selected

    def prune_included(self, included_ids: List[str]) -> int:
        """Drop transactions that made it into a block; returns count.

        Batched: senders' queues are filtered once, so pruning a whole
        block is O(pool size) rather than O(block x pool).
        """
        targets = {tx_id for tx_id in included_ids if tx_id in self._by_id}
        if not targets:
            return 0
        touched_senders = set()
        for tx_id in targets:
            stx = self._by_id.pop(tx_id)
            touched_senders.add(stx.tx.sender)
        for sender in touched_senders:
            remaining = [
                s for s in self._by_sender.get(sender, []) if s.tx_id not in targets
            ]
            if remaining:
                self._by_sender[sender] = remaining
            else:
                self._by_sender.pop(sender, None)
        return len(targets)

    def pending(self) -> List[SignedTransaction]:
        """All resident transactions (no particular order)."""
        return list(self._by_id.values())
