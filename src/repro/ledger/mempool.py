"""Mempool: pending transactions awaiting inclusion in a block.

Orders candidates by fee (highest first) while respecting per-sender
nonce order, rejects duplicates and obviously-invalid transactions at
admission, and evicts the lowest-fee entries when full.

Eviction runs off a fee-ordered min-heap with lazy deletion, so finding
the cheapest resident is O(log n) amortised instead of a full scan per
admission.  Admissions, rejections, and evictions emit trace events
through the optional ``obs`` instrumentation (eviction events carry fee,
age, and sender — the paper's transparency requirement applied to
mempool pressure).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidTransactionError
from repro.ledger.state import LedgerState
from repro.ledger.transactions import SignedTransaction
from repro.obs.instrument import NULL_OBS, Instrumentation

__all__ = ["Mempool"]


class Mempool:
    """Fee-prioritised, nonce-ordered transaction pool.

    Parameters
    ----------
    capacity:
        Maximum resident transactions; admission beyond this evicts the
        cheapest entry (or rejects the newcomer if it is the cheapest).
    obs:
        Optional observability instrumentation; when omitted the pool
        stays dark (null instrumentation).
    """

    def __init__(self, capacity: int = 10_000, obs: Optional[Instrumentation] = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._by_id: Dict[str, SignedTransaction] = {}
        self._by_sender: Dict[str, List[SignedTransaction]] = {}
        # Min-heap of (fee, tx_id); entries whose tx_id is no longer
        # resident are stale and skipped on pop (lazy deletion).
        self._fee_heap: List[Tuple[int, str]] = []
        self._admitted_at: Dict[str, float] = {}
        self._obs = obs if obs is not None else NULL_OBS
        self.rejected_count = 0
        self.evicted_count = 0

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._by_id

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(
        self,
        stx: SignedTransaction,
        state: Optional[LedgerState] = None,
        time: Optional[float] = None,
    ) -> bool:
        """Admit ``stx`` if valid and not a duplicate.

        If ``state`` is provided, stale nonces (already consumed on
        chain) are rejected at admission.  ``time`` (simulated) stamps
        the admission for eviction-age accounting and trace events.
        Returns True on admission.
        """
        if stx.tx_id in self._by_id:
            return self._reject(stx, "duplicate", time)
        if not stx.verify():
            return self._reject(stx, "bad-signature", time)
        if state is not None and stx.tx.nonce < state.nonce_of(stx.tx.sender):
            return self._reject(stx, "stale-nonce", time)
        if len(self._by_id) >= self._capacity and not self._evict_for(stx, time):
            return self._reject(stx, "full-pool-fee-too-low", time)
        self._by_id[stx.tx_id] = stx
        self._by_sender.setdefault(stx.tx.sender, []).append(stx)
        self._by_sender[stx.tx.sender].sort(key=lambda s: s.tx.nonce)
        heapq.heappush(self._fee_heap, (stx.tx.fee, stx.tx_id))
        if time is not None:
            self._admitted_at[stx.tx_id] = float(time)
        self._obs.counter("ledger.mempool.admitted").inc()
        self._obs.event(
            "ledger.mempool",
            "tx.admitted",
            time=time,
            tx_id=stx.tx_id,
            sender=stx.tx.sender,
            fee=stx.tx.fee,
        )
        return True

    def _reject(
        self, stx: SignedTransaction, reason: str, time: Optional[float]
    ) -> bool:
        self.rejected_count += 1
        self._obs.counter("ledger.mempool.rejected").inc()
        self._obs.event(
            "ledger.mempool",
            "tx.rejected",
            time=time,
            tx_id=stx.tx_id,
            sender=stx.tx.sender,
            fee=stx.tx.fee,
            reason=reason,
        )
        return False

    def _cheapest_resident(self) -> Optional[SignedTransaction]:
        """Lowest-(fee, tx_id) resident via the heap (lazy deletion)."""
        while self._fee_heap:
            fee, tx_id = self._fee_heap[0]
            resident = self._by_id.get(tx_id)
            if resident is not None and resident.tx.fee == fee:
                return resident
            heapq.heappop(self._fee_heap)  # stale: evicted/pruned earlier
        return None

    def _evict_for(
        self, newcomer: SignedTransaction, time: Optional[float] = None
    ) -> bool:
        """Evict the cheapest resident if the newcomer pays more."""
        cheapest = self._cheapest_resident()
        if cheapest is None or cheapest.tx.fee >= newcomer.tx.fee:
            return False
        admitted_at = self._admitted_at.get(cheapest.tx_id)
        age = (
            float(time) - admitted_at
            if time is not None and admitted_at is not None
            else None
        )
        self._remove(cheapest.tx_id)
        self.evicted_count += 1
        self._obs.counter("ledger.mempool.evicted").inc()
        self._obs.event(
            "ledger.mempool",
            "tx.evicted",
            time=time,
            tx_id=cheapest.tx_id,
            sender=cheapest.tx.sender,
            fee=cheapest.tx.fee,
            age=age,
            displaced_by=newcomer.tx_id,
        )
        return True

    def _remove(self, tx_id: str) -> None:
        stx = self._by_id.pop(tx_id)
        self._admitted_at.pop(tx_id, None)
        sender_list = self._by_sender.get(stx.tx.sender, [])
        self._by_sender[stx.tx.sender] = [s for s in sender_list if s.tx_id != tx_id]
        if not self._by_sender[stx.tx.sender]:
            del self._by_sender[stx.tx.sender]

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(self, state: LedgerState, max_count: int = 100) -> List[SignedTransaction]:
        """Pick up to ``max_count`` executable transactions.

        Greedy by fee, but a sender's transactions are only eligible in
        nonce order starting from the sender's current on-chain nonce,
        so the returned list always applies cleanly in order.
        """
        if max_count <= 0:
            return []
        next_nonce: Dict[str, int] = {}
        pointer: Dict[str, int] = {}
        for sender in self._by_sender:
            next_nonce[sender] = state.nonce_of(sender)
            pointer[sender] = 0
        selected: List[SignedTransaction] = []
        while len(selected) < max_count:
            best: Optional[SignedTransaction] = None
            for sender, queue in self._by_sender.items():
                idx = pointer[sender]
                # advance past stale nonces
                while idx < len(queue) and queue[idx].tx.nonce < next_nonce[sender]:
                    idx += 1
                pointer[sender] = idx
                if idx >= len(queue):
                    continue
                candidate = queue[idx]
                if candidate.tx.nonce != next_nonce[sender]:
                    continue  # gap: later nonces are not yet executable
                if best is None or (candidate.tx.fee, candidate.tx_id) > (
                    best.tx.fee,
                    best.tx_id,
                ):
                    best = candidate
            if best is None:
                break
            selected.append(best)
            next_nonce[best.tx.sender] += 1
            pointer[best.tx.sender] += 1
        return selected

    def prune_included(self, included_ids: List[str]) -> int:
        """Drop transactions that made it into a block; returns count.

        Batched: senders' queues are filtered once, so pruning a whole
        block is O(pool size) rather than O(block x pool).
        """
        targets = {tx_id for tx_id in included_ids if tx_id in self._by_id}
        if not targets:
            return 0
        touched_senders = set()
        for tx_id in targets:
            stx = self._by_id.pop(tx_id)
            self._admitted_at.pop(tx_id, None)
            touched_senders.add(stx.tx.sender)
        for sender in touched_senders:
            remaining = [
                s for s in self._by_sender.get(sender, []) if s.tx_id not in targets
            ]
            if remaining:
                self._by_sender[sender] = remaining
            else:
                self._by_sender.pop(sender, None)
        return len(targets)

    def pending(self) -> List[SignedTransaction]:
        """All resident transactions (no particular order)."""
        return list(self._by_id.values())
