"""Transactions: the unit of state change on the ledger.

A transaction is an immutable, canonically-hashable record.  Besides
plain value transfers, the kind taxonomy covers everything the paper
asks the chain to carry:

* ``TRANSFER`` — token movement between accounts,
* ``RECORD`` — a registered data-collection/processing activity (§II-D),
* ``CONTRACT`` — a smart-contract call (DAO votes, escrow, registries),
* ``MINT`` — NFT creation (§IV-A),
* ``STAKE`` / ``UNSTAKE`` — proof-of-stake bonding.

Signatures are detached: :class:`SignedTransaction` binds a
:class:`Transaction` to the Lamport signature and the Merkle
authentication path that proves the one-time key belongs to the sender's
address (see ``repro.ledger.wallet``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, Optional, Tuple

from repro.errors import InvalidTransactionError
from repro.ledger.crypto import LamportSignature, lamport_verify, sha256
from repro.ledger.encoding import canonical_encode
from repro.ledger.merkle import MerkleProof

__all__ = ["TxKind", "Transaction", "SignedTransaction"]


class TxKind(str, enum.Enum):
    """Taxonomy of ledger operations."""

    TRANSFER = "transfer"
    RECORD = "record"
    CONTRACT = "contract"
    MINT = "mint"
    STAKE = "stake"
    UNSTAKE = "unstake"


@dataclass(frozen=True)
class Transaction:
    """An unsigned transaction.

    Attributes
    ----------
    sender:
        Hex address of the signing account.
    recipient:
        Hex address of the receiving account or contract ("" for pure
        record transactions).
    amount:
        Value moved, in base units (non-negative integer).
    fee:
        Fee paid to the block proposer (non-negative integer).
    nonce:
        Per-sender sequence number; the state machine requires nonces to
        be consumed in order, which blocks replay.
    kind:
        One of :class:`TxKind`.
    payload:
        Kind-specific canonical-encodable data (e.g. contract method and
        arguments, or the data-collection record being registered).
    """

    sender: str
    recipient: str
    amount: int
    fee: int
    nonce: int
    kind: TxKind
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise InvalidTransactionError(f"amount must be >= 0, got {self.amount}")
        if self.fee < 0:
            raise InvalidTransactionError(f"fee must be >= 0, got {self.fee}")
        if self.nonce < 0:
            raise InvalidTransactionError(f"nonce must be >= 0, got {self.nonce}")
        if not self.sender:
            raise InvalidTransactionError("sender must be non-empty")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict form (used for hashing and serialisation)."""
        return {
            "sender": self.sender,
            "recipient": self.recipient,
            "amount": self.amount,
            "fee": self.fee,
            "nonce": self.nonce,
            "kind": self.kind.value,
            "payload": self.payload,
        }

    # Cached: a transaction is immutable once constructed (the payload
    # dict is treated as frozen by convention), yet its id is re-derived
    # at mempool admission, block building, pruning, and auditing.
    @cached_property
    def tx_id(self) -> str:
        """Hex transaction hash over the canonical encoding."""
        return sha256(self.signing_bytes).hex()

    @cached_property
    def signing_bytes(self) -> bytes:
        """The exact bytes a wallet signs."""
        return canonical_encode(self.to_dict())


@dataclass(frozen=True)
class SignedTransaction:
    """A transaction plus the proof that the sender authorised it.

    ``key_proof`` is the Merkle inclusion proof tying the one-time public
    key (``signature.public_digest``) to the sender address, which is the
    root of the sender wallet's key tree.
    """

    tx: Transaction
    signature: LamportSignature
    key_proof: MerkleProof

    @property
    def tx_id(self) -> str:
        return self.tx.tx_id

    def verify(self) -> bool:
        """Full authorisation check (result cached per instance).

        1. The Lamport signature must verify over the signing bytes.
        2. The one-time public key must be proven (via ``key_proof``) to
           be a leaf of the Merkle tree whose root is the sender address.

        A transaction travels through mempool admission, speculative
        execution, block application, and structural validation; the
        inputs are immutable, so one Lamport verification suffices.
        """
        cached = self.__dict__.get("_verify_ok")
        if cached is None:
            cached = self._verify_uncached()
            # Frozen dataclass: write through __dict__, not __setattr__.
            self.__dict__["_verify_ok"] = cached
        return cached

    def _verify_uncached(self) -> bool:
        if not lamport_verify(self.signature, self.tx.signing_bytes):
            return False
        try:
            sender_root = bytes.fromhex(self.tx.sender)
        except ValueError:
            return False
        return self.key_proof.verify(self.signature.public_digest, sender_root)

    def require_valid(self) -> None:
        """Raise :class:`InvalidTransactionError` unless :meth:`verify`."""
        if not self.verify():
            raise InvalidTransactionError(
                f"signature verification failed for tx {self.tx_id[:12]}"
            )
