"""The blockchain: block storage, validation, fork choice, and queries.

``Blockchain`` keeps every received block in a block-tree, applies each
block's transactions to a copy of its parent's state, and selects the
canonical head by *longest chain* (tie broken by lowest block hash so
every node agrees).  Because states are kept per block, reorgs are
instant — the head pointer just moves.

The chain is the audit substrate of the reproduction: the paper's §II-D
asks that "a distributed ledger can register any party's data collection
and processing activities"; :meth:`find_transaction` plus
:meth:`Block.inclusion_proof` give auditors exact, cryptographic answers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ContractError, InvalidBlockError, InvalidTransactionError
from repro.ledger.block import Block, build_block
from repro.ledger.consensus import ConsensusStrategy
from repro.ledger.contracts import ContractRegistry
from repro.ledger.mempool import Mempool
from repro.ledger.state import LedgerState
from repro.ledger.transactions import SignedTransaction
from repro.obs.instrument import NULL_OBS, Instrumentation

__all__ = ["Blockchain"]

GENESIS_PREV_HASH = "00" * 32


class Blockchain:
    """A single logical chain (all simulated nodes share one instance;
    network partitions are modelled by feeding conflicting blocks).

    Parameters
    ----------
    consensus:
        Proposer-eligibility strategy (PoA or PoS).
    genesis_balances:
        Initial token allocation.
    genesis_state:
        Pre-built genesis :class:`LedgerState` — e.g.
        :meth:`LedgerState.from_columns` over an ``AgentTable`` so a
        million-agent genesis never builds a dict.  Mutually exclusive
        with ``genesis_balances``.
    contracts:
        Registry executing CONTRACT/MINT transactions; a fresh empty
        registry is created if omitted.
    """

    def __init__(
        self,
        consensus: ConsensusStrategy,
        genesis_balances: Optional[Dict[str, int]] = None,
        contracts: Optional[ContractRegistry] = None,
        obs: Optional[Instrumentation] = None,
        genesis_state: Optional[LedgerState] = None,
    ):
        self.consensus = consensus
        self.contracts = contracts if contracts is not None else ContractRegistry()
        if genesis_state is None:
            genesis_state = LedgerState(genesis_balances or {})
        elif genesis_balances is not None:
            raise ValueError("pass genesis_balances or genesis_state, not both")
        self._genesis = Block(
            height=0,
            prev_hash=GENESIS_PREV_HASH,
            merkle_root="",
            timestamp=0.0,
            proposer="genesis",
        )
        genesis_hash = self._genesis.block_hash
        self._blocks: Dict[str, Block] = {genesis_hash: self._genesis}
        self._states: Dict[str, LedgerState] = {genesis_hash: genesis_state}
        self._head_hash = genesis_hash
        self._obs = obs if obs is not None else NULL_OBS
        self.mempool = Mempool(obs=obs)
        self.rejected_blocks = 0
        self.reorg_count = 0
        # tx_id → (block_hash, position) along the *canonical* chain,
        # maintained on head moves: extensions append their block's
        # transactions, reorgs rebuild.  find_transaction and audit
        # queries are O(1) instead of a linear chain walk.
        self._tx_index: Dict[str, Tuple[str, int]] = {}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def genesis(self) -> Block:
        return self._genesis

    @property
    def head(self) -> Block:
        """The canonical tip."""
        return self._blocks[self._head_hash]

    @property
    def height(self) -> int:
        return self.head.height

    @property
    def state(self) -> LedgerState:
        """State after applying the canonical chain (do not mutate)."""
        return self._states[self._head_hash]

    def block_by_hash(self, block_hash: str) -> Optional[Block]:
        return self._blocks.get(block_hash)

    def state_at(self, block_hash: str) -> Optional[LedgerState]:
        return self._states.get(block_hash)

    def main_chain(self) -> List[Block]:
        """Genesis→head block list along the canonical chain."""
        chain: List[Block] = []
        cursor: Optional[Block] = self.head
        while cursor is not None:
            chain.append(cursor)
            if cursor.height == 0:
                break
            cursor = self._blocks.get(cursor.prev_hash)
        chain.reverse()
        return chain

    def iter_transactions(self) -> Iterator[Tuple[Block, SignedTransaction]]:
        """Yield ``(block, signed_tx)`` along the canonical chain."""
        for block in self.main_chain():
            for stx in block.transactions:
                yield block, stx

    def find_transaction(self, tx_id: str) -> Optional[Tuple[Block, SignedTransaction]]:
        """Locate a transaction on the canonical chain (O(1): indexed)."""
        location = self._tx_index.get(tx_id)
        if location is None:
            return None
        block_hash, position = location
        block = self._blocks[block_hash]
        return block, block.transactions[position]

    def transaction_location(self, tx_id: str) -> Optional[Tuple[int, int]]:
        """``(block_height, index_in_block)`` of a canonical-chain
        transaction, or None — the audit-trail lookup, O(1)."""
        location = self._tx_index.get(tx_id)
        if location is None:
            return None
        block_hash, position = location
        return self._blocks[block_hash].height, position

    # ------------------------------------------------------------------
    # Block production
    # ------------------------------------------------------------------
    def propose_block(
        self,
        proposer: str,
        timestamp: float,
        transactions: Optional[Sequence[SignedTransaction]] = None,
        max_txs: int = 100,
    ) -> Block:
        """Assemble, validate, and append the next canonical block.

        If ``transactions`` is omitted, the block is filled from the
        mempool.  Raises :class:`InvalidBlockError` if ``proposer`` is
        not the consensus-expected proposer for the next height.
        """
        parent = self.head
        with self._obs.span(
            "ledger.chain",
            "block.produce",
            time=timestamp,
            height=parent.height + 1,
            proposer=proposer,
        ) as span:
            if transactions is None:
                # Pre-execute candidates speculatively so one reverting
                # contract call cannot poison every subsequent proposal.
                candidates = self.mempool.select(self.state, max_count=max_txs)
                # Copy-on-write overlay: speculation only pays for the keys
                # the candidate transactions actually touch.
                speculative = self.state.child()
                executable = []
                for stx in candidates:
                    try:
                        speculative.apply(stx, contract_executor=self.contracts)
                    except (InvalidTransactionError, ContractError):
                        self.mempool.prune_included([stx.tx_id])
                        self._obs.event(
                            "ledger.chain",
                            "tx.dropped_speculation",
                            time=timestamp,
                            tx_id=stx.tx_id,
                        )
                    else:
                        executable.append(stx)
                transactions = executable
            block = build_block(
                height=parent.height + 1,
                prev_hash=parent.block_hash,
                timestamp=timestamp,
                proposer=proposer,
                transactions=transactions,
            )
            span.set_attribute("n_txs", len(block.transactions))
            span.set_attribute("block_hash", block.block_hash)
            self.add_block(block)
            self._obs.counter("ledger.blocks_produced").inc()
            self._obs.histogram("ledger.block_txs").observe(
                float(len(block.transactions))
            )
        return block

    def add_block(self, block: Block) -> None:
        """Validate ``block`` against its parent and store it.

        Validation: structure (Merkle root, signatures, duplicates),
        parent linkage, height, monotonic timestamp, consensus proposer
        rule, and clean application of every transaction to the parent
        state.  Accepting a block may move the head (fork choice).
        """
        if block.block_hash in self._blocks:
            raise InvalidBlockError(f"block {block.block_hash[:12]} already known")
        parent = self._blocks.get(block.prev_hash)
        if parent is None:
            self.rejected_blocks += 1
            raise InvalidBlockError(
                f"block {block.block_hash[:12]}: unknown parent "
                f"{block.prev_hash[:12]}"
            )
        if block.height != parent.height + 1:
            self.rejected_blocks += 1
            raise InvalidBlockError(
                f"block {block.block_hash[:12]}: height {block.height} does not "
                f"extend parent height {parent.height}"
            )
        if block.timestamp < parent.timestamp:
            self.rejected_blocks += 1
            raise InvalidBlockError(
                f"block {block.block_hash[:12]}: timestamp {block.timestamp} "
                f"before parent {parent.timestamp}"
            )
        try:
            block.validate_structure()
        except InvalidBlockError:
            self.rejected_blocks += 1
            raise

        parent_state = self._states[block.prev_hash]
        self.consensus.validate(block, parent_state)

        # Copy-on-write snapshot over the (frozen) parent block state:
        # appending a block is O(keys touched), not O(total accounts).
        new_state = parent_state.child()
        try:
            for stx in block.transactions:
                new_state.apply(stx, contract_executor=self.contracts)
        except (InvalidTransactionError, ContractError) as exc:
            self.rejected_blocks += 1
            raise InvalidBlockError(
                f"block {block.block_hash[:12]}: transaction failed ({exc})"
            ) from exc
        new_state.credit_fees(block.proposer, block.total_fees)

        self._blocks[block.block_hash] = block
        self._states[block.block_hash] = new_state
        self._update_head(block)
        self.mempool.prune_included(block.tx_ids)
        self._obs.event(
            "ledger.chain",
            "block.accepted",
            time=block.timestamp,
            height=block.height,
            block_hash=block.block_hash,
            n_txs=len(block.transactions),
            canonical=self._head_hash == block.block_hash,
        )

    def _update_head(self, candidate: Block) -> None:
        head = self.head
        # Longest chain wins; equal heights break ties by *lowest* hash so
        # every node converges on the same head deterministically.
        better_height = candidate.height > head.height
        same_height_lower_hash = (
            candidate.height == head.height
            and candidate.block_hash < head.block_hash
        )
        if better_height or same_height_lower_hash:
            extends_head = candidate.prev_hash == head.block_hash
            if not extends_head:
                self.reorg_count += 1
                self._obs.counter("ledger.reorgs").inc()
                self._obs.event(
                    "ledger.chain",
                    "head.reorg",
                    time=candidate.timestamp,
                    new_height=candidate.height,
                    new_head=candidate.block_hash,
                    old_head=head.block_hash,
                )
            self._head_hash = candidate.block_hash
            if extends_head:
                for position, stx in enumerate(candidate.transactions):
                    self._tx_index[stx.tx_id] = (candidate.block_hash, position)
            else:
                self._rebuild_tx_index()

    def _rebuild_tx_index(self) -> None:
        """Re-index the canonical chain after a reorg (head moves to a
        block that does not extend the previous head)."""
        self._tx_index.clear()
        for block in self.main_chain():
            for position, stx in enumerate(block.transactions):
                self._tx_index[stx.tx_id] = (block.block_hash, position)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def verify_chain(self) -> bool:
        """Re-validate linkage and Merkle roots along the whole canonical
        chain (used by auditors and property tests)."""
        chain = self.main_chain()
        for prev, block in zip(chain, chain[1:]):
            if block.prev_hash != prev.block_hash:
                return False
            if block.compute_merkle_root() != block.merkle_root:
                return False
        return True
