"""Hash-based cryptography for the ledger substrate.

The reproduction environment has no third-party crypto libraries, so the
ledger uses a genuinely verifiable **Lamport one-time signature** scheme
built from SHA-256, extended to a multi-use **Merkle signature scheme**
(MSS): a wallet pre-generates ``2**height`` one-time key pairs, publishes
the Merkle root of their public keys as its address, and each signature
carries the Merkle authentication path proving the one-time key belongs
to the address.

This is real, self-contained public-key cryptography (Lamport 1979,
Merkle 1989) — not a mock: verification uses only public information.
Parameters are tunable; the default signs 128-bit message digests so that
simulations with thousands of transactions stay fast.  Security of the
toy parameters is irrelevant here — the *code path* (sign, verify,
reject-on-tamper) is what the reproduction exercises.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "sha256",
    "digest_bits",
    "LamportKeyPair",
    "LamportSignature",
    "generate_lamport_keypair",
    "lamport_sign",
    "lamport_verify",
]


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def digest_bits(message: bytes, bits: int) -> List[int]:
    """Hash ``message`` and return its first ``bits`` bits as a 0/1 list."""
    if bits <= 0 or bits > 256:
        raise ValueError(f"bits must be in (0, 256], got {bits}")
    digest = sha256(message)
    out: List[int] = []
    for i in range(bits):
        byte = digest[i // 8]
        out.append((byte >> (7 - (i % 8))) & 1)
    return out


@dataclass(frozen=True)
class LamportKeyPair:
    """One Lamport one-time key pair.

    ``private`` holds ``bits`` pairs of secret preimages; ``public`` holds
    their hashes in the same layout.  ``public_digest`` is the single
    hash that commits to the whole public key (used as a Merkle leaf).
    """

    bits: int
    private: Tuple[Tuple[bytes, bytes], ...]
    public: Tuple[Tuple[bytes, bytes], ...]

    @property
    def public_digest(self) -> bytes:
        parts = b"".join(h0 + h1 for h0, h1 in self.public)
        return sha256(parts)


@dataclass(frozen=True)
class LamportSignature:
    """A Lamport signature: one revealed preimage per message bit, plus
    the full public key needed to verify it."""

    bits: int
    revealed: Tuple[bytes, ...]
    public: Tuple[Tuple[bytes, bytes], ...]

    @property
    def public_digest(self) -> bytes:
        parts = b"".join(h0 + h1 for h0, h1 in self.public)
        return sha256(parts)


def _prf(seed: bytes, index: int, which: int) -> bytes:
    """Deterministic pseudo-random secret derivation from a wallet seed."""
    return sha256(seed + index.to_bytes(4, "big") + bytes([which]))


def generate_lamport_keypair(seed: bytes, bits: int = 128) -> LamportKeyPair:
    """Deterministically generate a Lamport key pair from ``seed``.

    Deriving secrets from a seed keeps wallets reproducible from the
    scenario's root seed while remaining a faithful Lamport construction.
    """
    if not seed:
        raise ValueError("seed must be non-empty")
    private: List[Tuple[bytes, bytes]] = []
    public: List[Tuple[bytes, bytes]] = []
    for i in range(bits):
        s0 = _prf(seed, i, 0)
        s1 = _prf(seed, i, 1)
        private.append((s0, s1))
        public.append((sha256(s0), sha256(s1)))
    return LamportKeyPair(bits=bits, private=tuple(private), public=tuple(public))


def lamport_sign(keypair: LamportKeyPair, message: bytes) -> LamportSignature:
    """Sign ``message`` by revealing one preimage per digest bit."""
    bit_list = digest_bits(message, keypair.bits)
    revealed = tuple(keypair.private[i][bit] for i, bit in enumerate(bit_list))
    return LamportSignature(bits=keypair.bits, revealed=revealed, public=keypair.public)


def lamport_verify(signature: LamportSignature, message: bytes) -> bool:
    """Check each revealed preimage hashes to the committed public hash."""
    if len(signature.revealed) != signature.bits:
        return False
    if len(signature.public) != signature.bits:
        return False
    bit_list = digest_bits(message, signature.bits)
    for i, bit in enumerate(bit_list):
        if sha256(signature.revealed[i]) != signature.public[i][bit]:
            return False
    return True
