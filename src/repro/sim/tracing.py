"""Structured trace log.

The paper argues that "all the active parts of the metaverse (including
code) should be transparent and understandable to any platform member"
(§IV-C).  The trace log is the library's mechanism for that: every
substrate can append structured records, and auditors (see
``repro.core.audit``) can replay or query them.

Records are plain dicts with a mandatory ``(time, source, kind)`` triple;
payload keys are free-form.  The log preserves append order, which equals
simulated-time order because the engine is single-threaded.

Queries are index-accelerated: the log maintains a ``(source, kind)``
inverted index, so ``query(source=..., kind=...)`` touches only the
matching records and ``count`` with pure source/kind filters is O(1)
amortised — auditors polling every tick no longer make the run
quadratic.  Index maintenance under the capacity bound is lazy: evicted
records are dropped from the per-key deques the next time the key is
touched, keeping ``emit`` O(1).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

__all__ = ["TraceRecord", "TraceLog"]


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace entry."""

    time: float
    source: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def matches(
        self,
        source: Optional[str] = None,
        kind: Optional[str] = None,
        predicate: Optional[Callable[["TraceRecord"], bool]] = None,
    ) -> bool:
        """True if this record satisfies every provided filter."""
        if source is not None and self.source != source:
            return False
        if kind is not None and self.kind != kind:
            return False
        if predicate is not None and not predicate(self):
            return False
        return True


# Keep at most this many subscriber exceptions for post-mortems; beyond
# it only the error counter keeps growing.
_MAX_SUBSCRIBER_ERRORS = 100


class TraceLog:
    """Append-only structured log with indexed query helpers.

    Examples
    --------
    >>> log = TraceLog()
    >>> log.emit(1.0, "moderation", "report", user="u1")
    >>> [r.kind for r in log.query(source="moderation")]
    ['report']
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._records: List[TraceRecord] = []
        self._capacity = capacity
        self._dropped = 0
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        self._subscriber_errors: List[Tuple[str, Exception]] = []
        self.subscriber_error_count = 0
        # (source, kind) inverted index.  Each deque holds (seq, record)
        # in append order; seq is a dense global counter, so entries
        # evicted by the capacity bound are exactly those with
        # seq < _min_seq and can be pruned lazily from the left.
        self._by_pair: Dict[Tuple[str, str], Deque[Tuple[int, TraceRecord]]] = {}
        self._kinds_by_source: Dict[str, Set[str]] = {}
        self._sources_by_kind: Dict[str, Set[str]] = {}
        self._next_seq = 0
        self._min_seq = 0

    def emit(self, time: float, source: str, kind: str, **payload: Any) -> TraceRecord:
        """Append a record, index it, and notify subscribers.

        Subscriber exceptions are isolated per subscriber: one raising
        callback never prevents delivery to the rest or aborts the emit.
        Errors are collected (see :attr:`subscriber_errors`).
        """
        record = TraceRecord(time=float(time), source=source, kind=kind, payload=payload)
        self._records.append(record)
        key = (source, kind)
        bucket = self._by_pair.get(key)
        if bucket is None:
            bucket = self._by_pair[key] = deque()
            self._kinds_by_source.setdefault(source, set()).add(kind)
            self._sources_by_kind.setdefault(kind, set()).add(source)
        bucket.append((self._next_seq, record))
        self._next_seq += 1
        if self._capacity is not None and len(self._records) > self._capacity:
            overflow = len(self._records) - self._capacity
            del self._records[:overflow]
            self._dropped += overflow
            self._min_seq = self._next_seq - len(self._records)
        for subscriber in self._subscribers:
            try:
                subscriber(record)
            except Exception as exc:  # noqa: BLE001 - deliberate isolation
                self.subscriber_error_count += 1
                if len(self._subscriber_errors) < _MAX_SUBSCRIBER_ERRORS:
                    name = getattr(subscriber, "__qualname__", repr(subscriber))
                    self._subscriber_errors.append((name, exc))
        return record

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every future record."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceRecord], None]) -> bool:
        """Stop delivering to ``callback``; True if it was subscribed."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            return False
        return True

    @property
    def subscriber_errors(self) -> List[Tuple[str, Exception]]:
        """Collected ``(subscriber_name, exception)`` pairs (bounded)."""
        return list(self._subscriber_errors)

    # ------------------------------------------------------------------
    # Index internals
    # ------------------------------------------------------------------
    def _pruned(self, key: Tuple[str, str]) -> Deque[Tuple[int, TraceRecord]]:
        """The key's deque with capacity-evicted entries dropped."""
        bucket = self._by_pair.get(key)
        if bucket is None:
            return deque()
        while bucket and bucket[0][0] < self._min_seq:
            bucket.popleft()
        return bucket

    def _candidates(
        self, source: Optional[str], kind: Optional[str]
    ) -> Iterator[TraceRecord]:
        """Records matching the source/kind filters, in append order."""
        if source is not None and kind is not None:
            for _, record in tuple(self._pruned((source, kind))):
                yield record
            return
        if source is not None:
            kinds = sorted(self._kinds_by_source.get(source, ()))
            buckets = [tuple(self._pruned((source, k))) for k in kinds]
        else:
            assert kind is not None
            sources = sorted(self._sources_by_kind.get(kind, ()))
            buckets = [tuple(self._pruned((s, kind))) for s in sources]
        if len(buckets) == 1:
            for _, record in buckets[0]:
                yield record
            return
        for _, record in heapq.merge(*buckets, key=lambda e: e[0]):
            yield record

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        source: Optional[str] = None,
        kind: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> Iterator[TraceRecord]:
        """Yield records matching all the given filters, in append order.

        Source/kind filters resolve through the inverted index; time
        windows and predicates then filter only the indexed candidates.
        """
        if source is None and kind is None:
            candidates: Iterator[TraceRecord] = iter(self._records)
        else:
            candidates = self._candidates(source, kind)
        for record in candidates:
            if since is not None and record.time < since:
                continue
            if until is not None and record.time > until:
                continue
            if predicate is not None and not predicate(record):
                continue
            yield record

    def count(self, **filters: Any) -> int:
        """Number of records matching :meth:`query` filters.

        With pure source/kind filters (no time window or predicate) the
        count is read straight off the index — O(1) amortised per call.
        """
        if not any(
            filters.get(name) is not None for name in ("since", "until", "predicate")
        ):
            source = filters.get("source")
            kind = filters.get("kind")
            if source is not None and kind is not None:
                return len(self._pruned((source, kind)))
            if source is not None:
                return sum(
                    len(self._pruned((source, k)))
                    for k in self._kinds_by_source.get(source, ())
                )
            if kind is not None:
                return sum(
                    len(self._pruned((s, kind)))
                    for s in self._sources_by_kind.get(kind, ())
                )
            return len(self._records)
        return sum(1 for _ in self.query(**filters))

    @property
    def records(self) -> List[TraceRecord]:
        """All retained records (oldest first)."""
        return list(self._records)

    @property
    def dropped(self) -> int:
        """Records evicted due to the capacity bound."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)
