"""Structured trace log.

The paper argues that "all the active parts of the metaverse (including
code) should be transparent and understandable to any platform member"
(§IV-C).  The trace log is the library's mechanism for that: every
substrate can append structured records, and auditors (see
``repro.core.audit``) can replay or query them.

Records are plain dicts with a mandatory ``(time, source, kind)`` triple;
payload keys are free-form.  The log preserves append order, which equals
simulated-time order because the engine is single-threaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "TraceLog"]


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace entry."""

    time: float
    source: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def matches(
        self,
        source: Optional[str] = None,
        kind: Optional[str] = None,
        predicate: Optional[Callable[["TraceRecord"], bool]] = None,
    ) -> bool:
        """True if this record satisfies every provided filter."""
        if source is not None and self.source != source:
            return False
        if kind is not None and self.kind != kind:
            return False
        if predicate is not None and not predicate(self):
            return False
        return True


class TraceLog:
    """Append-only structured log with query helpers.

    Examples
    --------
    >>> log = TraceLog()
    >>> log.emit(1.0, "moderation", "report", user="u1")
    >>> [r.kind for r in log.query(source="moderation")]
    ['report']
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._records: List[TraceRecord] = []
        self._capacity = capacity
        self._dropped = 0
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    def emit(self, time: float, source: str, kind: str, **payload: Any) -> TraceRecord:
        """Append a record and notify subscribers."""
        record = TraceRecord(time=float(time), source=source, kind=kind, payload=payload)
        self._records.append(record)
        if self._capacity is not None and len(self._records) > self._capacity:
            overflow = len(self._records) - self._capacity
            del self._records[:overflow]
            self._dropped += overflow
        for subscriber in self._subscribers:
            subscriber(record)
        return record

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every future record."""
        self._subscribers.append(callback)

    def query(
        self,
        source: Optional[str] = None,
        kind: Optional[str] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> Iterator[TraceRecord]:
        """Yield records matching all the given filters, in append order."""
        for record in self._records:
            if since is not None and record.time < since:
                continue
            if until is not None and record.time > until:
                continue
            if record.matches(source=source, kind=kind, predicate=predicate):
                yield record

    def count(self, **filters: Any) -> int:
        """Number of records matching :meth:`query` filters."""
        return sum(1 for _ in self.query(**filters))

    @property
    def records(self) -> List[TraceRecord]:
        """All retained records (oldest first)."""
        return list(self._records)

    @property
    def dropped(self) -> int:
        """Records evicted due to the capacity bound."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)
