"""Deterministic discrete-event simulation engine.

The engine is the substrate every scenario runs on.  It provides:

* a simulated clock (no wall-clock time anywhere in the library),
* an event queue with deterministic FIFO tie-breaking at equal timestamps,
* recurring events, cancellation, and run-until / run-for execution, and
* lifecycle hooks so substrates (world, governance, ledger) can observe
  the passage of simulated time.

Determinism contract: given the same sequence of ``schedule`` calls, the
engine fires callbacks in exactly the same order on every run.  Equal-time
events fire in schedule order (a monotonically increasing sequence number
breaks ties), which is what makes scenario replays byte-identical.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.metrics import Histogram

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry; ordering is (time, seq) only."""

    time: float
    seq: int
    event: "Event" = field(compare=False)


@dataclass
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulated timestamp at which the callback fires.
    callback:
        Zero-argument callable invoked when the event fires.
    name:
        Optional label used in traces and error messages.
    interval:
        If set, the event reschedules itself every ``interval`` time units
        after firing, until cancelled.
    """

    time: float
    callback: Callable[[], Any]
    name: str = ""
    interval: Optional[float] = None
    cancelled: bool = False
    # Bookkeeping owned by the simulator: which engine the event belongs
    # to and whether a live heap entry currently points at it.
    _sim: Optional["Simulator"] = field(default=None, repr=False, compare=False)
    _in_queue: bool = field(default=False, repr=False, compare=False)

    def cancel(self) -> None:
        """Prevent this event (and, for recurring events, all future
        occurrences) from firing."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._on_cancel(self)


class Simulator:
    """Single-threaded deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run_until(10.0)
    >>> fired
    [5.0]
    """

    # Compact the heap when stale (cancelled) entries outnumber live
    # ones and there are enough of them to be worth the O(n) rebuild.
    _COMPACT_MIN_STALE = 64

    def __init__(self, start_time: float = 0.0, profile: bool = False):
        self._now = float(start_time)
        self._queue: List[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._fired_count = 0
        self._pending = 0  # queued entries whose event is not cancelled
        self._stale = 0  # queued entries whose event *is* cancelled
        self._tick_hooks: List[Callable[[float], None]] = []
        # Profiling: wall-clock per-callback-name histograms.  Kept in
        # engine-private storage (never the shared metrics registry or
        # the trace log) so seeded runs stay byte-identical regardless
        # of whether profiling is on.
        self._profile_enabled = bool(profile)
        self._profile: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def fired_count(self) -> int:
        """Number of events that have fired so far."""
        return self._fired_count

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued.

        O(1): the counter is maintained on schedule/fire/cancel, so
        tick hooks and traces can read it after every event for free.
        """
        return self._pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[[], Any],
        name: str = "",
        interval: Optional[float] = None,
    ) -> Event:
        """Schedule ``callback`` to fire at absolute simulated ``time``.

        Raises
        ------
        SimulationError
            If ``time`` is before the current clock, or ``interval`` is
            not strictly positive.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {name!r} at t={time} before now={self._now}"
            )
        if interval is not None and interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        event = Event(time=float(time), callback=callback, name=name, interval=interval)
        event._sim = self
        self._push(event)
        return event

    def _push(self, event: Event) -> None:
        heapq.heappush(self._queue, _QueueEntry(event.time, next(self._seq), event))
        event._in_queue = True
        self._pending += 1

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], Any],
        name: str = "",
        interval: Optional[float] = None,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, name=name, interval=interval)

    def every(self, interval: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Schedule a recurring event firing every ``interval`` units,
        starting one interval from now."""
        return self.schedule_in(interval, callback, name=name, interval=interval)

    def add_tick_hook(self, hook: Callable[[float], None]) -> None:
        """Register ``hook(now)`` to be called after every fired event."""
        self._tick_hooks.append(hook)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.  Returns False if the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            event = entry.event
            event._in_queue = False
            if event.cancelled:
                self._stale -= 1
                continue
            self._pending -= 1
            self._now = entry.time
            self._fire(event)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Fire every event with ``time <= end_time``; clock ends at
        ``end_time`` even if the queue drains early."""
        if end_time < self._now:
            raise SimulationError(
                f"run_until({end_time}) is before now={self._now}"
            )
        self._running = True
        try:
            while self._running and self._queue:
                entry = self._queue[0]
                if entry.time > end_time:
                    break
                heapq.heappop(self._queue)
                entry.event._in_queue = False
                if entry.event.cancelled:
                    self._stale -= 1
                    continue
                self._pending -= 1
                self._now = entry.time
                self._fire(entry.event)
            self._now = max(self._now, end_time)
        finally:
            self._running = False

    def run_for(self, duration: float) -> None:
        """Advance the clock by ``duration``, firing due events."""
        self.run_until(self._now + duration)

    def run_all(self, max_events: int = 1_000_000) -> None:
        """Drain the queue entirely (bounded by ``max_events`` as a
        runaway-loop backstop)."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"run_all exceeded max_events={max_events}; "
                    "likely a self-rescheduling loop"
                )

    def stop(self) -> None:
        """Stop a ``run_until`` loop after the current event completes."""
        self._running = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fire(self, event: Event) -> None:
        self._fired_count += 1
        if self._profile_enabled:
            t0 = perf_counter()
            event.callback()
            elapsed = perf_counter() - t0
            name = event.name or getattr(
                event.callback, "__qualname__", "<anonymous>"
            )
            hist = self._profile.get(name)
            if hist is None:
                hist = self._profile[name] = Histogram(name)
            hist.observe(elapsed)
        else:
            event.callback()
        if event.interval is not None and not event.cancelled:
            event.time = self._now + event.interval
            self._push(event)
        for hook in self._tick_hooks:
            hook(self._now)

    def _on_cancel(self, event: Event) -> None:
        """Counter upkeep when a queued event is cancelled.

        The heap entry stays behind (lazy deletion); once stale entries
        dominate the queue it is rebuilt so long-running scenarios with
        heavy cancellation churn do not leak queue memory.
        """
        if not event._in_queue:
            return  # cancelled mid-fire (e.g. a recurring event's own callback)
        self._pending -= 1
        self._stale += 1
        if self._stale >= self._COMPACT_MIN_STALE and self._stale * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (O(live entries))."""
        live = []
        for entry in self._queue:
            if entry.event.cancelled:
                entry.event._in_queue = False
            else:
                live.append(entry)
        self._queue = live
        heapq.heapify(self._queue)
        self._stale = 0

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    @property
    def profiling_enabled(self) -> bool:
        return self._profile_enabled

    def enable_profiling(self) -> None:
        """Start timing every event callback (wall clock) into
        per-callback-name histograms.  Timestamps in reports stay
        simulated; only durations are wall-measured."""
        self._profile_enabled = True

    def disable_profiling(self) -> None:
        self._profile_enabled = False

    def profile_histograms(self) -> Dict[str, Histogram]:
        """Per-callback-name wall-time histograms (live objects)."""
        return dict(self._profile)

    def hottest_handlers(self, top_n: int = 10) -> List[Dict[str, Any]]:
        """The top-N event handlers by total wall time spent.

        Each entry: ``name``, ``count``, ``total_seconds``,
        ``mean_seconds``, ``p95_seconds``, ``max_seconds``.  Ties break
        by name so the ordering is stable.
        """
        if top_n <= 0:
            return []
        rows = [
            {
                "name": name,
                "count": hist.count,
                "total_seconds": hist.total,
                "mean_seconds": hist.mean,
                "p95_seconds": hist.percentile(95),
                "max_seconds": hist.maximum,
            }
            for name, hist in self._profile.items()
        ]
        rows.sort(key=lambda r: (-r["total_seconds"], r["name"]))
        return rows[:top_n]

    def snapshot(self) -> Dict[str, Any]:
        """Return a summary of engine state (for traces and debugging)."""
        return {
            "now": self._now,
            "pending": self.pending_count,
            "fired": self._fired_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Simulator(now={self._now}, pending={self.pending_count})"
