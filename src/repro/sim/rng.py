"""Named deterministic random streams.

Every stochastic component in the library draws from a named stream owned
by an :class:`RngRegistry`.  Streams are derived from a single root seed
via ``numpy.random.SeedSequence.spawn``-style keyed derivation, so:

* the same ``(seed, stream_name)`` pair always yields the same sequence,
* adding a new stream never perturbs existing ones, and
* two components never share a generator by accident.

This is what makes whole scenarios reproducible from ``(seed, config)``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    The derivation hashes ``root_seed || name`` with SHA-256 so that
    stream seeds are uncorrelated even for adjacent root seeds, and are
    stable across platforms and Python hash randomisation.
    """
    payload = f"{root_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named, independent ``numpy.random.Generator`` streams.

    Parameters
    ----------
    seed:
        Root seed for the whole registry.  Two registries with the same
        seed produce identical streams for identical names.

    Examples
    --------
    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("misinfo")
    >>> b = RngRegistry(seed=7).stream("misinfo")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was constructed with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same registry returns the *same generator object* for the
        same name, so sequential draws advance a single stream.
        """
        if not name:
            raise ValueError("stream name must be non-empty")
        if name not in self._streams:
            child_seed = derive_seed(self._seed, name)
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` from its initial state.

        Unlike :meth:`stream`, this does not share state with previous
        callers; use it to replay a component's randomness in isolation.
        """
        return np.random.default_rng(derive_seed(self._seed, name))

    def spawn(self, name: str) -> "RngRegistry":
        """Create a child registry rooted under ``name``.

        Child registries give whole subsystems their own namespace so a
        subsystem can create internal streams without colliding with the
        parent's names.
        """
        return RngRegistry(derive_seed(self._seed, f"spawn:{name}"))

    def names(self) -> Iterator[str]:
        """Iterate over names of streams created so far (insertion order)."""
        return iter(tuple(self._streams))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngRegistry(seed={self._seed}, streams={len(self._streams)})"
