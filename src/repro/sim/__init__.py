"""Deterministic discrete-event simulation substrate.

Everything stochastic or time-dependent in the library runs on this
package: a simulated clock with FIFO-tie-breaking event queue
(:class:`Simulator`), named deterministic random streams
(:class:`RngRegistry`), metrics (:class:`MetricsRegistry`), and a
structured trace log (:class:`TraceLog`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SketchHistogram,
)
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.tracing import TraceLog, TraceRecord

__all__ = [
    "Event",
    "Simulator",
    "Counter",
    "Gauge",
    "Histogram",
    "SketchHistogram",
    "MetricsRegistry",
    "RngRegistry",
    "derive_seed",
    "TraceLog",
    "TraceRecord",
]
