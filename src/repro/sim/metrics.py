"""Lightweight metrics for simulations and benchmarks.

Counters, gauges, and streaming histograms, grouped in a registry that can
render a plain-text summary table.  The benchmark harness uses these to
print paper-style result rows; the framework uses them for transparency
reporting (every module's activity is observable, per the paper's
"all the active parts of the metaverse should be transparent").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "SketchHistogram",
    "MetricsRegistry",
]


def _percentile_of(ordered: List[float], q: float) -> float:
    """Linear-interpolated percentile over an already-sorted list."""
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount


@dataclass
class Gauge:
    """A value that can move up and down."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


@dataclass
class Histogram:
    """Streaming histogram keeping exact samples (simulations are small
    enough that reservoir sampling is unnecessary).

    Percentile queries share one sorted-samples cache, invalidated by
    ``observe``: a ``summary()`` sorts at most once, and repeated
    summaries between scrapes reuse the previous sort entirely.
    """

    name: str
    samples: List[float] = field(default_factory=list)
    # Sorted view of ``samples``; valid only while ``_cache_len`` still
    # equals ``len(samples)`` (guards direct appends to the public list).
    _sorted_cache: Optional[List[float]] = field(
        default=None, repr=False, compare=False
    )
    _cache_len: int = field(default=-1, repr=False, compare=False)

    def observe(self, value: float) -> None:
        self.samples.append(float(value))
        self._sorted_cache = None

    def observe_many(self, values: Iterable[float]) -> None:
        """Bulk observe: one extend instead of a call per sample."""
        if isinstance(values, np.ndarray):
            self.samples.extend(values.tolist())
        else:
            self.samples.extend(float(v) for v in values)
        self._sorted_cache = None

    def _sorted(self) -> List[float]:
        """The samples in ascending order, cached until the next observe."""
        if self._sorted_cache is None or self._cache_len != len(self.samples):
            self._sorted_cache = sorted(self.samples)
            self._cache_len = len(self.samples)
        return self._sorted_cache

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def minimum(self) -> float:
        if not self.samples:
            return 0.0
        ordered = self._sorted_cache
        if ordered is not None and self._cache_len == len(self.samples):
            return ordered[0]
        return min(self.samples)

    @property
    def maximum(self) -> float:
        if not self.samples:
            return 0.0
        ordered = self._sorted_cache
        if ordered is not None and self._cache_len == len(self.samples):
            return ordered[-1]
        return max(self.samples)

    @property
    def stddev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    def percentile(self, q: float) -> float:
        """Exact percentile by linear interpolation; ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.samples:
            return 0.0
        return _percentile_of(self._sorted(), q)

    def summary(self) -> Dict[str, float]:
        """Summary stats; the underlying samples are sorted at most once."""
        if not self.samples:
            return {
                "count": 0.0,
                "mean": 0.0,
                "min": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "max": 0.0,
            }
        ordered = self._sorted()
        return {
            "count": float(len(ordered)),
            # Insertion-order sum: summing the sorted list would round
            # differently and break byte-identical replay comparisons.
            "mean": sum(self.samples) / len(self.samples),
            "min": ordered[0],
            "p50": _percentile_of(ordered, 50),
            "p95": _percentile_of(ordered, 95),
            "max": ordered[-1],
        }


class SketchHistogram:
    """Bounded-memory quantile sketch, API-compatible with ``Histogram``.

    A merging sketch in the t-digest family: incoming values buffer in a
    small list and are periodically folded into a sorted run of
    ``(mean, weight)`` centroids, greedily merged under a per-centroid
    weight cap of ``count / compression``.  Memory is O(compression +
    buffer) *regardless of stream length* — the population-scale load
    workload streams millions of samples through these without growing.

    Accuracy contract (documented in EXPERIMENTS.md): ``count``,
    ``mean``, ``total``, ``minimum`` and ``maximum`` are **exact**;
    ``percentile(q)`` is approximate with rank error bounded by roughly
    ``1 / compression`` (≈0.5% at the default compression of 200, well
    inside the ±1% tolerance the scaling tests assert).  ``stddev`` is
    computed from exact running moments.

    The sketch is fully deterministic for a given observation order
    (plain float arithmetic, no randomisation), so registries backed by
    it still satisfy the byte-identical replay gate.
    """

    _BUFFER_LIMIT = 512

    def __init__(self, name: str, compression: int = 200):
        if compression < 20:
            raise ValueError(
                f"compression must be >= 20, got {compression}"
            )
        self.name = name
        self.compression = compression
        self._centroids: List[Tuple[float, float]] = []  # (mean, weight)
        self._buffer: List[float] = []
        self._count = 0
        self._total = 0.0
        self._sumsq = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self._buffer.append(value)
        self._count += 1
        self._total += value
        self._sumsq += value * value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._buffer) >= self._BUFFER_LIMIT:
            self._compress()

    def observe_many(self, values: Iterable[float]) -> None:
        """Bulk observe with C-speed aggregate arithmetic.

        Same exact-moment guarantees as repeated :meth:`observe`
        (count/total/min/max are computed over the identical values);
        the buffer is folded once after the extend, so compaction
        points — and therefore the approximate percentiles — can differ
        from one-at-a-time observation, but remain deterministic for a
        given batch sequence.  (Aggregate sums likewise use the batch's
        reduction order, which is deterministic for the same batches.)
        The windowed-telemetry flush path uses this to keep
        per-response ingest off the request path.
        """
        if isinstance(values, np.ndarray):
            if values.size == 0:
                return
            arr = values.astype(np.float64, copy=False)
            self._buffer.extend(arr.tolist())
            self._count += int(arr.size)
            self._total += float(arr.sum())
            self._sumsq += float(arr @ arr)
            low = float(arr.min())
            high = float(arr.max())
            if low < self._min:
                self._min = low
            if high > self._max:
                self._max = high
            if len(self._buffer) >= self._BUFFER_LIMIT:
                self._compress()
            return
        values = [float(v) for v in values]
        if not values:
            return
        self._buffer.extend(values)
        self._count += len(values)
        self._total += sum(values)
        self._sumsq += sum(v * v for v in values)
        low = min(values)
        high = max(values)
        if low < self._min:
            self._min = low
        if high > self._max:
            self._max = high
        if len(self._buffer) >= self._BUFFER_LIMIT:
            self._compress()

    def _compress(self) -> None:
        """Fold the buffer into the centroid run."""
        if not self._buffer:
            return
        incoming = [(value, 1.0) for value in sorted(self._buffer)]
        self._buffer.clear()
        merged = self._merge_sorted(self._centroids, incoming)
        cap = self._count / self.compression
        compacted: List[Tuple[float, float]] = []
        cur_mean, cur_weight = merged[0]
        for mean, weight in merged[1:]:
            if cur_weight + weight <= cap:
                cur_mean += (mean - cur_mean) * (weight / (cur_weight + weight))
                cur_weight += weight
            else:
                compacted.append((cur_mean, cur_weight))
                cur_mean, cur_weight = mean, weight
        compacted.append((cur_mean, cur_weight))
        self._centroids = compacted

    @staticmethod
    def _merge_sorted(
        a: List[Tuple[float, float]], b: List[Tuple[float, float]]
    ) -> List[Tuple[float, float]]:
        out: List[Tuple[float, float]] = []
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i][0] <= b[j][0]:
                out.append(a[i])
                i += 1
            else:
                out.append(b[j])
                j += 1
        out.extend(a[i:])
        out.extend(b[j:])
        return out

    @property
    def centroid_count(self) -> int:
        """Resident centroids (the O(1)-memory claim, testable)."""
        return len(self._centroids)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def total(self) -> float:
        return self._total

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    @property
    def stddev(self) -> float:
        n = self._count
        if n < 2:
            return 0.0
        mu = self._total / n
        var = (self._sumsq - n * mu * mu) / (n - 1)
        return math.sqrt(var) if var > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile; ``q`` in [0, 100].

        Centroid midpoints are treated as known quantile anchors and
        interpolated between; the extremes pin to the exact min/max.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._count:
            return 0.0
        self._compress()
        if q == 0:
            return self._min
        if q == 100:
            return self._max
        target = (q / 100.0) * self._count
        # Anchor ranks: min at 0, each centroid at its midpoint rank,
        # max at count.
        anchors: List[Tuple[float, float]] = [(0.0, self._min)]
        cumulative = 0.0
        for mean, weight in self._centroids:
            anchors.append((cumulative + weight / 2.0, mean))
            cumulative += weight
        anchors.append((float(self._count), self._max))
        for k in range(1, len(anchors)):
            rank_hi, value_hi = anchors[k]
            if target <= rank_hi:
                rank_lo, value_lo = anchors[k - 1]
                if rank_hi == rank_lo:
                    return value_hi
                frac = (target - rank_lo) / (rank_hi - rank_lo)
                return value_lo + (value_hi - value_lo) * frac
        return self._max

    def summary(self) -> Dict[str, float]:
        """Same keys as ``Histogram.summary`` (count/mean/min/p50/p95/max)."""
        if not self._count:
            return {
                "count": 0.0,
                "mean": 0.0,
                "min": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "max": 0.0,
            }
        return {
            "count": float(self._count),
            "mean": self._total / self._count,
            "min": self._min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self._max,
        }


#: Histogram backends selectable per registry (and, via
#: ``FrameworkConfig.histogram_backend``, per framework).
_HISTOGRAM_BACKENDS = ("exact", "sketch")


class MetricsRegistry:
    """Namespace of counters, gauges, and histograms.

    Metric names are hierarchical by convention (``"moderation.removed"``).
    Accessors create metrics on first use so instrumented code does not
    need registration boilerplate.

    ``histogram_backend`` selects how histograms store samples:
    ``"exact"`` (default) keeps every sample; ``"sketch"`` uses the
    bounded-memory :class:`SketchHistogram` for population-scale runs.
    """

    def __init__(self, histogram_backend: str = "exact") -> None:
        if histogram_backend not in _HISTOGRAM_BACKENDS:
            raise ValueError(
                f"histogram_backend must be one of {_HISTOGRAM_BACKENDS}, "
                f"got {histogram_backend!r}"
            )
        self.histogram_backend = histogram_backend
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str):
        if name not in self._histograms:
            if self.histogram_backend == "sketch":
                self._histograms[name] = SketchHistogram(name)
            else:
                self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def peek_histogram(self, name: str):
        """The named histogram, or None — without creating it (reporting
        code must not grow the registry it is summarising)."""
        return self._histograms.get(name)

    def counters(self) -> Mapping[str, float]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Mapping[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Mapping[str, Dict[str, float]]:
        return {name: h.summary() for name, h in sorted(self._histograms.items())}

    def as_dict(self) -> Dict[str, object]:
        """Flatten everything into one JSON-friendly dict."""
        return {
            "counters": dict(self.counters()),
            "gauges": dict(self.gauges()),
            "histograms": {k: dict(v) for k, v in self.histograms().items()},
        }

    def render(self) -> str:
        """Render a plain-text summary table (used by example scripts)."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters:")
            for name, value in self.counters().items():
                lines.append(f"  {name:<40s} {value:>12g}")
        if self._gauges:
            lines.append("gauges:")
            for name, value in self.gauges().items():
                lines.append(f"  {name:<40s} {value:>12g}")
        if self._histograms:
            lines.append("histograms:")
            for name, summ in self.histograms().items():
                rendered = ", ".join(f"{k}={v:g}" for k, v in summ.items())
                lines.append(f"  {name:<40s} {rendered}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop all metrics (used between benchmark repetitions)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
