"""Lightweight metrics for simulations and benchmarks.

Counters, gauges, and streaming histograms, grouped in a registry that can
render a plain-text summary table.  The benchmark harness uses these to
print paper-style result rows; the framework uses them for transparency
reporting (every module's activity is observable, per the paper's
"all the active parts of the metaverse should be transparent").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _percentile_of(ordered: List[float], q: float) -> float:
    """Linear-interpolated percentile over an already-sorted list."""
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount


@dataclass
class Gauge:
    """A value that can move up and down."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


@dataclass
class Histogram:
    """Streaming histogram keeping exact samples (simulations are small
    enough that reservoir sampling is unnecessary).

    Percentile queries share one sorted-samples cache, invalidated by
    ``observe``: a ``summary()`` sorts at most once, and repeated
    summaries between scrapes reuse the previous sort entirely.
    """

    name: str
    samples: List[float] = field(default_factory=list)
    # Sorted view of ``samples``; valid only while ``_cache_len`` still
    # equals ``len(samples)`` (guards direct appends to the public list).
    _sorted_cache: Optional[List[float]] = field(
        default=None, repr=False, compare=False
    )
    _cache_len: int = field(default=-1, repr=False, compare=False)

    def observe(self, value: float) -> None:
        self.samples.append(float(value))
        self._sorted_cache = None

    def _sorted(self) -> List[float]:
        """The samples in ascending order, cached until the next observe."""
        if self._sorted_cache is None or self._cache_len != len(self.samples):
            self._sorted_cache = sorted(self.samples)
            self._cache_len = len(self.samples)
        return self._sorted_cache

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def minimum(self) -> float:
        if not self.samples:
            return 0.0
        ordered = self._sorted_cache
        if ordered is not None and self._cache_len == len(self.samples):
            return ordered[0]
        return min(self.samples)

    @property
    def maximum(self) -> float:
        if not self.samples:
            return 0.0
        ordered = self._sorted_cache
        if ordered is not None and self._cache_len == len(self.samples):
            return ordered[-1]
        return max(self.samples)

    @property
    def stddev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    def percentile(self, q: float) -> float:
        """Exact percentile by linear interpolation; ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.samples:
            return 0.0
        return _percentile_of(self._sorted(), q)

    def summary(self) -> Dict[str, float]:
        """Summary stats; the underlying samples are sorted at most once."""
        if not self.samples:
            return {
                "count": 0.0,
                "mean": 0.0,
                "min": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "max": 0.0,
            }
        ordered = self._sorted()
        return {
            "count": float(len(ordered)),
            # Insertion-order sum: summing the sorted list would round
            # differently and break byte-identical replay comparisons.
            "mean": sum(self.samples) / len(self.samples),
            "min": ordered[0],
            "p50": _percentile_of(ordered, 50),
            "p95": _percentile_of(ordered, 95),
            "max": ordered[-1],
        }


class MetricsRegistry:
    """Namespace of counters, gauges, and histograms.

    Metric names are hierarchical by convention (``"moderation.removed"``).
    Accessors create metrics on first use so instrumented code does not
    need registration boilerplate.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def counters(self) -> Mapping[str, float]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Mapping[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Mapping[str, Dict[str, float]]:
        return {name: h.summary() for name, h in sorted(self._histograms.items())}

    def as_dict(self) -> Dict[str, object]:
        """Flatten everything into one JSON-friendly dict."""
        return {
            "counters": dict(self.counters()),
            "gauges": dict(self.gauges()),
            "histograms": {k: dict(v) for k, v in self.histograms().items()},
        }

    def render(self) -> str:
        """Render a plain-text summary table (used by example scripts)."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters:")
            for name, value in self.counters().items():
                lines.append(f"  {name:<40s} {value:>12g}")
        if self._gauges:
            lines.append("gauges:")
            for name, value in self.gauges().items():
                lines.append(f"  {name:<40s} {value:>12g}")
        if self._histograms:
            lines.append("histograms:")
            for name, summ in self.histograms().items():
                rendered = ", ".join(f"{k}={v:g}" for k, v in summ.items())
                lines.append(f"  {name:<40s} {rendered}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop all metrics (used between benchmark repetitions)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
