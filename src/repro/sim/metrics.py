"""Lightweight metrics for simulations and benchmarks.

Counters, gauges, and streaming histograms, grouped in a registry that can
render a plain-text summary table.  The benchmark harness uses these to
print paper-style result rows; the framework uses them for transparency
reporting (every module's activity is observable, per the paper's
"all the active parts of the metaverse should be transparent").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount


@dataclass
class Gauge:
    """A value that can move up and down."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


@dataclass
class Histogram:
    """Streaming histogram keeping exact samples (simulations are small
    enough that reservoir sampling is unnecessary)."""

    name: str
    samples: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def stddev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    def percentile(self, q: float) -> float:
        """Exact percentile by linear interpolation; ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        pos = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return ordered[lo]
        frac = pos - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.maximum,
        }


class MetricsRegistry:
    """Namespace of counters, gauges, and histograms.

    Metric names are hierarchical by convention (``"moderation.removed"``).
    Accessors create metrics on first use so instrumented code does not
    need registration boilerplate.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def counters(self) -> Mapping[str, float]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Mapping[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Mapping[str, Dict[str, float]]:
        return {name: h.summary() for name, h in sorted(self._histograms.items())}

    def as_dict(self) -> Dict[str, object]:
        """Flatten everything into one JSON-friendly dict."""
        return {
            "counters": dict(self.counters()),
            "gauges": dict(self.gauges()),
            "histograms": {k: dict(v) for k, v in self.histograms().items()},
        }

    def render(self) -> str:
        """Render a plain-text summary table (used by example scripts)."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters:")
            for name, value in self.counters().items():
                lines.append(f"  {name:<40s} {value:>12g}")
        if self._gauges:
            lines.append("gauges:")
            for name, value in self.gauges().items():
                lines.append(f"  {name:<40s} {value:>12g}")
        if self._histograms:
            lines.append("histograms:")
            for name, summ in self.histograms().items():
                rendered = ", ".join(f"{k}={v:g}" for k, v in summ.items())
                lines.append(f"  {name:<40s} {rendered}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop all metrics (used between benchmark repetitions)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
