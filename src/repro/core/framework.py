"""``MetaverseFramework``: the paper's modular architecture, assembled.

The facade builds every substrate from one :class:`FrameworkConfig`,
wires them the way Fig. 3 sketches (modules connected through an event
bus, decisions through DAOs, trust through the ledger and reputation),
and drives scenario epochs.  Each epoch runs the step sequence:

1. **behaviour** — avatars move and interact through the world's gates;
2. **moderation** — the configured pipeline processes the epoch;
3. **privacy** — a sample of users' sensors fire; frames pass the
   Fig.-2 pipeline; released collections are ledger-registered;
4. **economy** — creators mint/list, buyers purchase, scams get
   reported;
5. **decisions** — members read agendas and vote; due proposals close
   and approved changes execute;
6. **ledger** — the epoch's transactions are sealed into a block;
7. **upkeep** — incentives/reputation decay, module epoch hooks.

In ``modular`` mode the steps run through mounted, swappable,
self-describing modules; in ``monolithic`` mode the framework runs them
directly (same mechanics, none of the transparency/participation) —
the comparison that is experiment E9.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.config import FrameworkConfig
from repro.core.decisions import ChangeRequest, DecisionPipeline, DecisionRecord
from repro.core.ethics import EthicsScorecard, score_platform
from repro.core.events import EventBus
from repro.core.modules import FrameworkModule, ModuleRegistry, ModuleSlot
from repro.core.policy import PolicyEngine
from repro.core.stakeholders import (
    RepresentationRequirement,
    StakeholderRegistry,
    StakeholderRole,
)
from repro.dao import (
    DAO,
    Member,
    ModularDaoFederation,
    ParticipationModel,
    TurnoutQuorum,
)
from repro.errors import FrameworkError
from repro.governance import (
    AbuseClassifier,
    GraduatedSanctionPolicy,
    HumanModeratorPool,
    IncentiveSystem,
    ModerationService,
    RateLimitRule,
    ReportDesk,
    RuleEngine,
)
from repro.ledger import (
    Blockchain,
    ContractRegistry,
    DataCollectionAuditor,
    PoAConsensus,
    RegistryContract,
    VotingContract,
    Wallet,
)
from repro.nft import (
    CreateToEarnStudio,
    NFTCollection,
    NFTMarketplace,
    OpenMinting,
    ReputationVetted,
)
from repro.obs import (
    NULL_OBS,
    Instrumentation,
    export_trace_jsonl,
    hot_handlers_report,
    prometheus_text,
    transparency_report,
)
from repro.privacy import (
    ConsentRegistry,
    ErasureService,
    LaplaceMechanism,
    PrivacyBudget,
    PrivacyPipeline,
    RetainedDataStore,
    SensorRig,
    UserProfile,
    generate_population,
)
from repro.reputation import ReputationSystem
from repro.sim import MetricsRegistry, RngRegistry, Simulator, TraceLog
from repro.social import Archetype, BehaviorSimulator
from repro.world import World

__all__ = ["MetaverseFramework"]

_GOVERNANCE_TOPICS = ("privacy", "moderation", "economy", "safety")
_SENSOR_CHANNELS = ("gaze", "gait", "heart_rate", "spatial_map")


class MetaverseFramework:
    """A full simulated metaverse platform.

    Examples
    --------
    >>> fw = MetaverseFramework(FrameworkConfig(seed=1, n_users=20))
    >>> fw.run(epochs=3)
    >>> 0.0 <= fw.ethics_scorecard().overall <= 1.0
    True
    """

    def __init__(self, config: FrameworkConfig):
        self.config = config
        self.rngs = RngRegistry(config.seed)
        self.simulator = Simulator(profile=config.enable_profiling)
        self.bus = EventBus()
        self.trace = TraceLog()
        self.metrics = MetricsRegistry(
            histogram_backend=config.histogram_backend
        )
        if config.enable_observability:
            self.obs: Instrumentation = Instrumentation(
                trace=self.trace,
                metrics=self.metrics,
                clock=lambda: float(self.epoch),
                run_id=str(config.seed),
            )
        else:
            self.obs = NULL_OBS
        self.epoch = 0
        self._nonce_cache: Dict[str, int] = {}
        self._all_interactions: List[Any] = []

        self._build_world()
        self._build_reputation()
        self._build_ledger()
        self._build_population()
        self._build_privacy()
        self._build_governance()
        self._build_daos()
        self._build_economy()
        self._build_modules()

    # ==================================================================
    # Construction
    # ==================================================================
    def _build_world(self) -> None:
        self.rule_engine = RuleEngine(
            [RateLimitRule(self.config.rate_limit_per_epoch, window=1.0)]
        )
        self.world = World(
            "metaverse", size=self.config.world_size, rule_check=self.rule_engine
        )

    def _build_reputation(self) -> None:
        self.reputation = ReputationSystem(
            pretrusted=["operator"], blend=0.7,
            anchor=self._make_record_anchor("reputation"),
            obs=self.obs,
        )

    def _build_ledger(self) -> None:
        self.chain: Optional[Blockchain] = None
        self.auditor: Optional[DataCollectionAuditor] = None
        self._collector_wallets: List[Wallet] = []
        self._collector_cursor = 0
        if not self.config.enable_ledger:
            return
        contracts = ContractRegistry(obs=self.obs)
        self.voting_contract_address = contracts.deploy(VotingContract())
        self.registry_contract_address = contracts.deploy(RegistryContract())
        self.operator_wallet = Wallet(seed=f"operator:{self.config.seed}".encode())
        self._collector_wallets = [
            Wallet(seed=f"collector:{i}:{self.config.seed}".encode())
            for i in range(self.config.collector_parties)
        ]
        balances = {self.operator_wallet.address: 1_000_000}
        for wallet in self._collector_wallets:
            balances[wallet.address] = 100_000
        self.chain = Blockchain(
            PoAConsensus([self.operator_wallet.address]),
            genesis_balances=balances,
            contracts=contracts,
            obs=self.obs,
        )
        self.auditor = DataCollectionAuditor(self.chain)

    def _build_population(self) -> None:
        cfg = self.config
        rng = self.rngs.stream("population")
        self.profiles: Dict[str, UserProfile] = {
            u.user_id: u
            for u in generate_population(
                cfg.n_users, rng, prefix=cfg.user_id_prefix
            )
        }
        self.stakeholders = StakeholderRegistry()
        self.archetypes: Dict[str, Archetype] = {}
        self.user_ids: List[str] = sorted(self.profiles)

        creators = []
        for i, user_id in enumerate(self.user_ids):
            roles = {StakeholderRole.USER}
            if rng.random() < cfg.creator_fraction:
                roles.add(StakeholderRole.CREATOR)
                creators.append(user_id)
            self.stakeholders.register(user_id, roles)
            draw = rng.random()
            if draw < cfg.harasser_fraction:
                archetype = Archetype.HARASSER
            elif draw < cfg.harasser_fraction + cfg.spammer_fraction:
                archetype = Archetype.SPAMMER
            elif draw < (
                cfg.harasser_fraction + cfg.spammer_fraction + cfg.troll_fraction
            ):
                archetype = Archetype.TROLL
            else:
                archetype = Archetype.CIVIL
            self.archetypes[user_id] = archetype
            x = float(rng.uniform(0, cfg.world_size))
            y = float(rng.uniform(0, cfg.world_size))
            self.world.spawn(user_id, (x, y))
            if cfg.default_bubble_radius > 0:
                self.world.bubbles.enable(
                    user_id, radius=cfg.default_bubble_radius
                )
        self.creator_ids = creators
        for i in range(cfg.developer_count):
            self.stakeholders.register(f"dev-{i}", {StakeholderRole.DEVELOPER})
        for i in range(cfg.regulator_count):
            self.stakeholders.register(f"reg-{i}", {StakeholderRole.REGULATOR})
        for i in range(cfg.moderator_count):
            self.stakeholders.register(f"mod-{i}", {StakeholderRole.MODERATOR})
        self.stakeholders.register("operator", {StakeholderRole.DEVELOPER})

    def _build_privacy(self) -> None:
        cfg = self.config
        self.policy_engine = PolicyEngine(cfg.policy_profile)
        self.pipeline: Optional[PrivacyPipeline] = None
        self.sensor_rig: Optional[SensorRig] = None
        self.retained_data: Optional[RetainedDataStore] = None
        self.erasure: Optional[ErasureService] = None
        if not cfg.enable_privacy_pipeline:
            return
        profile = cfg.policy_profile
        cap = (
            profile.max_epsilon_per_subject
            if profile.max_epsilon_per_subject is not None
            else 1e9
        )
        budget = PrivacyBudget(default_cap=cap * 1000)  # per-scenario cap
        consent = ConsentRegistry()
        rng = self.rngs.stream("consent")
        for user_id in self.user_ids:
            for channel in _SENSOR_CHANNELS:
                if profile.consent_model == "opt-in":
                    if rng.random() < cfg.consent_rate:
                        consent.grant(user_id, channel)
                elif profile.consent_model == "opt-out":
                    if rng.random() > 0.05:  # few bother opting out
                        consent.grant(user_id, channel)
                else:
                    consent.grant(user_id, channel)
        self.pipeline = PrivacyPipeline(
            consent=consent,
            budget=budget,
            audit_hook=self._audit_collection if self.auditor else None,
            obs=self.obs,
        )
        pet_rng = self.rngs.stream("pets")
        for channel in _SENSOR_CHANNELS:
            self.pipeline.set_pet(
                channel, LaplaceMechanism(cfg.pet_epsilon, pet_rng)
            )
        self.sensor_rig = SensorRig.default(
            self.rngs.stream("sensors"), bystanders_nearby=1
        )
        # Platform-side retention + the GDPR right-to-erasure service.
        self.retained_data = RetainedDataStore(name="platform-store")
        for channel in _SENSOR_CHANNELS:
            self.pipeline.subscribe(channel, self.retained_data.retain)
        self.erasure = ErasureService(
            consent=consent,
            tombstone_anchor=self._make_record_anchor("erasure"),
        )
        self.erasure.register_store(self.retained_data.purge)

    def _build_governance(self) -> None:
        cfg = self.config
        self.sanctions = GraduatedSanctionPolicy(
            self.world,
            reputation_hook=lambda member, delta: self.reputation.record(
                rater="operator",
                target=member,
                positive=delta > 0,
                weight=abs(delta),
                time=float(self.epoch),
                context="sanction",
            ),
        )
        self.incentives = IncentiveSystem()
        self.behavior = BehaviorSimulator(
            self.world, self.archetypes, self.rngs.stream("behavior")
        )
        self.moderation: Optional[ModerationService] = None
        if cfg.moderation_config == "none":
            return
        classifier = (
            AbuseClassifier(
                self.rngs.stream("classifier"),
                true_positive_rate=cfg.classifier_tpr,
                false_positive_rate=cfg.classifier_fpr,
            )
            if cfg.moderation_config in ("automated", "hybrid")
            else None
        )
        desk = (
            ReportDesk(
                self.rngs.stream("reports"),
                report_probability=cfg.report_probability,
            )
            if cfg.moderation_config in ("reports", "hybrid")
            else None
        )
        reviewer = (
            HumanModeratorPool(
                self.rngs.stream("moderators"),
                capacity_per_epoch=cfg.moderator_capacity,
            )
            if cfg.moderation_config in ("reports", "hybrid")
            else None
        )
        self.moderation = ModerationService(
            self.sanctions,
            classifier=classifier,
            report_desk=desk,
            reviewer=reviewer,
            obs=self.obs,
        )

    def _build_daos(self) -> None:
        cfg = self.config
        self.federation: Optional[ModularDaoFederation] = None
        self.participation: Optional[ParticipationModel] = None
        anchor = self._make_record_anchor("decision")

        if cfg.governance_mode == "monolithic":
            self.decisions = DecisionPipeline(
                self.stakeholders, mode="operator", anchor=anchor
            )
            return

        rng = self.rngs.stream("dao-membership")
        rule = TurnoutQuorum(cfg.dao_quorum)
        root = DAO("root", rule=rule, obs=self.obs)
        self.federation = ModularDaoFederation(
            root, constitutional_topics=["constitution"]
        )
        sub_daos = {
            topic: DAO(f"{topic}-dao", rule=rule, obs=self.obs)
            for topic in _GOVERNANCE_TOPICS
        }
        for topic, dao in sub_daos.items():
            self.federation.add_sub_dao(dao, [topic])

        non_user_members = (
            [f"dev-{i}" for i in range(cfg.developer_count)]
            + [f"reg-{i}" for i in range(cfg.regulator_count)]
            + ["operator"]
        )
        for member_id in self.user_ids + non_user_members:
            interests = set(
                np.asarray(_GOVERNANCE_TOPICS)[
                    rng.random(len(_GOVERNANCE_TOPICS)) < 0.5
                ]
            )
            member = Member(
                address=member_id,
                tokens=float(rng.integers(1, 100)),
                interests=interests if member_id in self.profiles else set(),
                attention_budget=cfg.attention_budget,
                engagement=cfg.member_engagement,
            )
            root.add_member(member)
            for topic, dao in sub_daos.items():
                if member.interested_in(topic):
                    dao.add_member(
                        Member(
                            address=member_id,
                            tokens=member.tokens,
                            interests={topic},
                            attention_budget=cfg.attention_budget,
                            engagement=cfg.member_engagement,
                        )
                    )
        self.participation = ParticipationModel(self.rngs.stream("participation"))
        self.decisions = DecisionPipeline(
            self.stakeholders,
            federation=self.federation,
            representation=RepresentationRequirement(min_roles_present=2),
            mode="dao",
            anchor=anchor,
        )

    def _build_economy(self) -> None:
        cfg = self.config
        self.market: Optional[NFTMarketplace] = None
        self.studio: Optional[CreateToEarnStudio] = None
        if not cfg.enable_market:
            return
        collection = NFTCollection("metaverse-assets")
        policy = (
            ReputationVetted(self.reputation, threshold=0.4)
            if cfg.governance_mode == "modular"
            else OpenMinting()
        )
        self.market = NFTMarketplace(
            collection, policy=policy, reputation=self.reputation, obs=self.obs
        )
        self.studio = CreateToEarnStudio(self.market, self.rngs.stream("studio"))
        rng = self.rngs.stream("economy")
        for creator in self.creator_ids:
            is_scammer = bool(rng.random() < cfg.scammer_creator_fraction)
            skill = float(rng.uniform(0.5, 0.95)) if not is_scammer else 0.1
            self.studio.register_creator(creator, skill=skill, is_scammer=is_scammer)
        for user_id in self.user_ids:
            self.market.deposit(user_id, cfg.buyer_budget)

    def _build_modules(self) -> None:
        self.modules = ModuleRegistry()
        if self.config.governance_mode != "modular":
            return
        # Local import: builtin modules reference MetaverseFramework hooks.
        from repro.core.builtin_modules import default_modules

        for module in default_modules():
            self.modules.mount(module, self, time=0.0, authorized_by="bootstrap")

    # ==================================================================
    # Anchoring helpers
    # ==================================================================
    def _make_record_anchor(self, context: str):
        """A callback that registers a payload on the ledger (no-op when
        the ledger is disabled)."""

        def anchor(payload: Dict[str, Any]) -> None:
            self.trace.emit(float(self.epoch), context, "anchor", payload=dict(payload))
            if self.chain is None:
                return
            wallet = self.operator_wallet
            nonce = self._next_nonce(wallet)
            stx = wallet.record(nonce=nonce, record_payload=dict(payload))
            self.chain.mempool.submit(
                stx, state=self.chain.state, time=float(self.epoch)
            )

        return anchor

    def _audit_collection(self, frame, pet_name: str) -> None:
        """Pipeline audit hook: register a collection activity on-chain,
        rotating collector identities so monopoly is measurable."""
        if self.auditor is None:
            return
        wallet = self._collector_wallets[
            self._collector_cursor % len(self._collector_wallets)
        ]
        self._collector_cursor += 1
        self.auditor.register_activity(
            wallet,
            subject=frame.subject,
            category=frame.channel,
            purpose="experience-personalisation",
            pet_applied=pet_name,
        )

    def _next_nonce(self, wallet: Wallet) -> int:
        assert self.chain is not None
        base = self.chain.state.nonce_of(wallet.address)
        cached = self._nonce_cache.get(wallet.address, 0)
        nonce = max(base, cached)
        self._nonce_cache[wallet.address] = nonce + 1
        return nonce

    # ==================================================================
    # Epoch steps (called by modules in modular mode, directly otherwise)
    # ==================================================================
    def step_behavior(self, time: float) -> None:
        with self.obs.span("framework", "step.behavior", time=time):
            self._step_behavior(time)

    def _step_behavior(self, time: float) -> None:
        interactions = self.behavior.run_epoch(time)
        self._epoch_interactions = interactions
        self._all_interactions.extend(interactions)
        self.metrics.counter("behavior.attempts").inc(len(interactions))
        delivered_benign = sum(
            1 for i in interactions if i.delivered and not i.abusive
        )
        self.metrics.counter("behavior.delivered_benign").inc(delivered_benign)
        # Preventive incentives: reward civil members who interacted.
        for interaction in interactions:
            if interaction.delivered and not interaction.abusive:
                if self.archetypes.get(interaction.initiator) == Archetype.CIVIL:
                    self.incentives.reward(interaction.initiator, weight=0.1)

    def step_moderation(self, time: float) -> None:
        if self.moderation is None:
            return
        with self.obs.span("framework", "step.moderation", time=time):
            self.moderation.process_epoch(self._epoch_interactions, time)

    def step_privacy(self, time: float) -> None:
        if self.pipeline is None or self.sensor_rig is None:
            return
        with self.obs.span("framework", "step.privacy", time=time):
            self._step_privacy(time)

    def _step_privacy(self, time: float) -> None:
        assert self.pipeline is not None and self.sensor_rig is not None
        rng = self.rngs.stream("sensor-sampling")
        count = max(1, int(self.config.sensor_sample_fraction * len(self.user_ids)))
        chosen = rng.choice(len(self.user_ids), size=count, replace=False)
        for index in sorted(int(i) for i in chosen):
            user = self.profiles[self.user_ids[index]]
            for frame in self.sensor_rig.sample_all(user, time):
                self.pipeline.ingest(frame)

    def step_economy(self, time: float) -> None:
        if self.market is None or self.studio is None:
            return
        with self.obs.span("framework", "step.economy", time=time):
            self._step_economy(time)

    def _step_economy(self, time: float) -> None:
        assert self.market is not None and self.studio is not None
        rng = self.rngs.stream("market")
        for profile in self.studio.creators():
            if rng.random() < 0.5:
                self.studio.produce_and_list(profile.name, time)
        # A few buyers sweep the cheapest listings.
        listings = sorted(self.market.active_listings(), key=lambda l: l.price)
        buyers = [u for u in self.user_ids if self.market.balance_of(u) > 10]
        purchases = min(len(listings), max(1, len(buyers) // 10))
        for listing in listings[:purchases]:
            if not buyers:
                break
            buyer = buyers[int(rng.integers(len(buyers)))]
            if buyer == listing.seller:
                continue
            if self.market.balance_of(buyer) < listing.price:
                continue
            sale = self.market.buy(buyer, listing.listing_id, time)
            token = self.market.collection.token(sale.token_id)
            if token.is_scam:
                self.market.report_scam(buyer, token.token_id, time)
            elif rng.random() < 0.5:
                self.market.praise(buyer, token.token_id, time)

    def step_decisions(self, time: float) -> None:
        if self.federation is not None and self.participation is not None:
            with self.obs.span("framework", "step.decisions", time=time):
                self.participation.run_federation_epoch(self.federation, time)
                self.decisions.finalize_due(time)
                for dao in self.federation.all_daos():
                    dao.close_due(time)
                for dao in self.federation.all_daos():
                    for member in dao.members:
                        member.reset_attention()

    def step_ledger(self, time: float) -> None:
        if self.chain is None:
            return
        if len(self.chain.mempool) == 0:
            return
        with self.obs.span("framework", "step.ledger", time=time):
            self.chain.propose_block(
                self.operator_wallet.address, timestamp=time, max_txs=500
            )

    def step_upkeep(self, time: float) -> None:
        self.incentives.end_epoch()
        if self.epoch % 10 == 9:
            self.reputation.decay()

    # ==================================================================
    # Driving
    # ==================================================================
    def run_epoch(self) -> None:
        """Advance the platform by one epoch."""
        time = float(self.epoch)
        if not hasattr(self, "_all_interactions"):
            self._all_interactions = []
        self._epoch_interactions = []
        with self.obs.span(
            "framework", "epoch", time=time, epoch=self.epoch,
            mode=self.config.governance_mode,
        ):
            if self.config.governance_mode == "modular" and self.modules.mounted():
                self.modules.run_epoch(self, time)
            else:
                self.step_behavior(time)
                self.step_moderation(time)
                self.step_privacy(time)
                self.step_economy(time)
                self.step_decisions(time)
                self.step_ledger(time)
                self.step_upkeep(time)
            self.bus.publish("epoch.completed", time, "framework", epoch=self.epoch)
        self.epoch += 1

    def run(self, epochs: int) -> None:
        """Run ``epochs`` epochs, dispatched through the event engine so
        profiling (``enable_profiling``) sees every epoch callback."""
        start = self.epoch
        for offset in range(epochs):
            self.simulator.schedule(
                float(start + offset), self.run_epoch, name="framework.run_epoch"
            )
        self.simulator.run_until(float(start + epochs))

    # ==================================================================
    # Change requests (the §IV-C loop)
    # ==================================================================
    def propose_change(
        self,
        title: str,
        kind: str,
        topic: str,
        proposer: str,
        executor=None,
        payload: Optional[Dict[str, Any]] = None,
        voting_period: Optional[float] = None,
    ):
        """Submit a platform change through the decision pipeline."""
        with self.obs.span(
            "framework",
            "change.propose",
            time=float(self.epoch),
            title=title,
            topic=topic,
            proposer=proposer,
        ):
            request = self.decisions.make_request(
                title=title,
                kind=kind,
                topic=topic,
                proposer=proposer,
                executor=executor,
                payload=payload,
            )
            return self.decisions.submit(
                request,
                time=float(self.epoch),
                voting_period=voting_period or self.config.voting_period,
            )

    def request_erasure(self, subject: str):
        """Execute the GDPR right to erasure for ``subject`` (§II-D):
        purge retained sensor data, revoke all consent, and write an
        on-chain tombstone.  Returns the receipt.

        Raises
        ------
        FrameworkError
            When the platform runs without a privacy pipeline (nothing
            is retained and nothing can be erased — the compliance gap
            the monolithic baseline exhibits).
        """
        if self.erasure is None:
            raise FrameworkError(
                "platform has no erasure service (privacy pipeline disabled)"
            )
        return self.erasure.request_erasure(subject, time=float(self.epoch))

    # ==================================================================
    # Observation / scoring
    # ==================================================================
    def capabilities(self) -> Dict[str, Any]:
        """Capability description for policy-compliance checking."""
        profile = self.config.policy_profile
        return {
            "consent_default_deny": self.pipeline is not None,
            "audit_ledger": self.auditor is not None,
            "budget_default_cap": (
                profile.max_epsilon_per_subject
                if self.pipeline is not None
                else None
            ),
            "supports_erasure": self.erasure is not None,
            "disclosure_indicator": self.pipeline is not None,
            "channels": list(_SENSOR_CHANNELS) if self.pipeline else [],
        }

    def ethics_observations(self) -> Dict[str, Any]:
        """Live measurements feeding :func:`score_platform`."""
        obs: Dict[str, Any] = {}
        profile = self.config.policy_profile

        # Human rights ------------------------------------------------
        obs["consent_default_deny"] = (
            self.pipeline is not None and profile.consent_model == "opt-in"
        )
        if self.pipeline is not None:
            protected = sum(
                1
                for channel in _SENSOR_CHANNELS
                if self.pipeline.pet_for(channel).name != "passthrough"
            )
            obs["pet_coverage"] = protected / len(_SENSOR_CHANNELS)
        else:
            obs["pet_coverage"] = 0.0
        obs["budget_capped"] = (
            self.pipeline is not None
            and profile.max_epsilon_per_subject is not None
        )
        obs["audit_ledger"] = self.auditor is not None
        obs["transparency_described_modules"] = (
            len(self.modules.mounted()) / len(ModuleSlot)
        )
        obs["decisions_anchored"] = self.chain is not None
        if self.auditor is not None:
            obs["data_monopoly_hhi"] = self.auditor.monopoly_report().herfindahl_index
        else:
            obs["data_monopoly_hhi"] = 1.0
        obs["bystander_protection"] = self.pipeline is not None

        # Human effort --------------------------------------------------
        stats = self.decisions.stats()
        if self.federation is not None:
            turnouts = [
                s["mean_turnout"]
                for s in self.federation.federation_stats().values()
                if s["closed"] > 0
            ]
            obs["mean_turnout"] = float(np.mean(turnouts)) if turnouts else 0.0
        else:
            obs["mean_turnout"] = 0.0
        obs["representative_fraction"] = stats["representative_fraction"]
        obs["reputation_active"] = self.reputation.feedback_count() > 0
        if self.moderation is not None and self._all_interactions:
            score = self.moderation.score(self._all_interactions)
            obs["moderation_recall"] = score.recall
            obs["moderation_precision"] = score.precision
        else:
            obs["moderation_recall"] = 0.0
            obs["moderation_precision"] = 0.0

        # Human experience ---------------------------------------------
        interactions = getattr(self, "_all_interactions", [])
        benign = [i for i in interactions if not i.abusive]
        obs["benign_delivery_rate"] = (
            sum(1 for i in benign if i.delivered) / len(benign) if benign else 0.0
        )
        abusive_delivered = sum(
            1 for i in interactions if i.abusive and i.delivered
        )
        per_member_per_epoch = (
            abusive_delivered / (len(self.user_ids) * max(1, self.epoch))
        )
        obs["harassment_exposure"] = min(1.0, per_member_per_epoch)
        obs["safety_mitigations"] = (
            0.5 * self.config.safety_shadow_avatars
            + 0.5 * self.config.safety_redirected_walking
        )
        if self.market is not None:
            policy = self.market.policy
            attempts = policy.admitted_count + policy.refused_count
            obs["creation_openness"] = (
                policy.admitted_count / attempts if attempts else 1.0
            )
        else:
            obs["creation_openness"] = 0.0
        return obs

    def ethics_scorecard(self) -> EthicsScorecard:
        return score_platform(self.ethics_observations())

    def summary(self) -> Dict[str, Any]:
        """One-dict platform status for examples and docs."""
        return {
            "epoch": self.epoch,
            "mode": self.config.governance_mode,
            "population": self.world.population(),
            "interactions": len(getattr(self, "_all_interactions", [])),
            "chain_height": self.chain.height if self.chain else None,
            "mounted_modules": self.modules.mounted(),
            "decision_stats": self.decisions.stats(),
            "ethics_overall": self.ethics_scorecard().overall,
        }

    # ==================================================================
    # Observability exports
    # ==================================================================
    def export_trace(self, path) -> int:
        """Write the full trace log as JSONL; returns the record count."""
        return export_trace_jsonl(self.trace, path)

    def transparency_report(self):
        """Per-module activity table (records, spans, errors, counters)."""
        return transparency_report(self.trace, self.metrics)

    def prometheus_metrics(self) -> str:
        """Prometheus text-format dump of the metrics registry."""
        return prometheus_text(self.metrics)

    def hottest_handlers(self, top_n: int = 10):
        """Engine profiling report (requires ``enable_profiling``)."""
        return hot_handlers_report(self.simulator, top_n=top_n)
