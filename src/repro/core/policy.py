"""Jurisdiction policy profiles: the swappable regulation module.

§II-D: "Using a modular-based framework to construct the privacy
regulation protections will allow the metaverse to adapt to local
authorities' specifications and provide a homogeneous policy to protect
users' privacy."  §III-E: "if the metaverse is required to follow the
local rules, the modules will swap accordingly."

A :class:`PolicyProfile` captures a jurisdiction's requirements as
checkable knobs; the :class:`PolicyEngine` validates a framework's
configuration against the active profile (compliance report) and hot
swaps profiles — the "metaverse with frontiers" scenario of §III-E made
executable.  GDPR-like, CCPA-like, and permissive profiles ship
built in; they are deliberately simplified but directionally faithful
(e.g. GDPR: opt-in consent + erasure + DP budget caps + mandatory audit
trail; CCPA: opt-out + sale transparency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import FrameworkError, PolicyViolation

__all__ = ["PolicyProfile", "ComplianceIssue", "PolicyEngine", "GDPR_LIKE", "CCPA_LIKE", "PERMISSIVE"]


@dataclass(frozen=True)
class PolicyProfile:
    """One jurisdiction's requirements.

    Attributes
    ----------
    consent_model:
        ``"opt-in"`` (collection needs prior consent), ``"opt-out"``
        (lawful until refused), or ``"none"``.
    requires_audit_ledger:
        Whether data-collection activities must be ledger-registered.
    max_epsilon_per_subject:
        Mandatory DP budget cap (None = no cap).
    right_to_erasure:
        Whether subjects can demand deletion of collected data.
    requires_disclosure_indicator:
        Whether active collection must be visibly disclosed (the LED).
    allows_biometric_channels:
        Channels collectible at all; empty tuple = all allowed.
    """

    name: str
    consent_model: str = "opt-in"
    requires_audit_ledger: bool = True
    max_epsilon_per_subject: Optional[float] = None
    right_to_erasure: bool = True
    requires_disclosure_indicator: bool = True
    forbidden_channels: tuple = ()

    def __post_init__(self) -> None:
        if self.consent_model not in ("opt-in", "opt-out", "none"):
            raise FrameworkError(
                f"consent_model must be opt-in/opt-out/none, "
                f"got {self.consent_model!r}"
            )


GDPR_LIKE = PolicyProfile(
    name="gdpr-like",
    consent_model="opt-in",
    requires_audit_ledger=True,
    max_epsilon_per_subject=2.0,
    right_to_erasure=True,
    requires_disclosure_indicator=True,
)

CCPA_LIKE = PolicyProfile(
    name="ccpa-like",
    consent_model="opt-out",
    requires_audit_ledger=True,
    max_epsilon_per_subject=8.0,
    right_to_erasure=True,
    requires_disclosure_indicator=False,
)

PERMISSIVE = PolicyProfile(
    name="permissive",
    consent_model="none",
    requires_audit_ledger=False,
    max_epsilon_per_subject=None,
    right_to_erasure=False,
    requires_disclosure_indicator=False,
)


@dataclass(frozen=True)
class ComplianceIssue:
    """One detected gap between configuration and profile."""

    requirement: str
    detail: str


class PolicyEngine:
    """Holds the active profile and checks compliance.

    The engine inspects a *capability description* of the platform (a
    plain dict the framework assembles from its live components) rather
    than the components themselves, so any deployment — including
    non-``MetaverseFramework`` ones — can be audited.
    """

    def __init__(self, profile: PolicyProfile):
        self._profile = profile
        self._swap_history: List[str] = [profile.name]

    @property
    def profile(self) -> PolicyProfile:
        return self._profile

    @property
    def swap_history(self) -> List[str]:
        return list(self._swap_history)

    def swap_profile(self, profile: PolicyProfile) -> None:
        """Jurisdiction change: "the modules will swap accordingly"."""
        self._profile = profile
        self._swap_history.append(profile.name)

    # ------------------------------------------------------------------
    # Compliance
    # ------------------------------------------------------------------
    def compliance_report(self, capabilities: Dict[str, Any]) -> List[ComplianceIssue]:
        """Check ``capabilities`` against the active profile.

        Expected capability keys (missing keys are treated as absent
        capabilities):

        * ``consent_default_deny`` (bool)
        * ``audit_ledger`` (bool)
        * ``budget_default_cap`` (float or None)
        * ``supports_erasure`` (bool)
        * ``disclosure_indicator`` (bool)
        * ``channels`` (list of collected channel names)
        """
        issues: List[ComplianceIssue] = []
        p = self._profile
        if p.consent_model == "opt-in" and not capabilities.get("consent_default_deny"):
            issues.append(
                ComplianceIssue(
                    "consent",
                    "profile requires opt-in consent but platform does not "
                    "default-deny collection",
                )
            )
        if p.requires_audit_ledger and not capabilities.get("audit_ledger"):
            issues.append(
                ComplianceIssue(
                    "audit",
                    "profile requires ledger-registered collection activities",
                )
            )
        if p.max_epsilon_per_subject is not None:
            cap = capabilities.get("budget_default_cap")
            if cap is None or cap > p.max_epsilon_per_subject:
                issues.append(
                    ComplianceIssue(
                        "privacy-budget",
                        f"profile caps ε at {p.max_epsilon_per_subject}, "
                        f"platform default is {cap}",
                    )
                )
        if p.right_to_erasure and not capabilities.get("supports_erasure"):
            issues.append(
                ComplianceIssue("erasure", "profile grants right to erasure")
            )
        if p.requires_disclosure_indicator and not capabilities.get(
            "disclosure_indicator"
        ):
            issues.append(
                ComplianceIssue(
                    "disclosure",
                    "profile requires a visible collection indicator",
                )
            )
        for channel in capabilities.get("channels", []):
            if channel in p.forbidden_channels:
                issues.append(
                    ComplianceIssue(
                        "forbidden-channel",
                        f"profile forbids collecting {channel!r}",
                    )
                )
        return issues

    def require_compliance(self, capabilities: Dict[str, Any]) -> None:
        """Raise :class:`PolicyViolation` listing every gap."""
        issues = self.compliance_report(capabilities)
        if issues:
            summary = "; ".join(f"{i.requirement}: {i.detail}" for i in issues)
            raise PolicyViolation(
                f"profile {self._profile.name!r} violations: {summary}"
            )
