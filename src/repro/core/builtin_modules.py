"""The default module set mounted by a modular framework.

Each module owns one Fig.-3 slot and drives the matching epoch step of
the framework it is attached to.  They are deliberately thin: the
mechanics live in the substrates; a module contributes the three things
the paper demands of the architecture — a *slot* it can be swapped out
of, a public *description*, and a *hook* connecting it to the rest.

Swappability is real: e.g. replacing :class:`PrivacyModule` with one
built at a different epsilon re-targets the pipeline's PETs the moment
it attaches (see the module-swap integration tests and the quickstart
example).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.framework import MetaverseFramework
from repro.core.modules import FrameworkModule, ModuleSlot
from repro.core.policy import PolicyProfile
from repro.privacy import LaplaceMechanism

__all__ = [
    "BehaviorGovernanceModule",
    "PrivacyModule",
    "DecisionModule",
    "ReputationModule",
    "EconomyModule",
    "SafetyModule",
    "PolicyModule",
    "default_modules",
]

_SENSOR_CHANNELS = ("gaze", "gait", "heart_rate", "spatial_map")


class BehaviorGovernanceModule(FrameworkModule):
    """Governance slot: behaviour epoch + moderation pipeline."""

    slot = ModuleSlot.GOVERNANCE
    name = "hybrid-moderation"

    def on_epoch(self, framework: MetaverseFramework, time: float) -> None:
        framework.step_behavior(time)
        framework.step_moderation(time)

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "slot": self.slot.value,
            "detail": (
                "world interaction gates (rate limits, bubbles) plus the "
                "configured moderation pipeline with graduated sanctions"
            ),
        }


class PrivacyModule(FrameworkModule):
    """Privacy slot: the Fig.-2 pipeline with configurable PETs.

    Swapping in a module with a different ``epsilon`` retunes every
    channel's mechanism on attach — a live demonstration of module
    interchangeability.
    """

    slot = ModuleSlot.PRIVACY
    name = "pet-pipeline"

    def __init__(self, epsilon: Optional[float] = None):
        super().__init__()
        self._epsilon = epsilon

    def on_attach(self, framework: MetaverseFramework) -> None:
        if self._epsilon is None or framework.pipeline is None:
            return
        rng = framework.rngs.stream("pets")
        for channel in _SENSOR_CHANNELS:
            framework.pipeline.set_pet(
                channel, LaplaceMechanism(self._epsilon, rng)
            )

    def on_epoch(self, framework: MetaverseFramework, time: float) -> None:
        framework.step_privacy(time)

    def describe(self) -> Dict[str, Any]:
        epsilon = (
            self._epsilon
            if self._epsilon is not None
            else (
                self.framework.config.pet_epsilon if self.is_attached else None
            )
        )
        return {
            "name": self.name,
            "slot": self.slot.value,
            "detail": "consent-gated sensor pipeline with Laplace PETs and "
            "on-chain collection registration",
            "epsilon": epsilon,
        }


class DecisionModule(FrameworkModule):
    """Decision slot: DAO participation and proposal lifecycle."""

    slot = ModuleSlot.DECISION
    name = "modular-dao-federation"

    def on_epoch(self, framework: MetaverseFramework, time: float) -> None:
        framework.step_decisions(time)

    def describe(self) -> Dict[str, Any]:
        topics = (
            self.framework.federation.topics()
            if self.is_attached and self.framework.federation is not None
            else {}
        )
        return {
            "name": self.name,
            "slot": self.slot.value,
            "detail": "topic-routed sub-DAOs with root ratification for "
            "constitutional changes",
            "topics": topics,
        }


class ReputationModule(FrameworkModule):
    """Reputation slot: decay upkeep (feedback arrives via hooks)."""

    slot = ModuleSlot.REPUTATION
    name = "blended-reputation"

    def on_epoch(self, framework: MetaverseFramework, time: float) -> None:
        framework.step_upkeep(time)

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "slot": self.slot.value,
            "detail": "beta + EigenTrust blend with ledger-anchored feedback "
            "and epoch decay",
        }


class EconomyModule(FrameworkModule):
    """Economy slot: NFT market epoch."""

    slot = ModuleSlot.ECONOMY
    name = "reputation-vetted-market"

    def on_epoch(self, framework: MetaverseFramework, time: float) -> None:
        framework.step_economy(time)

    def describe(self) -> Dict[str, Any]:
        policy = (
            self.framework.market.policy.name
            if self.is_attached and self.framework.market is not None
            else None
        )
        return {
            "name": self.name,
            "slot": self.slot.value,
            "detail": "create-to-earn market with royalties and scam reports "
            "feeding reputation",
            "minting_policy": policy,
        }


class SafetyModule(FrameworkModule):
    """Safety slot: advertises the active physical-safety mitigations.

    Room-scale safety runs per physical space (see
    :class:`repro.world.RoomSimulation`); at the platform level this
    module declares which mitigations headsets must enable.
    """

    slot = ModuleSlot.SAFETY
    name = "hmd-safety"

    def describe(self) -> Dict[str, Any]:
        cfg = self.framework.config if self.is_attached else None
        return {
            "name": self.name,
            "slot": self.slot.value,
            "detail": "shadow avatars + potential-field redirected walking",
            "shadow_avatars": cfg.safety_shadow_avatars if cfg else None,
            "redirected_walking": cfg.safety_redirected_walking if cfg else None,
        }


class PolicyModule(FrameworkModule):
    """Policy slot: the jurisdiction profile; ledger step piggybacks here
    (the policy layer owns the audit trail requirement)."""

    slot = ModuleSlot.POLICY
    name = "jurisdiction-policy"

    def __init__(self, profile: Optional[PolicyProfile] = None):
        super().__init__()
        self._profile = profile

    def on_attach(self, framework: MetaverseFramework) -> None:
        if self._profile is not None:
            framework.policy_engine.swap_profile(self._profile)

    def on_epoch(self, framework: MetaverseFramework, time: float) -> None:
        framework.step_ledger(time)

    def describe(self) -> Dict[str, Any]:
        profile = (
            self.framework.policy_engine.profile.name
            if self.is_attached
            else (self._profile.name if self._profile else None)
        )
        return {
            "name": self.name,
            "slot": self.slot.value,
            "detail": "swappable jurisdiction profile (GDPR/CCPA/permissive) "
            "with compliance reporting",
            "profile": profile,
        }


def default_modules() -> List[FrameworkModule]:
    """The standard Fig.-3 module set, in mount order."""
    return [
        BehaviorGovernanceModule(),
        PrivacyModule(),
        EconomyModule(),
        DecisionModule(),
        PolicyModule(),
        ReputationModule(),
        SafetyModule(),
    ]
