"""The decision pipeline: how the metaverse changes itself.

§IV-C: "the decision-making module will involve members, regulators,
and software developers ... The changes in the metaverse will also
involve code and hardware implementations."

A :class:`ChangeRequest` describes a proposed platform change (module
swap, policy swap, rule change, treasury grant).  The pipeline routes
it through the configured decision mechanism:

* ``"dao"`` mode — the request becomes a proposal in the topic-owning
  DAO of a :class:`~repro.dao.modular.ModularDaoFederation`; if passed,
  the attached executor runs and the outcome is anchored.
* ``"operator"`` mode — the monolithic baseline of experiment E9: a
  central operator decides instantly, with no vote and no
  representation.

Either way, the pipeline measures what the paper cares about:
representation (were users, developers, and regulators present?),
latency, and participation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.stakeholders import RepresentationRequirement, StakeholderRegistry
from repro.dao.modular import ModularDaoFederation
from repro.dao.proposals import Proposal, ProposalStatus
from repro.errors import FrameworkError

__all__ = ["ChangeRequest", "DecisionRecord", "DecisionPipeline"]

# Executes the approved change; receives the request.
ChangeExecutor = Callable[["ChangeRequest"], Any]
# Anchor for decided outcomes (ledger registration).
DecisionAnchor = Callable[[Dict[str, Any]], None]


@dataclass
class ChangeRequest:
    """A proposed change to the platform itself."""

    request_id: str
    title: str
    kind: str  # "swap_module" | "policy_change" | "rule_change" | "grant" | ...
    topic: str
    proposer: str
    executor: Optional[ChangeExecutor] = None
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass
class DecisionRecord:
    """The audited outcome of one change request."""

    request: ChangeRequest
    mechanism: str  # "dao" | "operator"
    approved: bool
    executed: bool
    representative: bool
    participants: List[str]
    submitted_at: float
    decided_at: float

    @property
    def latency(self) -> float:
        return self.decided_at - self.submitted_at


class DecisionPipeline:
    """Routes change requests through DAO or operator decision-making."""

    def __init__(
        self,
        stakeholders: StakeholderRegistry,
        federation: Optional[ModularDaoFederation] = None,
        representation: Optional[RepresentationRequirement] = None,
        mode: str = "dao",
        anchor: Optional[DecisionAnchor] = None,
        operator_id: str = "operator",
    ):
        if mode not in ("dao", "operator"):
            raise FrameworkError(f"mode must be 'dao' or 'operator', got {mode!r}")
        if mode == "dao" and federation is None:
            raise FrameworkError("dao mode requires a federation")
        self._stakeholders = stakeholders
        self._federation = federation
        self._representation = representation or RepresentationRequirement()
        self._mode = mode
        self._anchor = anchor
        self._operator_id = operator_id
        self._counter = itertools.count()
        self._pending: Dict[str, ChangeRequest] = {}  # proposal_id → request
        self._records: List[DecisionRecord] = []

    @property
    def mode(self) -> str:
        return self._mode

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def make_request(
        self,
        title: str,
        kind: str,
        topic: str,
        proposer: str,
        executor: Optional[ChangeExecutor] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> ChangeRequest:
        return ChangeRequest(
            request_id=f"chg-{next(self._counter):05d}",
            title=title,
            kind=kind,
            topic=topic,
            proposer=proposer,
            executor=executor,
            payload=dict(payload or {}),
        )

    def submit(
        self, request: ChangeRequest, time: float, voting_period: float = 10.0
    ) -> Optional[Proposal]:
        """Enter the request into the decision mechanism.

        In operator mode the decision happens immediately (approve
        everything the operator proposes — that is the point of the
        baseline) and None is returned.  In DAO mode the routed
        proposal is returned; call :meth:`finalize` after its vote
        closes.
        """
        if self._mode == "operator":
            self._decide_operator(request, time)
            return None
        assert self._federation is not None
        dao, proposal = self._federation.submit_proposal(
            title=request.title,
            proposer=request.proposer,
            topic=request.topic,
            created_at=time,
            voting_period=voting_period,
            metadata={"request_id": request.request_id, "kind": request.kind},
        )
        self._pending[proposal.proposal_id] = request
        return proposal

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self, proposal_id: str, time: float) -> DecisionRecord:
        """Close the DAO vote for ``proposal_id`` and execute on pass."""
        if self._mode != "dao":
            raise FrameworkError("finalize() only applies in dao mode")
        request = self._pending.pop(proposal_id, None)
        if request is None:
            raise FrameworkError(f"no pending request for proposal {proposal_id}")
        assert self._federation is not None
        dao = self._federation.dao_for_topic(request.topic)
        proposal = dao.proposal(proposal_id)
        if proposal.is_open:
            self._federation.close_and_escalate(dao, proposal_id, time)
        approved = proposal.status in (ProposalStatus.PASSED, ProposalStatus.EXECUTED)
        participants = [b.voter for b in dao.ballots_of(proposal_id)]
        representative = self._representation.satisfied_by(
            participants, self._stakeholders
        )
        executed = False
        if approved and request.executor is not None:
            request.executor(request)
            executed = True
        record = DecisionRecord(
            request=request,
            mechanism="dao",
            approved=approved,
            executed=executed,
            representative=representative,
            participants=participants,
            submitted_at=proposal.created_at,
            decided_at=time,
        )
        self._finish(record, time)
        return record

    def finalize_due(self, time: float) -> List[DecisionRecord]:
        """Finalize every pending request whose vote deadline passed."""
        if self._mode != "dao":
            return []
        records = []
        assert self._federation is not None
        for proposal_id, request in list(self._pending.items()):
            dao = self._federation.dao_for_topic(request.topic)
            proposal = dao.proposal(proposal_id)
            if time >= proposal.voting_deadline:
                records.append(self.finalize(proposal_id, time))
        return records

    def _decide_operator(self, request: ChangeRequest, time: float) -> None:
        executed = False
        if request.executor is not None:
            request.executor(request)
            executed = True
        record = DecisionRecord(
            request=request,
            mechanism="operator",
            approved=True,
            executed=executed,
            representative=self._representation.satisfied_by(
                [self._operator_id], self._stakeholders
            ),
            participants=[self._operator_id],
            submitted_at=time,
            decided_at=time,
        )
        self._finish(record, time)

    def _finish(self, record: DecisionRecord, time: float) -> None:
        self._records.append(record)
        if self._anchor is not None:
            self._anchor(
                {
                    "activity": "platform_decision",
                    "request_id": record.request.request_id,
                    "kind": record.request.kind,
                    "mechanism": record.mechanism,
                    "approved": record.approved,
                    "representative": record.representative,
                    "participants": len(record.participants),
                    "time": time,
                }
            )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def records(self) -> List[DecisionRecord]:
        return list(self._records)

    def stats(self) -> Dict[str, float]:
        if not self._records:
            return {
                "decisions": 0.0,
                "approved_fraction": 0.0,
                "representative_fraction": 0.0,
                "mean_latency": 0.0,
                "mean_participants": 0.0,
            }
        n = len(self._records)
        return {
            "decisions": float(n),
            "approved_fraction": sum(r.approved for r in self._records) / n,
            "representative_fraction": sum(
                r.representative for r in self._records
            ) / n,
            "mean_latency": sum(r.latency for r in self._records) / n,
            "mean_participants": sum(
                len(r.participants) for r in self._records
            ) / n,
        }
