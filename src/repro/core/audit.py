"""Transparency auditing of a running framework.

§II-D asks for auditable data practices; §IV-C for transparent,
understandable active parts.  :class:`TransparencyAuditor` verifies both
against a live :class:`~repro.core.framework.MetaverseFramework`:

* every module slot is described (and descriptions are non-empty),
* every module swap is in the public history,
* every released collection has a matching on-chain registration
  (coverage ratio), each cryptographically provable,
* every platform decision is anchored,
* data-collection concentration stays below the monopoly threshold.

The report is a plain dict so external tools (and the EXPERIMENTS.md
harness) can snapshot it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.framework import MetaverseFramework
from repro.ledger.transactions import TxKind

__all__ = ["AuditFinding", "TransparencyAuditor"]


@dataclass(frozen=True)
class AuditFinding:
    """One audit observation; severity is 'ok', 'warning', or 'violation'."""

    check: str
    severity: str
    detail: str


class TransparencyAuditor:
    """Audits a framework instance for the paper's transparency duties."""

    def __init__(self, framework: MetaverseFramework, monopoly_threshold: float = 0.5):
        self._fw = framework
        self._monopoly_threshold = monopoly_threshold

    # ------------------------------------------------------------------
    # Individual checks
    # ------------------------------------------------------------------
    def check_module_transparency(self) -> List[AuditFinding]:
        findings: List[AuditFinding] = []
        descriptions = self._fw.modules.describe_all()
        if not descriptions:
            findings.append(
                AuditFinding(
                    "module-transparency",
                    "violation",
                    "no modules are publicly described "
                    "(opaque/monolithic operation)",
                )
            )
            return findings
        for description in descriptions:
            if not description.get("detail"):
                findings.append(
                    AuditFinding(
                        "module-transparency",
                        "warning",
                        f"module {description.get('name')} has no detail text",
                    )
                )
        findings.append(
            AuditFinding(
                "module-transparency",
                "ok",
                f"{len(descriptions)} modules publicly described",
            )
        )
        return findings

    def check_collection_registration(self) -> List[AuditFinding]:
        """Released frames vs on-chain registrations (coverage)."""
        findings: List[AuditFinding] = []
        pipeline = self._fw.pipeline
        auditor = self._fw.auditor
        if pipeline is None:
            findings.append(
                AuditFinding(
                    "collection-registration",
                    "violation",
                    "no privacy pipeline: collection is unmediated",
                )
            )
            return findings
        released = pipeline.stats.released
        if auditor is None:
            severity = "violation" if released else "warning"
            findings.append(
                AuditFinding(
                    "collection-registration",
                    severity,
                    f"{released} releases with no audit ledger",
                )
            )
            return findings
        registered = len(auditor.activities())
        coverage = registered / released if released else 1.0
        severity = "ok" if coverage >= 0.99 else "violation"
        findings.append(
            AuditFinding(
                "collection-registration",
                severity,
                f"{registered}/{released} releases registered "
                f"(coverage {coverage:.1%})",
            )
        )
        return findings

    def check_registration_proofs(self, sample: int = 5) -> List[AuditFinding]:
        """Spot-check Merkle inclusion proofs of registrations."""
        auditor = self._fw.auditor
        if auditor is None:
            return [
                AuditFinding(
                    "registration-proofs", "warning", "no ledger to prove against"
                )
            ]
        activities = auditor.activities()
        checked = activities[:sample] + activities[-sample:]
        for record in checked:
            if not auditor.prove_activity(record.tx_id):
                return [
                    AuditFinding(
                        "registration-proofs",
                        "violation",
                        f"tx {record.tx_id[:12]} failed inclusion proof",
                    )
                ]
        return [
            AuditFinding(
                "registration-proofs",
                "ok",
                f"{len(checked)} sampled registrations cryptographically verified",
            )
        ]

    def check_data_monopoly(self) -> List[AuditFinding]:
        auditor = self._fw.auditor
        if auditor is None:
            return [
                AuditFinding(
                    "data-monopoly",
                    "warning",
                    "collection shares unobservable without a ledger",
                )
            ]
        report = auditor.monopoly_report(threshold=self._monopoly_threshold)
        if report.monopoly_detected:
            return [
                AuditFinding(
                    "data-monopoly",
                    "violation",
                    f"{report.dominant_party[:12]} holds "
                    f"{report.dominant_share:.1%} of collection activity",
                )
            ]
        return [
            AuditFinding(
                "data-monopoly",
                "ok",
                f"max share {report.dominant_share:.1%}, "
                f"HHI {report.herfindahl_index:.3f}",
            )
        ]

    def check_decision_anchoring(self) -> List[AuditFinding]:
        records = self._fw.decisions.records
        if not records:
            return [
                AuditFinding("decision-anchoring", "ok", "no decisions yet")
            ]
        if self._fw.chain is None:
            return [
                AuditFinding(
                    "decision-anchoring",
                    "violation",
                    f"{len(records)} decisions with no ledger anchor",
                )
            ]
        anchored = sum(
            1
            for _, stx in self._fw.chain.iter_transactions()
            if stx.tx.kind == TxKind.RECORD
            and stx.tx.payload.get("activity") == "platform_decision"
        )
        severity = "ok" if anchored >= len(records) else "warning"
        return [
            AuditFinding(
                "decision-anchoring",
                severity,
                f"{anchored}/{len(records)} decisions anchored on-chain",
            )
        ]

    # ------------------------------------------------------------------
    # Full report
    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        findings = (
            self.check_module_transparency()
            + self.check_collection_registration()
            + self.check_registration_proofs()
            + self.check_data_monopoly()
            + self.check_decision_anchoring()
        )
        violations = [f for f in findings if f.severity == "violation"]
        warnings = [f for f in findings if f.severity == "warning"]
        return {
            "findings": findings,
            "violations": len(violations),
            "warnings": len(warnings),
            "passed": not violations,
        }
