"""Inter-platform federation: the "metaverse with frontiers" (§III-E).

"We could end up with a version of the metaverse with frontiers, in
which the regulations are applied differently."  This module makes that
scenario executable:

* :class:`PlatformBridge` connects multiple :class:`MetaverseFramework`
  instances (each its own jurisdiction).
* :meth:`travel` moves a user's avatar between platforms, carrying a
  **reputation passport** (an attested summary of the home platform's
  score, discounted by the destination's trust in the issuer) while
  consent explicitly does *not* travel — the visitor starts default-deny
  in the new jurisdiction.
* :meth:`transfer_data` moves retained sensor data between platforms
  only when the destination offers **adequate protection** (the
  GDPR-adequacy analogue): an opt-in/opt-out destination with erasure
  support may receive data from a stricter origin; a permissive
  destination may not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.framework import MetaverseFramework
from repro.core.policy import PolicyProfile
from repro.errors import FrameworkError, PolicyViolation

__all__ = ["TravelRecord", "offers_adequate_protection", "PlatformBridge"]


@dataclass(frozen=True)
class TravelRecord:
    """One completed inter-platform move."""

    user_id: str
    origin: str
    destination: str
    time: float
    reputation_carried: float


def offers_adequate_protection(
    destination: PolicyProfile, origin: PolicyProfile
) -> bool:
    """GDPR-adequacy analogue: is ``destination`` protective enough to
    receive personal data collected under ``origin``?

    Rules (simplified but directionally faithful):

    * data collected under ``consent_model="none"`` may go anywhere
      (the origin promised its subjects nothing);
    * otherwise the destination must (a) have a consent model at all,
      (b) honour erasure if the origin did, and (c) cap DP budgets at
      least as tightly *if the origin capped them* (within 4x slack,
      mirroring how adequacy decisions tolerate similar-not-identical
      regimes).
    """
    if origin.consent_model == "none":
        return True
    if destination.consent_model == "none":
        return False
    if origin.right_to_erasure and not destination.right_to_erasure:
        return False
    if origin.max_epsilon_per_subject is not None:
        if destination.max_epsilon_per_subject is None:
            return False
        if destination.max_epsilon_per_subject > 4 * origin.max_epsilon_per_subject:
            return False
    return True


class PlatformBridge:
    """Connects platforms into a federated (frontier-ed) metaverse."""

    def __init__(self) -> None:
        self._platforms: Dict[str, MetaverseFramework] = {}
        self._travels: List[TravelRecord] = []
        # Cross-platform issuer trust: (destination, origin) → weight in
        # [0, 1] applied to imported reputation passports.
        self._issuer_trust: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register_platform(self, name: str, framework: MetaverseFramework) -> None:
        if name in self._platforms:
            raise FrameworkError(f"platform {name!r} already registered")
        self._platforms[name] = framework

    def platform(self, name: str) -> MetaverseFramework:
        if name not in self._platforms:
            raise FrameworkError(f"no platform {name!r}")
        return self._platforms[name]

    def platforms(self) -> List[str]:
        return sorted(self._platforms)

    def set_issuer_trust(self, destination: str, origin: str, weight: float) -> None:
        """How much ``destination`` trusts reputation attested by
        ``origin`` (default 0.5)."""
        if not 0 <= weight <= 1:
            raise FrameworkError(f"weight must be in [0, 1], got {weight}")
        self.platform(destination)
        self.platform(origin)
        self._issuer_trust[(destination, origin)] = weight

    def issuer_trust(self, destination: str, origin: str) -> float:
        return self._issuer_trust.get((destination, origin), 0.5)

    # ------------------------------------------------------------------
    # Travel
    # ------------------------------------------------------------------
    def travel(
        self, user_id: str, origin: str, destination: str, time: float = 0.0
    ) -> TravelRecord:
        """Move ``user_id``'s avatar from ``origin`` to ``destination``.

        Effects:

        * the avatar despawns at the origin and spawns at the
          destination (deterministic entry-portal position);
        * the user's profile (latent attributes) is shared so the
          destination's sensors behave consistently;
        * a reputation passport imports a discounted version of the
          origin score as a single weighted feedback event;
        * consent does NOT travel — the visitor starts default-deny in
          the new jurisdiction (checked by tests).
        """
        src = self.platform(origin)
        dst = self.platform(destination)
        if origin == destination:
            raise FrameworkError("origin and destination are the same platform")
        if user_id not in src.world:
            raise FrameworkError(
                f"{user_id} is not present on platform {origin!r}"
            )
        if user_id in dst.world:
            raise FrameworkError(
                f"{user_id} is already present on platform {destination!r}"
            )

        # 1. Physical move.
        src.world.despawn(user_id)
        portal = (dst.config.world_size / 2.0, dst.config.world_size / 2.0)
        dst.world.spawn(user_id, portal, time=time)
        if dst.config.default_bubble_radius > 0:
            dst.world.bubbles.enable(
                user_id, radius=dst.config.default_bubble_radius
            )

        # 2. Profile continuity (the human is the same human).
        if user_id in src.profiles and user_id not in dst.profiles:
            dst.profiles[user_id] = src.profiles[user_id]
            dst.user_ids.append(user_id)
            dst.user_ids.sort()
            dst.archetypes[user_id] = src.archetypes.get(user_id)

        # 3. Reputation passport, discounted by issuer trust.
        home_score = src.reputation.score(user_id)
        weight = self.issuer_trust(destination, origin)
        carried = home_score * weight
        if carried > 0:
            dst.reputation.record(
                rater=f"passport:{origin}",
                target=user_id,
                positive=home_score >= 0.5,
                weight=max(0.1, abs(home_score - 0.5) * 4 * weight),
                time=time,
                context=f"passport from {origin}",
            )

        record = TravelRecord(
            user_id=user_id,
            origin=origin,
            destination=destination,
            time=time,
            reputation_carried=carried,
        )
        self._travels.append(record)
        return record

    @property
    def travels(self) -> List[TravelRecord]:
        return list(self._travels)

    # ------------------------------------------------------------------
    # Data transfer (adequacy)
    # ------------------------------------------------------------------
    def transfer_data(
        self, subject: str, origin: str, destination: str
    ) -> int:
        """Move ``subject``'s retained sensor data between platforms.

        Returns the number of frames transferred.

        Raises
        ------
        PolicyViolation
            If the destination's jurisdiction does not offer adequate
            protection relative to the origin's.
        FrameworkError
            If either platform runs without a retention store.
        """
        src = self.platform(origin)
        dst = self.platform(destination)
        if src.retained_data is None or dst.retained_data is None:
            raise FrameworkError(
                "both platforms need privacy pipelines to transfer data"
            )
        src_profile = src.policy_engine.profile
        dst_profile = dst.policy_engine.profile
        if not offers_adequate_protection(dst_profile, src_profile):
            raise PolicyViolation(
                f"jurisdiction {dst_profile.name!r} does not offer adequate "
                f"protection for data collected under {src_profile.name!r}"
            )
        frames = src.retained_data.frames_of(subject)
        for frame in frames:
            dst.retained_data.retain(frame)
        src.retained_data.purge(subject)
        return len(frames)
