"""Stakeholders: who must be involved in framework decisions.

Human-Centered Design, as the paper adopts it (§IV-C): "our preliminary
approach aims to involve every necessary member (developers, regulators,
users, content creators) in the design and implementation of the
metaverse."  The registry tracks each member's roles, and
:class:`RepresentationRequirement` lets the decision pipeline *verify*
— not merely hope — that a decision's electorate covered the required
roles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import FrameworkError

__all__ = ["StakeholderRole", "Stakeholder", "StakeholderRegistry", "RepresentationRequirement"]


class StakeholderRole(str, enum.Enum):
    """The roles the paper names."""

    USER = "user"
    DEVELOPER = "developer"
    REGULATOR = "regulator"
    CREATOR = "creator"
    MODERATOR = "moderator"


@dataclass
class Stakeholder:
    """One platform member with one or more roles."""

    member_id: str
    roles: Set[StakeholderRole] = field(default_factory=set)

    def has_role(self, role: StakeholderRole) -> bool:
        return role in self.roles


class StakeholderRegistry:
    """Role-indexed membership."""

    def __init__(self) -> None:
        self._members: Dict[str, Stakeholder] = {}

    def register(self, member_id: str, roles: Iterable[StakeholderRole]) -> Stakeholder:
        roles = set(roles)
        if not roles:
            raise FrameworkError(f"{member_id} must have at least one role")
        if member_id in self._members:
            self._members[member_id].roles |= roles
        else:
            self._members[member_id] = Stakeholder(member_id=member_id, roles=roles)
        return self._members[member_id]

    def get(self, member_id: str) -> Stakeholder:
        if member_id not in self._members:
            raise FrameworkError(f"unknown stakeholder {member_id}")
        return self._members[member_id]

    def __contains__(self, member_id: str) -> bool:
        return member_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def with_role(self, role: StakeholderRole) -> List[str]:
        return sorted(
            m.member_id for m in self._members.values() if m.has_role(role)
        )

    def roles_of(self, member_id: str) -> Set[StakeholderRole]:
        return set(self.get(member_id).roles)

    def all_members(self) -> List[str]:
        return sorted(self._members)


@dataclass(frozen=True)
class RepresentationRequirement:
    """Roles that must appear among a decision's participants.

    ``min_roles_present`` of the listed roles must have at least one
    participating member for the decision to count as representative.
    """

    required_roles: frozenset = frozenset(
        {StakeholderRole.USER, StakeholderRole.DEVELOPER, StakeholderRole.REGULATOR}
    )
    min_roles_present: Optional[int] = None  # None = all required roles

    def satisfied_by(
        self, participants: Iterable[str], registry: StakeholderRegistry
    ) -> bool:
        present: Set[StakeholderRole] = set()
        for member_id in participants:
            if member_id in registry:
                present |= registry.roles_of(member_id)
        covered = len(self.required_roles & present)
        needed = (
            len(self.required_roles)
            if self.min_roles_present is None
            else self.min_roles_present
        )
        return covered >= needed

    def missing_roles(
        self, participants: Iterable[str], registry: StakeholderRegistry
    ) -> Set[StakeholderRole]:
        present: Set[StakeholderRole] = set()
        for member_id in participants:
            if member_id in registry:
                present |= registry.roles_of(member_id)
        return set(self.required_roles) - present
