"""Event bus: the connective tissue between framework modules.

Fig. 3 shows modules that "can take independent decisions ... but are
still connected to other decision modules, resources, and policies".
The bus is that connection: modules publish typed events and subscribe
to topics without importing each other, keeping the architecture
modular (swap a module, its subscriptions go with it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import FrameworkError

__all__ = ["FrameworkEvent", "EventBus"]


@dataclass(frozen=True)
class FrameworkEvent:
    """One published event."""

    topic: str
    time: float
    source: str
    payload: Dict[str, Any] = field(default_factory=dict)


Subscriber = Callable[[FrameworkEvent], None]


class EventBus:
    """Topic-based publish/subscribe with a retained history.

    History retention serves the transparency requirement: auditors can
    replay everything that ever crossed the bus.
    """

    def __init__(self, history_capacity: int = 100_000):
        if history_capacity < 0:
            raise FrameworkError("history_capacity must be >= 0")
        self._subscribers: Dict[str, List[Subscriber]] = {}
        self._history: List[FrameworkEvent] = []
        self._capacity = history_capacity

    def subscribe(self, topic: str, subscriber: Subscriber) -> None:
        """Register ``subscriber`` for all events on ``topic``."""
        if not topic:
            raise FrameworkError("topic must be non-empty")
        self._subscribers.setdefault(topic, []).append(subscriber)

    def unsubscribe(self, topic: str, subscriber: Subscriber) -> bool:
        subs = self._subscribers.get(topic, [])
        if subscriber in subs:
            subs.remove(subscriber)
            return True
        return False

    def publish(
        self, topic: str, time: float, source: str, **payload: Any
    ) -> FrameworkEvent:
        """Deliver an event to all current subscribers of ``topic``."""
        event = FrameworkEvent(topic=topic, time=time, source=source, payload=payload)
        if self._capacity:
            self._history.append(event)
            if len(self._history) > self._capacity:
                del self._history[: len(self._history) - self._capacity]
        for subscriber in list(self._subscribers.get(topic, [])):
            subscriber(event)
        return event

    def history(self, topic: Optional[str] = None) -> List[FrameworkEvent]:
        if topic is None:
            return list(self._history)
        return [e for e in self._history if e.topic == topic]

    def topics(self) -> List[str]:
        return sorted(self._subscribers)
