"""Ethical Hierarchy of Needs scoring (paper §IV-C, Fig. 3).

The paper aligns its architecture with the 'Ethical Hierarchy of Needs'
(Balkan, CC BY 4.0): **human rights** at the base, **human effort**
above it, **human experience** at the top.  This module turns each layer
into concrete, measurable checks against a live platform, so that
experiment E9 can *score* architectures instead of asserting virtue:

Human rights     — privacy defaults (default-deny consent, PET coverage,
                   budget caps), transparency (module descriptions, audit
                   ledger, anchored decisions), no data monopoly.
Human effort     — decision participation (turnout), stakeholder
                   representation, reputation/feedback activity,
                   moderation effectiveness (abuse actually addressed).
Human experience — benign interactions delivered (not over-blocked),
                   low harassment exposure, safety mitigations active.

Each check yields [0, 1]; a layer is the mean of its checks; the overall
score is the mean of layers *weighted by the hierarchy* (rights count
double — a delightful experience on a rights-violating platform is not
ethical design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

__all__ = ["LayerScore", "EthicsScorecard", "score_platform"]


@dataclass(frozen=True)
class LayerScore:
    """One hierarchy layer's score with its per-check breakdown."""

    layer: str
    checks: Dict[str, float]

    @property
    def score(self) -> float:
        if not self.checks:
            return 0.0
        return sum(self.checks.values()) / len(self.checks)


@dataclass(frozen=True)
class EthicsScorecard:
    """The full three-layer scorecard."""

    human_rights: LayerScore
    human_effort: LayerScore
    human_experience: LayerScore

    @property
    def overall(self) -> float:
        """Hierarchy-weighted mean: rights ×2, effort ×1.5, experience ×1."""
        weighted = (
            2.0 * self.human_rights.score
            + 1.5 * self.human_effort.score
            + 1.0 * self.human_experience.score
        )
        return weighted / 4.5

    def as_dict(self) -> Dict[str, Any]:
        return {
            "overall": self.overall,
            "human_rights": {
                "score": self.human_rights.score,
                "checks": dict(self.human_rights.checks),
            },
            "human_effort": {
                "score": self.human_effort.score,
                "checks": dict(self.human_effort.checks),
            },
            "human_experience": {
                "score": self.human_experience.score,
                "checks": dict(self.human_experience.checks),
            },
        }

    def render(self) -> str:
        lines = [f"overall ethics score: {self.overall:.3f}"]
        for layer in (self.human_rights, self.human_effort, self.human_experience):
            lines.append(f"  {layer.layer}: {layer.score:.3f}")
            for check, value in sorted(layer.checks.items()):
                lines.append(f"    {check:<36s} {value:.3f}")
        return "\n".join(lines)


def _clamp(value: float) -> float:
    return max(0.0, min(1.0, float(value)))


def score_platform(observations: Mapping[str, Any]) -> EthicsScorecard:
    """Score a platform from an observation dict.

    The framework assembles ``observations`` from live components (see
    :meth:`MetaverseFramework.ethics_observations`); scoring from a
    plain mapping keeps this module independently testable and usable
    on external platforms.

    Recognised keys (all optional; missing = worst case for that check):

    rights: ``consent_default_deny`` (bool), ``pet_coverage`` [0,1],
    ``budget_capped`` (bool), ``audit_ledger`` (bool),
    ``transparency_described_modules`` [0,1], ``decisions_anchored``
    (bool), ``data_monopoly_hhi`` [0,1] (lower is better),
    ``bystander_protection`` (bool).

    effort: ``mean_turnout`` [0,1], ``representative_fraction`` [0,1],
    ``reputation_active`` (bool), ``moderation_recall`` [0,1],
    ``moderation_precision`` [0,1].

    experience: ``benign_delivery_rate`` [0,1],
    ``harassment_exposure`` [0,1] (lower is better),
    ``safety_mitigations`` [0,1], ``creation_openness`` [0,1].
    """
    obs = dict(observations)

    rights = LayerScore(
        layer="human_rights",
        checks={
            "consent_default_deny": 1.0 if obs.get("consent_default_deny") else 0.0,
            "pet_coverage": _clamp(obs.get("pet_coverage", 0.0)),
            "budget_capped": 1.0 if obs.get("budget_capped") else 0.0,
            "audit_ledger": 1.0 if obs.get("audit_ledger") else 0.0,
            "module_transparency": _clamp(
                obs.get("transparency_described_modules", 0.0)
            ),
            "decisions_anchored": 1.0 if obs.get("decisions_anchored") else 0.0,
            "no_data_monopoly": _clamp(1.0 - obs.get("data_monopoly_hhi", 1.0)),
            "bystander_protection": 1.0 if obs.get("bystander_protection") else 0.0,
        },
    )
    effort = LayerScore(
        layer="human_effort",
        checks={
            "decision_turnout": _clamp(obs.get("mean_turnout", 0.0)),
            "stakeholder_representation": _clamp(
                obs.get("representative_fraction", 0.0)
            ),
            "reputation_active": 1.0 if obs.get("reputation_active") else 0.0,
            "moderation_recall": _clamp(obs.get("moderation_recall", 0.0)),
            "moderation_precision": _clamp(obs.get("moderation_precision", 0.0)),
        },
    )
    experience = LayerScore(
        layer="human_experience",
        checks={
            "benign_delivery": _clamp(obs.get("benign_delivery_rate", 0.0)),
            "low_harassment_exposure": _clamp(
                1.0 - obs.get("harassment_exposure", 1.0)
            ),
            "safety_mitigations": _clamp(obs.get("safety_mitigations", 0.0)),
            "creation_openness": _clamp(obs.get("creation_openness", 0.0)),
        },
    )
    return EthicsScorecard(
        human_rights=rights,
        human_effort=effort,
        human_experience=experience,
    )
