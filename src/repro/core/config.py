"""Framework configuration.

One :class:`FrameworkConfig` fully determines a scenario together with
its seed (see DESIGN.md §6 on determinism).  The two named presets are
the architectures experiment E9 compares:

* :meth:`FrameworkConfig.modular_default` — the paper's proposal:
  DAO-governed, ledger-audited, PET-protected, transparent modules.
* :meth:`FrameworkConfig.monolithic_baseline` — a centralised platform:
  operator-decided, unaudited, permissive defaults, opaque internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.policy import GDPR_LIKE, PERMISSIVE, PolicyProfile
from repro.errors import ConfigurationError

__all__ = ["FrameworkConfig"]


@dataclass(frozen=True)
class FrameworkConfig:
    """Everything needed to build a :class:`MetaverseFramework`."""

    seed: int = 0

    # Population ---------------------------------------------------------
    n_users: int = 60
    user_id_prefix: str = "user"  # namespace ids when federating platforms
    harasser_fraction: float = 0.06
    spammer_fraction: float = 0.03
    troll_fraction: float = 0.02
    creator_fraction: float = 0.15
    scammer_creator_fraction: float = 0.25  # of creators
    developer_count: int = 3
    regulator_count: int = 2
    moderator_count: int = 2

    # World ----------------------------------------------------------------
    world_size: float = 80.0
    default_bubble_radius: float = 1.5  # 0 disables default bubbles
    rate_limit_per_epoch: int = 15

    # Governance -----------------------------------------------------------
    governance_mode: str = "modular"  # "modular" | "monolithic"
    moderation_config: str = "hybrid"  # "none"|"automated"|"reports"|"hybrid"
    moderator_capacity: int = 30
    report_probability: float = 0.35
    classifier_tpr: float = 0.8
    classifier_fpr: float = 0.05

    # Privacy ---------------------------------------------------------------
    policy_profile: PolicyProfile = GDPR_LIKE
    enable_privacy_pipeline: bool = True
    pet_epsilon: float = 1.0
    consent_rate: float = 0.9  # opt-in probability per user/channel
    sensor_sample_fraction: float = 0.3  # users sampled per epoch

    # Ledger ------------------------------------------------------------------
    enable_ledger: bool = True
    collector_parties: int = 3

    # DAO -------------------------------------------------------------------
    voting_period: float = 5.0
    attention_budget: float = 6.0
    member_engagement: float = 0.8
    dao_quorum: float = 0.15

    # Economy -----------------------------------------------------------------
    enable_market: bool = True
    buyer_budget: float = 200.0

    # Safety ------------------------------------------------------------------
    safety_shadow_avatars: bool = True
    safety_redirected_walking: bool = True

    # Observability ----------------------------------------------------------
    # Causal spans + substrate events + metrics (the paper's §IV-C
    # transparency requirement); deterministic, so it defaults on.
    enable_observability: bool = True
    # Wall-clock timing of engine event callbacks; off by default since
    # wall times are not deterministic (they never enter the trace log).
    enable_profiling: bool = False
    # Histogram storage: "exact" keeps every sample (byte-identical
    # summaries, unbounded memory); "sketch" bounds memory per metric
    # with a deterministic quantile sketch (±~0.5% rank error) for
    # population-scale runs.  Exact stays the default so replay
    # comparisons are bit-for-bit.
    histogram_backend: str = "exact"

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ConfigurationError(f"n_users must be >= 1, got {self.n_users}")
        if self.governance_mode not in ("modular", "monolithic"):
            raise ConfigurationError(
                f"governance_mode must be modular|monolithic, "
                f"got {self.governance_mode!r}"
            )
        if self.moderation_config not in ("none", "automated", "reports", "hybrid"):
            raise ConfigurationError(
                f"unknown moderation_config {self.moderation_config!r}"
            )
        fractions = (
            self.harasser_fraction
            + self.spammer_fraction
            + self.troll_fraction
        )
        if fractions > 1:
            raise ConfigurationError("misconduct fractions exceed 1")
        if not 0 <= self.consent_rate <= 1:
            raise ConfigurationError(
                f"consent_rate must be in [0, 1], got {self.consent_rate}"
            )
        if not 0 <= self.sensor_sample_fraction <= 1:
            raise ConfigurationError(
                "sensor_sample_fraction must be in [0, 1], "
                f"got {self.sensor_sample_fraction}"
            )
        if self.histogram_backend not in ("exact", "sketch"):
            raise ConfigurationError(
                f"histogram_backend must be exact|sketch, "
                f"got {self.histogram_backend!r}"
            )

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def modular_default(cls, seed: int = 0, **overrides) -> "FrameworkConfig":
        """The paper's architecture (Fig. 3)."""
        return cls(seed=seed, **overrides)

    @classmethod
    def monolithic_baseline(cls, seed: int = 0, **overrides) -> "FrameworkConfig":
        """A centralised, opaque, permissive platform."""
        defaults = dict(
            governance_mode="monolithic",
            policy_profile=PERMISSIVE,
            enable_ledger=False,
            enable_privacy_pipeline=False,
            default_bubble_radius=0.0,
            moderation_config="automated",
            safety_shadow_avatars=False,
            safety_redirected_walking=False,
        )
        defaults.update(overrides)
        return cls(seed=seed, **defaults)

    def with_overrides(self, **overrides) -> "FrameworkConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)
