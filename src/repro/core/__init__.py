"""The paper's contribution: the modular ethical-design framework (§IV-C).

``MetaverseFramework`` composes every substrate behind interchangeable,
self-describing modules; decisions about the platform flow through
stakeholder-representative DAO votes; policy profiles swap per
jurisdiction; the ethics scorecard measures the result against the
Ethical Hierarchy of Needs; and the transparency auditor verifies the
paper's §II-D duties against the live system.
"""

from repro.core.audit import AuditFinding, TransparencyAuditor
from repro.core.config import FrameworkConfig
from repro.core.decisions import ChangeRequest, DecisionPipeline, DecisionRecord
from repro.core.ethics import EthicsScorecard, LayerScore, score_platform
from repro.core.events import EventBus, FrameworkEvent
from repro.core.federation import (
    PlatformBridge,
    TravelRecord,
    offers_adequate_protection,
)
from repro.core.framework import MetaverseFramework
from repro.core.modules import (
    FrameworkModule,
    ModuleRegistry,
    ModuleSlot,
    SwapRecord,
)
from repro.core.policy import (
    CCPA_LIKE,
    GDPR_LIKE,
    PERMISSIVE,
    ComplianceIssue,
    PolicyEngine,
    PolicyProfile,
)
from repro.core.stakeholders import (
    RepresentationRequirement,
    Stakeholder,
    StakeholderRegistry,
    StakeholderRole,
)

__all__ = [
    "AuditFinding",
    "TransparencyAuditor",
    "FrameworkConfig",
    "ChangeRequest",
    "DecisionPipeline",
    "DecisionRecord",
    "EthicsScorecard",
    "LayerScore",
    "score_platform",
    "EventBus",
    "FrameworkEvent",
    "PlatformBridge",
    "TravelRecord",
    "offers_adequate_protection",
    "MetaverseFramework",
    "FrameworkModule",
    "ModuleRegistry",
    "ModuleSlot",
    "SwapRecord",
    "CCPA_LIKE",
    "GDPR_LIKE",
    "PERMISSIVE",
    "ComplianceIssue",
    "PolicyEngine",
    "PolicyProfile",
    "RepresentationRequirement",
    "Stakeholder",
    "StakeholderRegistry",
    "StakeholderRole",
]
