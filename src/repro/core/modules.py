"""The module abstraction: interchangeable framework components.

The paper's central design statement (§IV-C): "Figure 3 illustrates
several examples of modules that will realize a specific task ... All
the modules are interchangeable."

A :class:`FrameworkModule` fills one *slot* (privacy, governance,
decision-making, reputation, economy, safety, policy); the
:class:`ModuleRegistry` enforces one module per slot, supports hot
swapping (the old module detaches, the new one attaches), and keeps a
swap history — itself part of the transparency story, since module
changes are exactly the "changes in the metaverse" the paper says must
be collectively decided and visible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.errors import FrameworkError, ModuleNotFound

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.framework import MetaverseFramework

__all__ = ["ModuleSlot", "FrameworkModule", "ModuleRegistry", "SwapRecord"]


class ModuleSlot(str, enum.Enum):
    """The module slots of Fig. 3."""

    PRIVACY = "privacy"
    GOVERNANCE = "governance"
    DECISION = "decision"
    REPUTATION = "reputation"
    ECONOMY = "economy"
    SAFETY = "safety"
    POLICY = "policy"


class FrameworkModule:
    """Base class for swappable modules.

    Subclasses override :meth:`on_attach` / :meth:`on_detach` to wire
    and unwire themselves (bus subscriptions, world hooks), and
    :meth:`describe` to satisfy the transparency requirement — a
    description any member can read.
    """

    slot: ModuleSlot = ModuleSlot.POLICY
    name = "abstract"

    def __init__(self) -> None:
        self._attached_to: Optional["MetaverseFramework"] = None

    @property
    def is_attached(self) -> bool:
        return self._attached_to is not None

    @property
    def framework(self) -> "MetaverseFramework":
        if self._attached_to is None:
            raise FrameworkError(f"module {self.name!r} is not attached")
        return self._attached_to

    def attach(self, framework: "MetaverseFramework") -> None:
        if self._attached_to is not None:
            raise FrameworkError(f"module {self.name!r} already attached")
        self._attached_to = framework
        self.on_attach(framework)

    def detach(self) -> None:
        if self._attached_to is None:
            raise FrameworkError(f"module {self.name!r} is not attached")
        framework = self._attached_to
        self.on_detach(framework)
        self._attached_to = None

    # Hooks -------------------------------------------------------------
    def on_attach(self, framework: "MetaverseFramework") -> None:
        """Wire the module into the framework (override)."""

    def on_detach(self, framework: "MetaverseFramework") -> None:
        """Unwire the module (override)."""

    def on_epoch(self, framework: "MetaverseFramework", time: float) -> None:
        """Called once per scenario epoch while attached (override)."""

    def describe(self) -> Dict[str, Any]:
        """Human-readable, machine-queryable self-description."""
        return {"name": self.name, "slot": self.slot.value}


@dataclass(frozen=True)
class SwapRecord:
    """One module change, for the public swap history."""

    slot: str
    old_module: Optional[str]
    new_module: str
    time: float
    authorized_by: str


class ModuleRegistry:
    """One module per slot, hot-swappable, with public history."""

    def __init__(self) -> None:
        self._modules: Dict[ModuleSlot, FrameworkModule] = {}
        self._history: List[SwapRecord] = []

    def mount(
        self,
        module: FrameworkModule,
        framework: "MetaverseFramework",
        time: float = 0.0,
        authorized_by: str = "operator",
    ) -> None:
        """Attach ``module`` into its slot, detaching any incumbent."""
        incumbent = self._modules.get(module.slot)
        if incumbent is not None:
            incumbent.detach()
        module.attach(framework)
        self._modules[module.slot] = module
        self._history.append(
            SwapRecord(
                slot=module.slot.value,
                old_module=incumbent.name if incumbent else None,
                new_module=module.name,
                time=time,
                authorized_by=authorized_by,
            )
        )

    def unmount(self, slot: ModuleSlot, time: float = 0.0, authorized_by: str = "operator") -> None:
        module = self._modules.pop(slot, None)
        if module is None:
            raise ModuleNotFound(f"no module mounted in slot {slot.value!r}")
        module.detach()
        self._history.append(
            SwapRecord(
                slot=slot.value,
                old_module=module.name,
                new_module="(none)",
                time=time,
                authorized_by=authorized_by,
            )
        )

    def get(self, slot: ModuleSlot) -> FrameworkModule:
        module = self._modules.get(slot)
        if module is None:
            raise ModuleNotFound(f"no module mounted in slot {slot.value!r}")
        return module

    def has(self, slot: ModuleSlot) -> bool:
        return slot in self._modules

    def mounted(self) -> Dict[str, str]:
        """slot → module name for everything mounted."""
        return {slot.value: m.name for slot, m in sorted(
            self._modules.items(), key=lambda kv: kv[0].value
        )}

    def describe_all(self) -> List[Dict[str, Any]]:
        """The public, transparent description of every active module."""
        return [m.describe() for _, m in sorted(
            self._modules.items(), key=lambda kv: kv[0].value
        )]

    @property
    def swap_history(self) -> List[SwapRecord]:
        return list(self._history)

    # Epoch tick order: behaviour/moderation first, then data collection,
    # the economy, collective decisions, the ledger seal, and upkeep.
    EPOCH_ORDER = (
        ModuleSlot.GOVERNANCE,
        ModuleSlot.PRIVACY,
        ModuleSlot.ECONOMY,
        ModuleSlot.DECISION,
        ModuleSlot.POLICY,
        ModuleSlot.REPUTATION,
        ModuleSlot.SAFETY,
    )

    def run_epoch(self, framework: "MetaverseFramework", time: float) -> None:
        """Give every mounted module its epoch tick in EPOCH_ORDER."""
        for slot in self.EPOCH_ORDER:
            module = self._modules.get(slot)
            if module is not None:
                module.on_epoch(framework, time)
