"""Population-scale load workload: the scaling story made executable.

The paper's governance mechanisms are proposed for platforms with
*millions* of concurrent users; the unit scenarios elsewhere in this
package run dozens.  This workload closes that gap: a seeded synthetic
population (100k agents by default) drives the four hot substrate paths
for N epochs —

* **transactions** — fee-market transfers through the mempool's indexed
  selection into blocks;
* **trust ratings** — positive feedback into the reputation system,
  with the warm-started sparse EigenTrust solve refreshed every epoch;
* **reports** — negative feedback (misconduct reports) into the same
  reputation graph, with severities recorded;
* **votes** — one DAO proposal per epoch, ballots from a sampled
  electorate, closed at the epoch boundary;
* **moderation** — one columnar :class:`InteractionBatch` per epoch
  through the batched moderation pipeline (vectorized classification,
  reports, capacity-bounded review, graduated sanctions without a
  ``World``);
* **privacy budget** — a burst of DP charges per epoch through
  :meth:`PrivacyBudget.charge_many`, concentrated on a hot subset so
  caps genuinely exhaust and refusals exercise the deny path.

Everything is deterministic given the seed: agent addresses are hash
derived, sampling uses a dedicated ``random.Random``, and no wall-clock
value ever enters the metrics, so two runs with the same parameters
produce byte-identical result payloads (the scaling benchmark asserts
this).  Histograms default to the bounded ``sketch`` backend so memory
stays O(1) per metric no matter how many samples stream through.

Signing is the one place the workload diverges from production objects:
real Lamport/Merkle wallets cost seconds *each* to derive, which at
100k agents would measure key generation rather than the ledger.
:func:`synthetic_transfer` builds duck-typed signed transactions over
real :class:`~repro.ledger.transactions.Transaction` records — real
hashes, real nonce/balance semantics, ``verify()`` pinned true — so the
mempool, block assembly, and state machine all run their actual code
paths at full population scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.dao.dao import DAO
from repro.dao.members import Member
from repro.governance.moderation import (
    AbuseClassifier,
    HumanModeratorPool,
    ModerationService,
    ReportDesk,
)
from repro.governance.sanctions import GraduatedSanctionPolicy
from repro.ledger.chain import Blockchain
from repro.ledger.consensus import PoAConsensus
from repro.ledger.crypto import sha256
from repro.ledger.transactions import Transaction, TxKind
from repro.privacy.budget import PrivacyBudget
from repro.reputation.system import ReputationSystem
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import RngRegistry
from repro.workloads.generators import synthetic_interaction_batch

__all__ = [
    "SyntheticSignedTransaction",
    "synthetic_transfer",
    "agent_address",
    "LoadRunResult",
    "run_load",
]


class SyntheticSignedTransaction:
    """A signed-transaction stand-in with the signature check pinned.

    Wraps a *real* :class:`Transaction` (real canonical encoding, real
    tx_id hash, real nonce/fee/balance semantics) but skips Lamport key
    material, whose generation cost would dominate any population-scale
    measurement.  Safe only for workloads/benchmarks — never for
    consensus tests, which must exercise real signatures.
    """

    __slots__ = ("tx",)

    def __init__(self, tx: Transaction):
        self.tx = tx

    @property
    def tx_id(self) -> str:
        return self.tx.tx_id

    def verify(self) -> bool:
        return True

    def require_valid(self) -> None:
        return None


def synthetic_transfer(
    sender: str,
    recipient: str,
    amount: int,
    fee: int,
    nonce: int,
) -> SyntheticSignedTransaction:
    """A synthetic TRANSFER ready for mempool admission."""
    return SyntheticSignedTransaction(
        Transaction(
            sender=sender,
            recipient=recipient,
            amount=amount,
            fee=fee,
            nonce=nonce,
            kind=TxKind.TRANSFER,
        )
    )


def agent_address(i: int) -> str:
    """Deterministic 32-byte hex address for synthetic agent ``i``."""
    return sha256(f"load-agent-{i}".encode()).hex()


@dataclass(frozen=True)
class LoadRunResult:
    """Outcome of one load run; ``metrics`` is fully deterministic."""

    n_agents: int
    epochs: int
    chain_height: int
    txs_submitted: int
    txs_included: int
    ratings_recorded: int
    reports_filed: int
    votes_cast: int
    proposals_closed: int
    trust_computes: int
    trust_sweeps: int
    interactions_processed: int
    cases_opened: int
    cases_reviewed: int
    moderation_backlog: int
    privacy_charges: int
    privacy_refusals: int
    metrics: Dict[str, Any]


def run_load(
    n_agents: int = 100_000,
    epochs: int = 5,
    seed: int = 2022,
    txs_per_epoch: int = 1_000,
    ratings_per_epoch: int = 500,
    reports_per_epoch: int = 200,
    votes_per_epoch: int = 300,
    block_size: int = 250,
    histogram_backend: str = "sketch",
    electorate_size: Optional[int] = 5_000,
    interactions_per_epoch: int = 2_000,
    privacy_charges_per_epoch: int = 2_000,
    privacy_cap: float = 4.0,
) -> LoadRunResult:
    """Run the population-scale workload; see the module docstring.

    ``electorate_size`` bounds DAO membership (member objects carry
    per-member attention state, which at full population size would be
    setup cost, not load); pass None to enrol every agent.
    ``privacy_cap`` is the per-subject epsilon cap; charges target a hot
    1% subset of the population so the cap actually binds.
    """
    rng = random.Random(seed)
    rngs = RngRegistry(seed=seed)
    registry = MetricsRegistry(histogram_backend=histogram_backend)

    agents = [agent_address(i) for i in range(n_agents)]
    validator = sha256(b"load-validator").hex()

    chain = Blockchain(
        PoAConsensus([validator]),
        genesis_balances={a: 1_000_000 for a in agents},
    )
    reputation = ReputationSystem(pretrusted=agents[: max(1, n_agents // 1000)])
    # The whole population is known to the reputation layer up front, so
    # the per-epoch trust solve runs at population scale (the point of
    # this workload), not just over the handful of agents sampled so far.
    for address in agents:
        reputation.register_identity(address)

    n_members = n_agents if electorate_size is None else min(n_agents, electorate_size)
    dao = DAO(name="load")
    for address in agents[:n_members]:
        dao.add_member(Member(address=address, tokens=1.0))

    # Moderation runs sans World: sanctions track offenders by address,
    # and interactions arrive as columnar batches, never avatar objects.
    moderation = ModerationService(
        sanctions=GraduatedSanctionPolicy(world=None),
        classifier=AbuseClassifier(rngs.stream("load.moderation.classifier")),
        report_desk=ReportDesk(rngs.stream("load.moderation.reports")),
        reviewer=HumanModeratorPool(
            rngs.stream("load.moderation.reviewer"),
            capacity_per_epoch=max(20, interactions_per_epoch // 20),
        ),
    )
    interactions_rng = rngs.stream("load.interactions")

    budget = PrivacyBudget(default_cap=privacy_cap)
    privacy_rng = rngs.stream("load.privacy")
    # Hot subjects: ~1% of the population absorbs every charge, so caps
    # exhaust mid-run and the refusal path carries real traffic.
    n_hot = max(1, n_agents // 100)

    nonces = [0] * n_agents
    txs_submitted = txs_included = 0
    ratings = reports = votes_cast = proposals_closed = 0
    interactions_processed = cases_opened = cases_reviewed = 0
    privacy_charges = privacy_refusals = 0

    for epoch in range(epochs):
        now = float(epoch)

        # Transactions: weighted fee market, nonce-ordered per sender.
        for _ in range(txs_per_epoch):
            s = rng.randrange(n_agents)
            r = rng.randrange(n_agents)
            if r == s:
                r = (r + 1) % n_agents
            fee = rng.randint(1, 100)
            stx = synthetic_transfer(
                agents[s], agents[r], amount=rng.randint(1, 50), fee=fee,
                nonce=nonces[s],
            )
            if chain.mempool.submit(stx, chain.state, time=now):
                nonces[s] += 1
                txs_submitted += 1
                registry.histogram("load.tx.fee").observe(float(fee))
        while len(chain.mempool) > 0:
            block = chain.propose_block(
                validator, timestamp=now + 0.1, max_txs=block_size
            )
            if not block.transactions:
                break
            txs_included += len(block.transactions)
            registry.histogram("load.block.txs").observe(
                float(len(block.transactions))
            )

        # Trust ratings: positive feedback between random agent pairs.
        for _ in range(ratings_per_epoch):
            a = rng.randrange(n_agents)
            b = rng.randrange(n_agents)
            if b == a:
                b = (b + 1) % n_agents
            weight = rng.uniform(0.1, 1.0)
            reputation.record(
                agents[a], agents[b], positive=True, time=now, weight=weight
            )
            ratings += 1
            registry.histogram("load.rating.weight").observe(weight)

        # Reports: negative feedback with a severity distribution.
        for _ in range(reports_per_epoch):
            reporter = rng.randrange(n_agents)
            accused = rng.randrange(n_agents)
            if accused == reporter:
                accused = (accused + 1) % n_agents
            severity = rng.uniform(0.2, 1.0)
            reputation.record(
                agents[reporter],
                agents[accused],
                positive=False,
                time=now,
                weight=severity,
                context="report",
            )
            reports += 1
            registry.counter("load.reports.filed").inc()
            registry.histogram("load.report.severity").observe(severity)

        # One governance proposal per epoch, voted on by a sample.
        proposal = dao.submit_proposal(
            title=f"epoch-{epoch} parameter change",
            proposer=agents[0],
            topic="governance",
            created_at=now,
            voting_period=0.5,
        )
        for _ in range(min(votes_per_epoch, n_members)):
            voter = agents[rng.randrange(n_members)]
            try:
                dao.cast_ballot(
                    proposal.proposal_id,
                    voter,
                    option="yes" if rng.random() < 0.6 else "no",
                    time=now + 0.2,
                )
            except Exception:
                continue  # duplicate voter in the sample
            votes_cast += 1
        proposals_closed += len(dao.close_due(now + 1.0))

        # Moderation: one columnar batch through the vectorized pipeline.
        if interactions_per_epoch > 0:
            batch = synthetic_interaction_batch(
                n_agents,
                interactions_per_epoch,
                time=now,
                rng=interactions_rng,
                id_of=agent_address,
            )
            summary = moderation.process_batch(batch, time=now)
            interactions_processed += len(batch)
            cases_opened += summary["opened"]
            cases_reviewed += summary["reviewed"]
            registry.counter("load.moderation.flagged").inc(summary["flagged"])
            registry.counter("load.moderation.reported").inc(summary["reported"])
            registry.counter("load.moderation.reviewed").inc(summary["reviewed"])
            registry.gauge("load.moderation.backlog").set(
                float(summary["backlog"])
            )

        # Privacy budget: a batched burst of DP charges on hot subjects.
        if privacy_charges_per_epoch > 0:
            hot = privacy_rng.integers(0, n_hot, size=privacy_charges_per_epoch)
            epsilons = privacy_rng.uniform(
                0.05, 0.5, size=privacy_charges_per_epoch
            )
            accepted = budget.charge_many(
                [agents[i] for i in hot],
                epsilons.tolist(),
                channel="telemetry",
                time=now,
                record_ledger=False,
            )
            granted = sum(accepted)
            privacy_charges += len(accepted)
            privacy_refusals += len(accepted) - granted
            registry.counter("load.privacy.charges").inc(len(accepted))
            registry.counter("load.privacy.refusals").inc(
                len(accepted) - granted
            )
            for epsilon, ok in zip(epsilons, accepted):
                if ok:
                    registry.histogram("load.privacy.epsilon").observe(
                        float(epsilon)
                    )

        # Refresh global trust once per epoch: the warm-started sparse
        # solve is the measured reputation write path.
        trust = reputation.global_trust()
        top = max(trust.values()) if trust else 0.0
        registry.gauge("load.trust.top").set(top)
        registry.counter("load.epochs").inc()

    return LoadRunResult(
        n_agents=n_agents,
        epochs=epochs,
        chain_height=chain.height,
        txs_submitted=txs_submitted,
        txs_included=txs_included,
        ratings_recorded=ratings,
        reports_filed=reports,
        votes_cast=votes_cast,
        proposals_closed=proposals_closed,
        trust_computes=reputation.trust_compute_count,
        trust_sweeps=reputation.trust_sweep_count,
        interactions_processed=interactions_processed,
        cases_opened=cases_opened,
        cases_reviewed=cases_reviewed,
        moderation_backlog=moderation.backlog,
        privacy_charges=privacy_charges,
        privacy_refusals=privacy_refusals,
        metrics=registry.as_dict(),
    )
