"""Population-scale load workload: the scaling story made executable.

The paper's governance mechanisms are proposed for platforms with
*millions* of concurrent users; the unit scenarios elsewhere in this
package run dozens.  This workload closes that gap: a seeded synthetic
population (100k agents by default) drives the hot substrate paths for N
epochs —

* **transactions** — fee-market transfers through the mempool's indexed
  selection into blocks;
* **trust ratings** — positive feedback into the reputation system,
  with the warm-started sparse EigenTrust solve refreshed every epoch;
* **reports** — negative feedback (misconduct reports) into the same
  reputation graph, with severities recorded;
* **votes** — one DAO proposal per epoch, ballots from a sampled
  electorate, closed at the epoch boundary;
* **moderation** — one columnar :class:`InteractionBatch` per epoch
  through the batched moderation pipeline (vectorized classification,
  reports, capacity-bounded review, graduated sanctions without a
  ``World``);
* **privacy** — full :class:`~repro.privacy.sensors.SensorFrame`
  streams through :meth:`PrivacyPipeline.ingest_all` (consent gate,
  per-channel Laplace PETs, DP budget metering, disclosure), on a hot
  subject subset so caps genuinely exhaust;
* **cascades** — one misinformation cascade per shard per epoch over
  shard-interior social edges, cross-shard activations exchanged at the
  epoch barrier.

Sharded execution
-----------------
The society is partitioned into ``n_shards`` contiguous index ranges by
a :class:`~repro.parallel.plan.ShardPlan`; generation and the
embarrassingly-parallel admission work run per shard
(:func:`~repro.parallel.worker.run_shard_epoch`), and the serial
substrate state — chain, reputation solve, DAO tally, moderation queue,
privacy pipeline, metrics — advances at epoch barriers by folding the
shard results **in shard-id order**.  ``workers`` is purely a
scheduling knob: the shard structure (and hence every random stream) is
fixed by ``(seed, n_shards)``, workers are pure functions of their
tasks, and the reduction never observes completion order, so
``run_load(workers=K)`` returns byte-identical metrics and traces for
**any** K — the equivalence tests and benches assert it.

Cross-shard effects use a two-phase protocol: transfer debits are
validated shard-locally (senders are shard-owned), credits to other
shards apply at the barrier through the parent ledger; workers predict
their privacy-budget admissions against a shipped spend snapshot and
the parent asserts the authoritative pipeline agreed; cascade boundary
activations are exchanged at the barrier by a parent-owned stream and
seed the neighbouring shard's cascade next epoch.

Everything is deterministic given the seed: agent addresses are hash
derived, no wall-clock value ever enters the metrics, and histograms
default to the bounded ``sketch`` backend so memory stays O(1) per
metric no matter how many samples stream through.

Signing is the one place the workload diverges from production objects:
real Lamport/Merkle wallets cost seconds *each* to derive, which at
100k agents would measure key generation rather than the ledger.
:func:`synthetic_transfer` builds duck-typed signed transactions over
real :class:`~repro.ledger.transactions.Transaction` records — real
hashes, real nonce/balance semantics, ``verify()`` pinned true — so the
mempool, block assembly, and state machine all run their actual code
paths at full population scale.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.dao.dao import DAO
from repro.dao.members import Member
from repro.governance.moderation import (
    AbuseClassifier,
    HumanModeratorPool,
    ModerationService,
    ReportDesk,
)
from repro.governance.sanctions import GraduatedSanctionPolicy
from repro.ledger.chain import Blockchain
from repro.ledger.consensus import PoAConsensus
from repro.ledger.crypto import sha256
from repro.ledger.state import LedgerState
from repro.ledger.transactions import Transaction, TxKind
from repro.obs.exporters import trace_to_jsonl
from repro.obs.imbalance import ShardImbalance
from repro.obs.instrument import Instrumentation
from repro.obs.shipcost import ShipCost
from repro.parallel.plan import (
    DEFAULT_COST_MODEL,
    ShardPlan,
    activity_weights,
    auto_shard_count,
    blend_profile,
    split_weighted,
    weighted_boundaries,
)
from repro.parallel.pool import shared_pool
from repro.parallel.reduce import (
    check_shard_order,
    merge_boundary_activations,
    merge_interaction_batches,
    sum_predicted_outcomes,
)
from repro.parallel.steal import (
    fold_chunk_results,
    make_chunk_tasks,
    run_shard_chunk,
)
from repro.parallel.transport import ColumnPlane, shm_available
from repro.parallel.worker import (
    CHUNK_PHASES,
    PHASE_NAMES,
    ShardTask,
    channel_of,
    run_shard_epoch,
    warm_caches,
)
from repro.privacy.budget import PrivacyBudget
from repro.privacy.consent import ConsentRegistry
from repro.privacy.pets import LaplaceMechanism
from repro.privacy.pipeline import PrivacyPipeline
from repro.reputation.system import ReputationSystem
from repro.sim.metrics import MetricsRegistry
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceLog
from repro.world.columnar import AgentTable

__all__ = [
    "SyntheticSignedTransaction",
    "synthetic_transfer",
    "agent_address",
    "agent_addresses",
    "LoadRunResult",
    "run_load",
    "DEFAULT_CHANNELS",
    "HOT_STRIDE",
]


class SyntheticSignedTransaction:
    """A signed-transaction stand-in with the signature check pinned.

    Wraps a *real* :class:`Transaction` (real canonical encoding, real
    tx_id hash, real nonce/fee/balance semantics) but skips Lamport key
    material, whose generation cost would dominate any population-scale
    measurement.  Safe only for workloads/benchmarks — never for
    consensus tests, which must exercise real signatures.
    """

    __slots__ = ("tx",)

    def __init__(self, tx: Transaction):
        self.tx = tx

    @property
    def tx_id(self) -> str:
        return self.tx.tx_id

    def verify(self) -> bool:
        return True

    def require_valid(self) -> None:
        return None


def synthetic_transfer(
    sender: str,
    recipient: str,
    amount: int,
    fee: int,
    nonce: int,
) -> SyntheticSignedTransaction:
    """A synthetic TRANSFER ready for mempool admission."""
    return SyntheticSignedTransaction(
        Transaction(
            sender=sender,
            recipient=recipient,
            amount=amount,
            fee=fee,
            nonce=nonce,
            kind=TxKind.TRANSFER,
        )
    )


# Addresses are pure in the agent index, so one growing process-global
# table serves every population size.  Hot per-epoch loops used to
# re-format and re-hash the string on every call; now the first request
# for a population bulk-generates the prefix once and every later call
# is a list index.
_ADDRESS_TABLE: List[str] = []


def _extend_address_table(n: int) -> None:
    start = len(_ADDRESS_TABLE)
    _ADDRESS_TABLE.extend(
        sha256(f"load-agent-{i}".encode()).hex() for i in range(start, n)
    )


def agent_address(i: int) -> str:
    """Deterministic 32-byte hex address for synthetic agent ``i``
    (served from the bulk-generated, memoized address table)."""
    if i >= len(_ADDRESS_TABLE):
        _extend_address_table(i + 1)
    return _ADDRESS_TABLE[i]


def agent_addresses(n: int) -> List[str]:
    """The first ``n`` agent addresses as a list (bulk-generated)."""
    if n > len(_ADDRESS_TABLE):
        _extend_address_table(n)
    return _ADDRESS_TABLE[:n]


# Privacy-hot subjects are agent indices 0, HOT_STRIDE, 2*HOT_STRIDE, …
# (~1% of the population), strided so every shard owns its share and
# budgets stay shard-local by construction.
HOT_STRIDE = 100

# (channel, epsilon-per-frame) for the per-channel Laplace PETs.  Each
# hot subject streams on exactly one channel, fixed by hot rank — see
# repro.parallel.worker.channel_of.
DEFAULT_CHANNELS: Tuple[Tuple[str, float], ...] = (
    ("gaze", 0.35),
    ("gait", 0.25),
    ("heart_rate", 0.45),
)

# Every CONSENT_DENIED_MOD-th hot subject (by hot rank) never opts in,
# so the consent gate carries real refusal traffic at any scale.
CONSENT_DENIED_MOD = 10


@dataclass(frozen=True)
class LoadRunResult:
    """Outcome of one load run; ``metrics`` is fully deterministic."""

    n_agents: int
    epochs: int
    workers: int
    n_shards: int
    columnar: bool
    chain_height: int
    txs_submitted: int
    txs_included: int
    ratings_recorded: int
    reports_filed: int
    votes_cast: int
    proposals_closed: int
    trust_computes: int
    trust_sweeps: int
    interactions_processed: int
    cases_opened: int
    cases_reviewed: int
    moderation_backlog: int
    frames_offered: int
    frames_released: int
    frames_blocked_consent: int
    frames_blocked_budget: int
    cascade_reach: int
    cascade_cross: int
    metrics: Dict[str, Any]
    trace_jsonl: Optional[str] = None
    # Column bytes per agent for the run's AgentTable (0.0 in object mode).
    table_bytes_per_agent: float = 0.0
    # Elastic-sharding provenance (all deterministic given the config).
    plan_mode: str = "weighted"
    steal: bool = False
    # The n_shards="auto" decision trace (None when pinned/defaulted).
    shard_decision: Optional[Dict[str, int]] = None
    # (shard, chunk) units executed via the stealing layer (0 when off).
    chunk_tasks_run: int = 0
    # The resolved shard-state transport: "pickle" (materialized
    # snapshots in every task) or "shm"/"shm-full" (shared-memory column
    # plane with delta/full republishing).  Like workers and steal, a
    # pure transport knob — it never changes a metrics or trace byte.
    transport: str = "pickle"
    # Wall-clock shard-imbalance report (max/mean shard seconds per
    # phase).  Timing, not semantics: excluded from equality so replay
    # comparisons never see the clock.
    imbalance: Optional[Dict[str, Dict[str, float]]] = field(
        default=None, compare=False
    )
    # Ship-cost report (bytes per epoch/phase/column crossing — or that
    # would cross — the process boundary).  Size measurement only, same
    # compare=False contract as ``imbalance``.
    ship_cost: Optional[Dict[str, Any]] = field(default=None, compare=False)


def run_load(
    n_agents: int = 100_000,
    epochs: int = 5,
    seed: int = 2022,
    txs_per_epoch: int = 1_000,
    ratings_per_epoch: int = 500,
    reports_per_epoch: int = 200,
    votes_per_epoch: int = 300,
    block_size: int = 250,
    histogram_backend: str = "sketch",
    electorate_size: Optional[int] = 5_000,
    interactions_per_epoch: int = 2_000,
    frames_per_epoch: int = 2_000,
    privacy_cap: float = 4.0,
    cascade_members: int = 250,
    cascade_boundary: int = 8,
    workers: int = 1,
    n_shards: Union[int, str, None] = None,
    trace: bool = False,
    columnar: bool = True,
    plan_mode: str = "weighted",
    steal: bool = False,
    transport: str = "auto",
) -> LoadRunResult:
    """Run the population-scale workload; see the module docstring.

    ``workers`` schedules the shard work (1 = inline serial path); it
    never changes results.  ``n_shards`` fixes the stream structure and
    *does* change results — it defaults to ``min(8, n_agents)``
    independently of ``workers`` precisely so scheduling and semantics
    stay decoupled; pass ``"auto"`` to let
    :func:`~repro.parallel.plan.auto_shard_count` pick a count from the
    worker count and per-epoch op volume (the decision trace lands in
    ``LoadRunResult.shard_decision``; note ``"auto"`` deliberately ties
    the stream structure to ``workers``).  ``electorate_size`` bounds
    DAO membership (member objects carry per-member attention state,
    which at full population size would be setup cost, not load); pass
    None to enrol every agent.  ``privacy_cap`` is the per-subject
    epsilon cap; frames target the strided hot ~1% of the population so
    the cap actually binds.  ``trace=True`` captures the obs-layer trace
    (parent epoch spans + merged worker spans + substrate spans) and
    returns its JSONL export.

    ``plan_mode`` selects the shard partition: ``"weighted"`` (the
    default) cuts contiguous ranges so each shard carries ~equal
    expected cost under the heavy-tailed activity model — boundaries
    replan every epoch from the activity prior blended with the
    previous epoch's profiled per-agent cost units (deterministic op
    counts priced by :data:`~repro.parallel.plan.DEFAULT_COST_MODEL`,
    never wall clock) — while ``"equal"`` keeps equal-size ranges (the
    skew baseline the scaling bench reports).  Both modes draw the same
    per-agent traffic; only the cut points differ.  ``steal=True`` runs
    each epoch as oversplit ``(shard, chunk)`` units through the
    deterministic stealing layer (:mod:`repro.parallel.steal`).  All
    four knobs preserve the contract that metrics and traces are pure
    functions of the semantic config: ``workers`` and ``steal`` never
    change a byte.

    ``columnar=True`` (the default) backs the society's hot state — the
    genesis balances, the nonce tracker, and the privacy-budget
    spent/cap accounting — with a struct-of-arrays
    :class:`~repro.world.columnar.AgentTable` instead of per-agent dict
    entries, and ships shard nonce/spend snapshots as array slices
    instead of per-agent dicts.  This is purely a representation change:
    metrics and traces are byte-identical to ``columnar=False`` (the
    object-backed escape hatch, kept for equivalence testing — the
    scaling bench and ``make bench-columnar`` assert the match).

    ``transport`` selects how shard state reaches workers.  ``"auto"``
    (the default) resolves to ``"shm"`` — the shared-memory column
    plane — whenever the run is columnar and the platform has
    ``multiprocessing.shared_memory``, else to ``"pickle"``.  Under
    ``"shm"`` the nonce and privacy-spent columns are published into
    shared segments once, tasks carry small descriptors instead of
    materialized array snapshots, and each epoch's changed entries are
    re-published as generation-bumped deltas (``"shm-full"`` republishes
    whole columns instead — the delta ablation).  ``"pickle"`` is the
    escape hatch that ships materialized snapshots in every task.  Like
    ``workers`` and ``steal``, the transport never changes a metrics or
    trace byte (``make shm-check`` gates it); the measured ship bytes
    land in ``LoadRunResult.ship_cost``.
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if plan_mode not in ("equal", "weighted"):
        raise ValueError(
            f"plan_mode must be 'equal' or 'weighted', got {plan_mode!r}"
        )
    if transport not in ("auto", "pickle", "shm", "shm-full"):
        raise ValueError(
            "transport must be 'auto', 'pickle', 'shm', or 'shm-full', "
            f"got {transport!r}"
        )
    if transport == "auto":
        resolved_transport = (
            "shm" if (columnar and shm_available()) else "pickle"
        )
    elif transport in ("shm", "shm-full"):
        if not columnar:
            raise ValueError(
                f"transport={transport!r} needs the columnar table "
                "(columnar=True): object mode has no columns to publish"
            )
        if not shm_available():
            raise ValueError(
                f"transport={transport!r} requested but "
                "multiprocessing.shared_memory is unavailable here"
            )
        resolved_transport = transport
    else:
        resolved_transport = "pickle"
    use_shm = resolved_transport in ("shm", "shm-full")
    shard_decision: Optional[Dict[str, int]] = None
    if n_shards == "auto":
        ops_per_epoch = (
            txs_per_epoch
            + ratings_per_epoch
            + reports_per_epoch
            + votes_per_epoch
            + interactions_per_epoch
            + frames_per_epoch
        )
        resolved_shards, shard_decision = auto_shard_count(
            n_agents, max(1, workers), ops_per_epoch
        )
    elif n_shards is None:
        resolved_shards = min(8, n_agents)
    else:
        resolved_shards = int(n_shards)
    n_members = (
        n_agents if electorate_size is None else min(n_agents, electorate_size)
    )
    plan = ShardPlan(
        seed=seed,
        n_agents=n_agents,
        n_shards=resolved_shards,
        n_members=n_members,
        hot_stride=HOT_STRIDE,
    )
    # The heavy-tailed per-agent traffic prior: quotas apportion over
    # its per-shard mass, and weighted plans cut boundaries on it.
    activity = activity_weights(seed, n_agents)
    activity_cum = np.concatenate(
        ([0], np.cumsum(activity, dtype=np.int64))
    )

    rngs = RngRegistry(seed=seed)
    registry = MetricsRegistry(histogram_backend=histogram_backend)
    obs: Optional[Instrumentation] = None
    trace_log: Optional[TraceLog] = None
    if trace:
        trace_log = TraceLog()
        obs = Instrumentation(
            trace=trace_log, metrics=registry, run_id=f"load-{seed}"
        )

    agents = agent_addresses(n_agents)
    validator = sha256(b"load-validator").hex()

    table: Optional[AgentTable] = None
    if columnar:
        # Struct-of-arrays hot state: genesis balances live in an int64
        # column (the ledger's copy-on-write base), the nonce tracker in
        # an int32 column shipped to shards as slices, and the privacy
        # spent/cap accounting in float64 columns the budget charges
        # directly.  No million-entry dict is ever built.
        table = AgentTable(
            agents, initial_balance=1_000_000, privacy_cap=privacy_cap
        )
        chain = Blockchain(
            PoAConsensus([validator]),
            genesis_state=LedgerState.from_columns(table),
        )
    else:
        chain = Blockchain(
            PoAConsensus([validator]),
            genesis_balances={a: 1_000_000 for a in agents},
        )
    reputation = ReputationSystem(pretrusted=agents[: max(1, n_agents // 1000)])
    # The whole population is known to the reputation layer up front, so
    # the per-epoch trust solve runs at population scale (the point of
    # this workload), not just over the handful of agents sampled so far.
    if columnar:
        reputation.register_identities(agents)
    else:
        for address in agents:
            reputation.register_identity(address)

    dao = DAO(name="load")
    for address in agents[:n_members]:
        dao.add_member(Member(address=address, tokens=1.0))

    # Moderation: classification/report draws happen in shard workers;
    # the parent keeps the stateful queue, bounded review, and sanctions
    # (process_prepared).  The classifier stream exists only to satisfy
    # the service's detection-channel requirement — it is never drawn.
    moderation = ModerationService(
        sanctions=GraduatedSanctionPolicy(world=None),
        classifier=AbuseClassifier(rngs.stream("load.moderation.classifier")),
        report_desk=ReportDesk(rngs.stream("load.moderation.reports")),
        reviewer=HumanModeratorPool(
            rngs.stream("load.moderation.reviewer"),
            capacity_per_epoch=max(20, interactions_per_epoch // 20),
        ),
        obs=obs,
    )

    # Privacy: the authoritative pipeline (consent → PET → budget →
    # disclosure).  Workers predict its admissions; the barrier asserts.
    pipeline = PrivacyPipeline(
        consent=ConsentRegistry(),
        budget=(
            PrivacyBudget.from_table(table)
            if table is not None
            else PrivacyBudget(default_cap=privacy_cap)
        ),
        obs=obs,
    )
    for channel, epsilon in DEFAULT_CHANNELS:
        pipeline.set_pet(
            channel,
            LaplaceMechanism(epsilon, rng=rngs.stream(f"load.pets.{channel}")),
        )
    _task_probe = _consent_probe(plan)
    for subject in range(0, n_agents, HOT_STRIDE):
        rank = subject // HOT_STRIDE
        if rank % CONSENT_DENIED_MOD != 0:
            pipeline.consent.grant(
                agents[subject], channel_of(_task_probe, subject)
            )

    boundary_rng = rngs.stream("load.cascade.boundary")

    def epoch_plan_for(observed: Optional[np.ndarray]) -> ShardPlan:
        """The epoch's partition: weighted cuts replan on the profile.

        Pure function of ``(seed, plan_mode, observed)`` — ``observed``
        is deterministic op-count units from the previous epoch's
        results, so every worker count and steal mode derives the same
        boundaries.
        """
        if plan_mode != "weighted" or plan.n_shards == 1:
            return plan
        weights = blend_profile(activity, observed)
        return plan.with_boundaries(
            weighted_boundaries(weights, plan.n_shards)
        )

    def shard_quotas(epoch_plan: ShardPlan) -> Dict[str, List[int]]:
        """Per-shard op quotas, apportioned over activity mass.

        Transactions/ratings/reports/interactions follow each shard's
        share of total activity (the heavy-tailed traffic model); frames
        follow hot-subject activity; votes follow electorate overlap.
        Every split sums exactly to its per-epoch total.
        """
        ranges = [
            epoch_plan.range_of(s) for s in range(epoch_plan.n_shards)
        ]
        masses = [
            int(activity_cum[hi] - activity_cum[lo]) for lo, hi in ranges
        ]
        hot_by = [
            epoch_plan.hot_subjects_of(s)
            for s in range(epoch_plan.n_shards)
        ]
        hot_masses = [
            int(activity[np.asarray(h, dtype=np.int64)].sum()) if h else 0
            for h in hot_by
        ]
        member_sizes = [
            max(0, mhi - mlo)
            for mlo, mhi in (
                epoch_plan.member_range_of(s)
                for s in range(epoch_plan.n_shards)
            )
        ]
        return {
            "tx": split_weighted(txs_per_epoch, masses),
            "rating": split_weighted(ratings_per_epoch, masses),
            "report": split_weighted(reports_per_epoch, masses),
            "interaction": split_weighted(interactions_per_epoch, masses),
            "frame": split_weighted(frames_per_epoch, hot_masses),
            "vote": split_weighted(votes_per_epoch, member_sizes),
        }

    def observed_costs(
        epoch_plan: ShardPlan, results: List
    ) -> np.ndarray:
        """Profile one epoch: per-agent cost units from observed ops.

        Op counts come off the result arrays (deterministic); each op is
        priced by :data:`DEFAULT_COST_MODEL`.  Frame and cascade cost is
        spread over the subjects/members that phase actually ran on.
        """
        cm = DEFAULT_COST_MODEL
        observed = np.zeros(n_agents, dtype=np.int64)

        def charge(indices: List[int], unit: int) -> None:
            if len(indices):
                counts = np.bincount(
                    np.asarray(indices, dtype=np.int64),
                    minlength=n_agents,
                )
                observed[:] += counts * unit

        for result in results:
            charge(result.tx_senders, cm.tx)
            charge(result.rating_raters, cm.rating)
            charge(result.report_reporters, cm.report)
            charge(result.vote_voters, cm.vote)
            if result.interactions is not None:
                charge(result.interactions.initiators, cm.interaction)
            lo, hi = epoch_plan.range_of(result.shard)
            hot = epoch_plan.hot_subjects_of(result.shard)
            if result.frames and hot:
                observed[np.asarray(hot, dtype=np.int64)] += (
                    cm.frame * len(result.frames) // len(hot)
                )
            members = min(cascade_members, hi - lo)
            if members >= 2 and result.cascade_reach:
                observed[lo : lo + members] += (
                    cm.cascade * result.cascade_reach
                ) // members
        return observed

    # Cross-epoch nonce tracker the shard workers precheck against.
    # Columnar mode keeps it in the table's int32 column and ships each
    # shard its contiguous slice; object mode keeps ONE global dict,
    # bucketed per epoch by the epoch plan's boundaries — weighted
    # replanning moves agents between shards, so per-shard dicts would
    # strand a migrating sender's chain.
    nonce_tracker: Dict[int, int] = {}
    carries = [0] * plan.n_shards
    prev_observed: Optional[np.ndarray] = None
    imbalance_monitor = ShardImbalance(plan.n_shards)
    ship = ShipCost(resolved_transport)
    chunk_tasks_run = 0

    # Shared-memory transport: publish the mutable cross-epoch columns
    # once (generation 0), keep shadow copies of what was published, and
    # re-publish only the entries each barrier changed as new-generation
    # delta segments (or whole columns under "shm-full").  Tasks then
    # carry descriptors instead of materialized snapshots.
    plane: Optional[ColumnPlane] = None
    shadow_nonces: Optional[np.ndarray] = None
    shadow_spent: Optional[np.ndarray] = None
    if use_shm:
        assert table is not None  # guaranteed by the transport checks
        plane = ColumnPlane()
        ship.record_plane(
            0, "nonces", "base", plane.publish("nonces", table.nonces)
        )
        ship.record_plane(
            0,
            "privacy_spent",
            "base",
            plane.publish("privacy_spent", table.privacy_spent),
        )
        shadow_nonces = table.nonces.copy()
        shadow_spent = table.privacy_spent.copy()

    def republish_columns(epoch: int) -> None:
        """Sync the plane to the table's post-barrier state."""
        for column, col, shadow in (
            ("nonces", table.nonces, shadow_nonces),
            ("privacy_spent", table.privacy_spent, shadow_spent),
        ):
            if resolved_transport == "shm-full":
                ship.record_plane(
                    epoch, column, "full", plane.republish_full(column, col)
                )
                shadow[:] = col
            else:
                changed = np.flatnonzero(col != shadow)
                if changed.size:
                    ship.record_plane(
                        epoch,
                        column,
                        "delta",
                        plane.republish_delta(column, changed, col[changed]),
                    )
                    shadow[changed] = col[changed]

    def task_pickled_bytes(obj: object) -> int:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))

    txs_submitted = txs_included = 0
    ratings = reports = votes_cast = proposals_closed = 0
    interactions_processed = cases_opened = cases_reviewed = 0
    cascade_reach = cascade_cross = 0

    # Warm the per-process caches before the pool exists: on fork
    # platforms every worker inherits the address table and shard graphs
    # for free instead of rebuilding them per process.  Weighted plans
    # re-cut boundaries each epoch, so warm with the epoch-0 cuts;
    # later-epoch graphs fill per-process caches lazily (pure functions
    # of their keys, so identical wherever they are built).
    warm_caches(epoch_plan_for(None), agents, cascade_members)
    # Persistent worker runtime: shared pools outlive this run, so the
    # processes (with their warmed caches and plane attachments) are
    # reused by the next run; close() below is a no-op for them.
    pool = shared_pool(workers)
    try:
        for epoch in range(epochs):
            now = float(epoch)
            if plane is not None and epoch > 0:
                # Ship the previous barrier's changes as deltas before
                # building this epoch's descriptors.
                republish_columns(epoch)
            epoch_plan = epoch_plan_for(prev_observed)
            # Weighted replans re-cut boundaries, which changes per-shard
            # cascade member counts — pre-build the new shard graphs in
            # the parent so (inline mode especially) the rebuild cost is
            # plan overhead, not timed cascade-phase work.  No-op when
            # the cuts did not move; pure cost optimisation either way.
            warm_caches(epoch_plan, agents, cascade_members)
            quotas = shard_quotas(epoch_plan)
            shard_ranges = [
                epoch_plan.range_of(s) for s in range(epoch_plan.n_shards)
            ]
            hot_by_shard = [
                epoch_plan.hot_subjects_of(s)
                for s in range(epoch_plan.n_shards)
            ]
            hot_index_by_shard = [
                np.asarray(hot, dtype=np.int64) for hot in hot_by_shard
            ]
            tasks = [
                ShardTask(
                    plan=epoch_plan,
                    shard=shard,
                    epoch=epoch,
                    tx_count=quotas["tx"][shard],
                    rating_count=quotas["rating"][shard],
                    report_count=quotas["report"][shard],
                    vote_count=quotas["vote"][shard],
                    interaction_count=quotas["interaction"][shard],
                    frame_count=quotas["frame"][shard],
                    base_nonces=(
                        {} if table is not None
                        else {
                            sender: nonce
                            for sender, nonce in nonce_tracker.items()
                            if shard_ranges[shard][0]
                            <= sender
                            < shard_ranges[shard][1]
                        }
                    ),
                    base_nonce_slice=(
                        table.nonces[
                            shard_ranges[shard][0]:shard_ranges[shard][1]
                        ].copy()
                        if table is not None and plane is None
                        else None
                    ),
                    hot_spent=(
                        # Shipped only under the pickle transport (the
                        # plane replaces it with a descriptor).  Fancy
                        # indexing copies: a frozen snapshot of the
                        # shard's hot spends, shipped as a float64 array.
                        ()
                        if plane is not None
                        else table.privacy_spent[hot_index_by_shard[shard]]
                        if table is not None
                        else tuple(
                            pipeline.budget.spent(agents[subject])
                            for subject in hot_by_shard[shard]
                        )
                    ),
                    nonce_desc=(
                        plane.descriptor(
                            "nonces",
                            shard_ranges[shard][0],
                            shard_ranges[shard][1],
                        )
                        if plane is not None
                        else None
                    ),
                    spent_desc=(
                        plane.descriptor("privacy_spent")
                        if plane is not None
                        else None
                    ),
                    privacy_cap=privacy_cap,
                    channels=DEFAULT_CHANNELS,
                    consent_denied_mod=CONSENT_DENIED_MOD,
                    cascade_members=cascade_members,
                    cascade_boundary=cascade_boundary,
                    carry_seeds=carries[shard],
                    trace=trace,
                )
                for shard in range(epoch_plan.n_shards)
            ]
            if steal:
                chunk_tasks = make_chunk_tasks(tasks)
                for chunk_task in chunk_tasks:
                    ship.record_task(
                        epoch,
                        PHASE_NAMES[CHUNK_PHASES[chunk_task.chunk]],
                        task_pickled_bytes(chunk_task),
                    )
                chunk_results = pool.map_ordered(
                    run_shard_chunk, chunk_tasks
                )
                results = fold_chunk_results(tasks, chunk_results)
                chunk_tasks_run += len(chunk_tasks)
            else:
                for task in tasks:
                    ship.record_task(
                        epoch, "epoch_task", task_pickled_bytes(task)
                    )
                results = pool.map_ordered(run_shard_epoch, tasks)
            check_shard_order(results)
            imbalance_monitor.record_epoch(results)
            if plan_mode == "weighted" and epoch + 1 < epochs:
                prev_observed = observed_costs(epoch_plan, results)

            epoch_span = (
                obs.span("load", "epoch", time=now, epoch=epoch)
                if obs is not None
                else None
            )
            if epoch_span is not None:
                epoch_span.__enter__()
            try:
                if obs is not None:
                    for result in results:
                        obs.tracer.emit_merged(result.span_payloads)

                # -- ledger barrier: apply debits+credits in shard order.
                for result in results:
                    for s, r, amount, fee, nonce, tx_id in zip(
                        result.tx_senders,
                        result.tx_recipients,
                        result.tx_amounts,
                        result.tx_fees,
                        result.tx_nonces,
                        result.tx_ids,
                    ):
                        tx = Transaction(
                            sender=agents[s],
                            recipient=agents[r],
                            amount=amount,
                            fee=fee,
                            nonce=nonce,
                            kind=TxKind.TRANSFER,
                        )
                        # Seed the hash cache with the worker-computed id
                        # so admission never re-hashes on the barrier.
                        tx.__dict__["tx_id"] = tx_id
                        if not chain.mempool.submit(
                            SyntheticSignedTransaction(tx), chain.state,
                            time=now,
                        ):
                            raise RuntimeError(
                                "two-phase ledger protocol diverged: "
                                f"worker-admitted tx {tx_id} refused by "
                                "the authoritative mempool"
                            )
                        if table is not None:
                            table.nonces[s] = nonce + 1
                        else:
                            nonce_tracker[s] = nonce + 1
                        txs_submitted += 1
                        registry.histogram("load.tx.fee").observe(float(fee))
                while len(chain.mempool) > 0:
                    block = chain.propose_block(
                        validator, timestamp=now + 0.1, max_txs=block_size
                    )
                    if not block.transactions:
                        break
                    txs_included += len(block.transactions)
                    registry.histogram("load.block.txs").observe(
                        float(len(block.transactions))
                    )

                # -- reputation barrier: fold edge deltas in shard order.
                for result in results:
                    for a, b, weight in zip(
                        result.rating_raters,
                        result.rating_ratees,
                        result.rating_weights,
                    ):
                        reputation.record(
                            agents[a], agents[b], positive=True, time=now,
                            weight=weight,
                        )
                        ratings += 1
                        registry.histogram("load.rating.weight").observe(
                            weight
                        )
                for result in results:
                    for reporter, accused, severity in zip(
                        result.report_reporters,
                        result.report_accused,
                        result.report_severities,
                    ):
                        reputation.record(
                            agents[reporter],
                            agents[accused],
                            positive=False,
                            time=now,
                            weight=severity,
                            context="report",
                        )
                        reports += 1
                        registry.counter("load.reports.filed").inc()
                        registry.histogram("load.report.severity").observe(
                            severity
                        )

                # -- governance barrier: one proposal, shard-ordered
                # ballots.
                proposal = dao.submit_proposal(
                    title=f"epoch-{epoch} parameter change",
                    proposer=agents[0],
                    topic="governance",
                    created_at=now,
                    voting_period=0.5,
                )
                for result in results:
                    for voter, yes in zip(
                        result.vote_voters, result.vote_yes
                    ):
                        try:
                            dao.cast_ballot(
                                proposal.proposal_id,
                                agents[voter],
                                option="yes" if yes else "no",
                                time=now + 0.2,
                            )
                        except Exception:
                            continue  # duplicate voter in the sample
                        votes_cast += 1
                proposals_closed += len(dao.close_due(now + 1.0))

                # -- moderation barrier: merged batch, prepared verdicts.
                merged = merge_interaction_batches(results)
                if merged is not None:
                    batch, flagged_rows, report_rows = merged
                    summary = moderation.process_prepared(
                        batch, flagged_rows, report_rows, time=now
                    )
                    interactions_processed += len(batch)
                    cases_opened += summary["opened"]
                    cases_reviewed += summary["reviewed"]
                    registry.counter("load.moderation.flagged").inc(
                        summary["flagged"]
                    )
                    registry.counter("load.moderation.reported").inc(
                        summary["reported"]
                    )
                    registry.counter("load.moderation.reviewed").inc(
                        summary["reviewed"]
                    )
                    registry.gauge("load.moderation.backlog").set(
                        float(summary["backlog"])
                    )

                # -- privacy barrier: authoritative ingest, then validate
                # the workers' two-phase admission predictions.
                frames = [
                    frame for result in results for frame in result.frames
                ]
                if frames:
                    before = (
                        pipeline.stats.released,
                        pipeline.stats.blocked_consent,
                        pipeline.stats.blocked_budget,
                    )
                    pipeline.ingest_all(frames)
                    released_d = pipeline.stats.released - before[0]
                    consent_d = pipeline.stats.blocked_consent - before[1]
                    budget_d = pipeline.stats.blocked_budget - before[2]
                    predicted = sum_predicted_outcomes(results)
                    if (
                        released_d != predicted.get("released", 0)
                        or consent_d != predicted.get("blocked_consent", 0)
                        or budget_d != predicted.get("blocked_budget", 0)
                    ):
                        raise RuntimeError(
                            "two-phase privacy protocol diverged: workers "
                            f"predicted {predicted}, pipeline released "
                            f"{released_d} / blocked_consent {consent_d} "
                            f"/ blocked_budget {budget_d}"
                        )
                    registry.counter("load.privacy.frames").inc(len(frames))
                    registry.counter("load.privacy.released").inc(released_d)
                    registry.counter("load.privacy.refusals").inc(
                        consent_d + budget_d
                    )

                # -- cascade barrier: fold shard cascades, exchange
                # boundary activations for next epoch's seeds.
                if cascade_members > 0:
                    for result in results:
                        cascade_reach += result.cascade_reach
                        registry.histogram("load.cascade.reach").observe(
                            float(result.cascade_reach)
                        )
                        registry.histogram("load.cascade.rounds").observe(
                            float(result.cascade_rounds)
                        )
                    carries = merge_boundary_activations(
                        results, boundary_rng
                    )
                    crossed = sum(carries)
                    cascade_cross += crossed
                    registry.counter("load.cascade.cross").inc(crossed)

                # Refresh global trust once per epoch: the warm-started
                # sparse solve is the measured reputation write path.
                # Columnar mode reads the top value off the solved vector
                # without materialising the per-identity dict (the same
                # float, asserted by the equivalence benches).
                if columnar:
                    top = reputation.global_trust_top()
                else:
                    trust = reputation.global_trust()
                    top = max(trust.values()) if trust else 0.0
                registry.gauge("load.trust.top").set(top)
                registry.counter("load.epochs").inc()
            finally:
                if epoch_span is not None:
                    epoch_span.__exit__(None, None, None)
    finally:
        pool.close()
        if plane is not None:
            plane.close()

    return LoadRunResult(
        n_agents=n_agents,
        epochs=epochs,
        workers=max(1, workers),
        n_shards=plan.n_shards,
        columnar=columnar,
        chain_height=chain.height,
        txs_submitted=txs_submitted,
        txs_included=txs_included,
        ratings_recorded=ratings,
        reports_filed=reports,
        votes_cast=votes_cast,
        proposals_closed=proposals_closed,
        trust_computes=reputation.trust_compute_count,
        trust_sweeps=reputation.trust_sweep_count,
        interactions_processed=interactions_processed,
        cases_opened=cases_opened,
        cases_reviewed=cases_reviewed,
        moderation_backlog=moderation.backlog,
        frames_offered=pipeline.stats.offered,
        frames_released=pipeline.stats.released,
        frames_blocked_consent=pipeline.stats.blocked_consent,
        frames_blocked_budget=pipeline.stats.blocked_budget,
        cascade_reach=cascade_reach,
        cascade_cross=cascade_cross,
        metrics=registry.as_dict(),
        trace_jsonl=(
            trace_to_jsonl(trace_log) if trace_log is not None else None
        ),
        table_bytes_per_agent=(
            table.bytes_per_agent if table is not None else 0.0
        ),
        plan_mode=plan_mode,
        steal=steal,
        shard_decision=shard_decision,
        chunk_tasks_run=chunk_tasks_run,
        transport=resolved_transport,
        imbalance=imbalance_monitor.report(),
        ship_cost=ship.report(),
    )


def _consent_probe(plan: ShardPlan) -> "ShardTask":
    """A minimal task whose only job is feeding ``channel_of`` /
    consent-rule helpers parent-side (same plan, no per-epoch state)."""
    return ShardTask(
        plan=plan,
        shard=0,
        epoch=0,
        tx_count=0,
        rating_count=0,
        report_count=0,
        vote_count=0,
        interaction_count=0,
        frame_count=0,
        channels=DEFAULT_CHANNELS,
        consent_denied_mod=CONSENT_DENIED_MOD,
    )
