"""Workload generators: the synthetic corpora behind the experiments.

Each generator owns the data-shape details of one experiment family so
benchmarks and tests stay declarative:

* :func:`sensor_corpus` — labelled train/eval frame sets per channel
  (experiment E1, privacy/utility curves).
* :func:`linkage_workload` — reference + anonymous session observations
  at a given clone-usage rate (experiment E2).
* :func:`dao_proposal_load` — a stream of proposal descriptors spread
  over topics (experiment E5).
* :func:`synthetic_interaction_batch` — one columnar epoch of
  avatar-to-avatar interactions for batched moderation at population
  scale (the load workload's moderation phase).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.privacy.avatars import AvatarIdentityManager, SessionObservation
from repro.privacy.profiles import UserProfile, generate_population
from repro.privacy.sensors import GaitSensor, GazeSensor, HeartRateSensor, Sensor, SensorFrame
from repro.world.interactions import InteractionBatch, InteractionKind

__all__ = [
    "SensorCorpus",
    "sensor_corpus",
    "LinkageWorkload",
    "linkage_workload",
    "dao_proposal_load",
    "synthetic_interaction_batch",
    "synthetic_frame_burst",
]


@dataclass
class SensorCorpus:
    """Labelled frames for attacker training and evaluation."""

    channel: str
    profiles: Dict[str, UserProfile]
    train_frames: List[SensorFrame]
    eval_frames: List[SensorFrame]


_SENSOR_FACTORIES = {
    "gaze": GazeSensor,
    "gait": GaitSensor,
    "heart_rate": HeartRateSensor,
}


def sensor_corpus(
    channel: str,
    n_users: int,
    rng: np.random.Generator,
    train_frames_per_user: int = 3,
    eval_frames_per_user: int = 1,
    train_fraction: float = 0.5,
) -> SensorCorpus:
    """Build a train/eval split over a fresh population.

    The attacker trains on frames from one half of the population and is
    evaluated on frames from the *other* half — its background knowledge
    is the population-level signal/attribute correlation, not per-user
    templates, matching the §II-A threat model.
    """
    if channel not in _SENSOR_FACTORIES:
        raise ValueError(
            f"channel must be one of {sorted(_SENSOR_FACTORIES)}, got {channel!r}"
        )
    population = generate_population(n_users, rng)
    profiles = {u.user_id: u for u in population}
    sensor: Sensor = _SENSOR_FACTORIES[channel](rng)
    split = max(1, int(train_fraction * n_users))
    train_users, eval_users = population[:split], population[split:]
    train_frames = [
        sensor.sample(user, t)
        for user in train_users
        for t in range(train_frames_per_user)
    ]
    eval_frames = [
        sensor.sample(user, 100.0 + t)
        for user in eval_users
        for t in range(eval_frames_per_user)
    ]
    return SensorCorpus(
        channel=channel,
        profiles=profiles,
        train_frames=train_frames,
        eval_frames=eval_frames,
    )


@dataclass
class LinkageWorkload:
    """Sessions for the re-identification experiment (E2)."""

    identity: AvatarIdentityManager
    truth: Dict[str, str]  # avatar id → user id
    reference_sessions: List[Tuple[str, np.ndarray]]  # (user, behaviour)
    anonymous_sessions: List[SessionObservation]


def linkage_workload(
    n_users: int,
    sessions_per_user: int,
    clone_rate: float,
    rng: np.random.Generator,
    behaviour_dims: int = 6,
    behaviour_noise: float = 0.3,
    clone_persona_shift: float = 1.5,
) -> LinkageWorkload:
    """Generate observed sessions at a given clone-usage rate.

    Every user has a stable latent behaviour vector; each session's
    observed behaviour is that vector plus noise.  With probability
    ``clone_rate`` a session runs under a *fresh secondary avatar* and
    the user adopts a shifted persona (mean shift of
    ``clone_persona_shift`` per dimension) — Falchuk et al.'s [9] point
    is precisely that the clone "hides their real behaviour", not just
    their name.  Primary-avatar sessions are trivially attributable
    (users link primaries to public profiles), which is what
    :func:`evaluate_linkage` exploits.
    """
    if not 0 <= clone_rate <= 1:
        raise ValueError(f"clone_rate must be in [0, 1], got {clone_rate}")
    identity = AvatarIdentityManager()
    truth: Dict[str, str] = {}
    reference: List[Tuple[str, np.ndarray]] = []
    anonymous: List[SessionObservation] = []
    latent = {
        f"user-{i:05d}": rng.normal(0.0, 1.0, size=behaviour_dims)
        for i in range(n_users)
    }
    for user_id, base in latent.items():
        primary = identity.register_user(user_id)
        truth[primary] = user_id
        # The attacker's background knowledge: one attributed session.
        reference.append(
            (user_id, base + rng.normal(0, behaviour_noise, size=behaviour_dims))
        )
        for s in range(sessions_per_user):
            if rng.random() < clone_rate:
                avatar_id = identity.spawn_clone(user_id)
                persona = base + rng.normal(
                    0, clone_persona_shift, size=behaviour_dims
                )
            else:
                avatar_id = primary
                persona = base
            behaviour = persona + rng.normal(
                0, behaviour_noise, size=behaviour_dims
            )
            truth[avatar_id] = user_id
            anonymous.append(
                SessionObservation(
                    avatar_id=avatar_id, behaviour=behaviour, time=float(s)
                )
            )
    return LinkageWorkload(
        identity=identity,
        truth=truth,
        reference_sessions=reference,
        anonymous_sessions=anonymous,
    )


def evaluate_linkage(workload: LinkageWorkload) -> float:
    """Attack accuracy of the strongest realistic adversary on E2.

    The adversary attributes primary-avatar sessions by identity (those
    mappings are public) and falls back to behavioural nearest-neighbour
    matching for clone sessions.  Returns the fraction of all sessions
    correctly attributed.
    """
    from repro.privacy.avatars import LinkageAttacker

    attacker = LinkageAttacker()
    for user_id, behaviour in workload.reference_sessions:
        attacker.observe_reference(user_id, behaviour)
    primary_avatars = {
        workload.identity.primary_of(user)
        for user, _ in workload.reference_sessions
    }
    hits = 0
    for observation in workload.anonymous_sessions:
        if observation.avatar_id in primary_avatars:
            hits += 1  # ID linkage is exact for primaries
            continue
        guess = attacker.attribute(observation)
        if guess is not None and guess == workload.truth[observation.avatar_id]:
            hits += 1
    if not workload.anonymous_sessions:
        return 0.0
    return hits / len(workload.anonymous_sessions)


def synthetic_interaction_batch(
    n_agents: int,
    n_interactions: int,
    time: float,
    rng: np.random.Generator,
    abusive_rate: float = 0.05,
    undelivered_rate: float = 0.05,
    kind: str = InteractionKind.CHAT.value,
    id_of=None,
) -> InteractionBatch:
    """One columnar epoch of synthetic interactions.

    Initiator/target indices are uniform over the population (self
    targets bumped to the next agent), ``abusive`` is the ground-truth
    misconduct label at ``abusive_rate``, and ``undelivered_rate``
    models upstream gates (bubbles, statuses) dropping a fraction before
    moderation ever sees them.  Deterministic given ``rng``.
    """
    if n_agents < 2:
        raise ValueError(f"n_agents must be >= 2, got {n_agents}")
    if n_interactions < 0:
        raise ValueError(f"n_interactions must be >= 0, got {n_interactions}")
    for name, rate in (("abusive_rate", abusive_rate),
                       ("undelivered_rate", undelivered_rate)):
        if not 0 <= rate <= 1:
            raise ValueError(f"{name} must be in [0, 1], got {rate}")
    initiators = rng.integers(0, n_agents, size=n_interactions, dtype=np.int64)
    targets = rng.integers(0, n_agents, size=n_interactions, dtype=np.int64)
    clash = targets == initiators
    targets[clash] = (targets[clash] + 1) % n_agents
    abusive = rng.random(n_interactions) < abusive_rate
    delivered = rng.random(n_interactions) >= undelivered_rate
    kwargs = {} if id_of is None else {"id_of": id_of}
    return InteractionBatch(
        time=time,
        initiators=initiators,
        targets=targets,
        abusive=abusive,
        delivered=delivered,
        kind=kind,
        **kwargs,
    )


def synthetic_frame_burst(
    subjects: Sequence[int],
    n_frames: int,
    time: float,
    rng: np.random.Generator,
    channel_of,
    subject_id_of,
    value_dims: int = 4,
) -> Tuple[List[SensorFrame], List[int]]:
    """One epoch burst of sensor frames over a hot subject set.

    Each frame picks a subject uniformly from ``subjects`` (so caps on a
    small hot set genuinely exhaust), streams on the subject's fixed
    ``channel_of(subject)``, and carries ``value_dims`` standard-normal
    values for the PET stage to obfuscate.  Returns the frames plus the
    picked subject indices (callers that predict budget admission need
    the indices, not just the hashed subject ids).  Deterministic given
    ``rng``; exactly ``2 * n_frames`` generator draws.
    """
    if n_frames < 0:
        raise ValueError(f"n_frames must be >= 0, got {n_frames}")
    if not subjects and n_frames:
        raise ValueError("subjects must be non-empty when n_frames > 0")
    frames: List[SensorFrame] = []
    picks: List[int] = []
    for _ in range(n_frames):
        subject = subjects[int(rng.integers(len(subjects)))]
        values = rng.normal(0.0, 1.0, size=value_dims)
        frames.append(
            SensorFrame(
                channel=channel_of(subject),
                subject=subject_id_of(subject),
                time=time,
                values=values,
            )
        )
        picks.append(subject)
    return frames, picks


def dao_proposal_load(
    count: int,
    topics: Sequence[str],
    rng: np.random.Generator,
) -> List[Dict[str, str]]:
    """A stream of proposal descriptors spread uniformly over topics."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if not topics:
        raise ValueError("topics must be non-empty")
    load = []
    for i in range(count):
        topic = topics[int(rng.integers(len(topics)))]
        load.append(
            {
                "title": f"{topic} change #{i}",
                "topic": topic,
            }
        )
    return load
