"""End-to-end observability scenario: one causally-traced platform run.

Drives a full seeded platform — a DAO proposal enters the decision
pipeline, epochs fire as *named simulator events* (so engine profiling
has real content), the ledger settles anchors into blocks, moderation
processes the epoch's interactions, and the privacy pipeline releases
sensor frames — then exports the trace as JSONL and reconstructs the
span forest.

Two properties are checked (the paper's §IV-C transparency bar made
executable):

* **causal integrity** — every exported span reconstructs into exactly
  one tree per root action, with no orphans;
* **determinism** — two runs with the same seed export *byte-identical*
  JSONL (span ids derive from the sim clock and a per-run counter, never
  wall time).

``python -m repro.workloads.observability`` runs the scenario twice and
exits non-zero if either property fails (the ``make obs-check`` target).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import FrameworkConfig
from repro.core.framework import MetaverseFramework
from repro.obs import SpanNode, span_forest, trace_to_jsonl

__all__ = [
    "ObservabilityRunResult",
    "run_observability_scenario",
    "check_observability",
]


@dataclass(frozen=True)
class ObservabilityRunResult:
    """One scenario run's exported trace and reconstruction summary."""

    jsonl: str
    n_records: int
    n_roots: int
    n_orphans: int
    chain_height: int
    released_frames: int
    moderation_cases: int
    proposal_id: Optional[str]
    root_names: List[str]
    hottest: List[Dict[str, object]]

    @property
    def causally_complete(self) -> bool:
        """Every span landed in exactly one tree (no orphans)."""
        return self.n_orphans == 0 and self.n_roots > 0


def _tree_consistent(root: SpanNode) -> bool:
    """Every descendant shares the root's trace id and links upward."""
    for node in root.walk():
        if node.trace_id != root.trace_id:
            return False
        for child in node.children:
            if child.parent_id != node.span_id:
                return False
    return True


def run_observability_scenario(
    seed: int = 2022,
    n_users: int = 40,
    epochs: int = 8,
    profile: bool = False,
) -> ObservabilityRunResult:
    """Run the full DAO → ledger → moderation → privacy scenario.

    Epochs are scheduled on the framework's simulator as named events,
    so with ``profile=True`` the engine's per-handler histograms have
    content and :meth:`MetaverseFramework.hottest_handlers` renders.
    """
    config = FrameworkConfig(
        seed=seed,
        n_users=n_users,
        voting_period=3.0,
        enable_observability=True,
        enable_profiling=profile,
    )
    fw = MetaverseFramework(config)

    # A platform change proposed by an actual privacy-DAO member: the
    # root action whose causal tree threads proposal → ballots → close
    # → ledger anchor.
    proposal_id: Optional[str] = None
    if fw.federation is not None:
        privacy_dao = fw.federation.dao_for_topic("privacy")
        proposer = sorted(privacy_dao.members.addresses())[0]
        proposal = fw.propose_change(
            title="Tighten gaze epsilon",
            kind="parameter",
            topic="privacy",
            proposer=proposer,
            payload={"pet_epsilon": 0.5},
        )
        if proposal is not None:
            proposal_id = proposal.proposal_id

    for epoch in range(epochs):
        fw.simulator.schedule(float(epoch), fw.run_epoch, name="framework.run_epoch")
    fw.simulator.run_until(float(epochs))

    roots, orphans = span_forest(fw.trace.records)
    assert all(_tree_consistent(root) for root in roots)
    stats = fw.pipeline.stats if fw.pipeline is not None else None
    return ObservabilityRunResult(
        jsonl=trace_to_jsonl(fw.trace),
        n_records=len(fw.trace),
        n_roots=len(roots),
        n_orphans=len(orphans),
        chain_height=fw.chain.height if fw.chain is not None else 0,
        released_frames=stats.released if stats is not None else 0,
        moderation_cases=(
            len(fw.moderation.cases) if fw.moderation is not None else 0
        ),
        proposal_id=proposal_id,
        root_names=[root.name for root in roots],
        hottest=fw.simulator.hottest_handlers(top_n=5),
    )


def check_observability(
    seed: int = 2022, n_users: int = 40, epochs: int = 8
) -> Dict[str, object]:
    """Run the scenario twice; verify determinism and causal integrity.

    Returns a summary dict; raises AssertionError on violation.
    """
    first = run_observability_scenario(seed=seed, n_users=n_users, epochs=epochs)
    second = run_observability_scenario(seed=seed, n_users=n_users, epochs=epochs)
    assert first.jsonl == second.jsonl, (
        "seeded runs exported different traces "
        f"({first.n_records} vs {second.n_records} records)"
    )
    assert first.causally_complete, (
        f"span forest incomplete: {first.n_roots} roots, "
        f"{first.n_orphans} orphans"
    )
    return {
        "records": first.n_records,
        "roots": first.n_roots,
        "orphans": first.n_orphans,
        "chain_height": first.chain_height,
        "released_frames": first.released_frames,
        "moderation_cases": first.moderation_cases,
        "byte_identical": True,
    }


if __name__ == "__main__":
    summary = check_observability()
    for key, value in summary.items():
        print(f"{key:18s} {value}")
    print("obs-check: OK (byte-identical traces, complete span forest)")
