"""Canned end-to-end scenarios built on the public API.

Scenarios bundle the setup choreography experiments and examples share:
building DAO populations for the flat-vs-modular comparison (E5),
driving governance stress (proposal floods), and running marketplace
seasons under a given minting policy (E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dao import (
    DAO,
    Member,
    ModularDaoFederation,
    ParticipationModel,
    TurnoutQuorum,
)
from repro.nft import (
    CreateToEarnStudio,
    InviteOnlyMinting,
    MintingPolicy,
    NFTCollection,
    NFTMarketplace,
    OpenMinting,
    ReputationVetted,
)
from repro.reputation import ReputationSystem

__all__ = [
    "build_flat_dao",
    "build_modular_federation",
    "GovernanceStressResult",
    "run_governance_stress",
    "MarketSeasonResult",
    "run_market_season",
]


def _make_members(
    n_members: int,
    topics: Sequence[str],
    rng: np.random.Generator,
    attention_budget: float,
    engagement: float,
) -> List[Member]:
    """A population where each member follows ~half the topics."""
    members = []
    for i in range(n_members):
        interests = {t for t in topics if rng.random() < 0.5}
        if not interests:
            interests = {topics[int(rng.integers(len(topics)))]}
        members.append(
            Member(
                address=f"member-{i:05d}",
                tokens=float(rng.integers(1, 100)),
                interests=interests,
                attention_budget=attention_budget,
                engagement=engagement,
            )
        )
    return members


def build_flat_dao(
    n_members: int,
    topics: Sequence[str],
    rng: np.random.Generator,
    attention_budget: float = 5.0,
    engagement: float = 0.8,
    quorum: float = 0.15,
) -> DAO:
    """One DAO holding everyone — the flat design of §III-B."""
    dao = DAO("flat", rule=TurnoutQuorum(quorum))
    for member in _make_members(
        n_members, topics, rng, attention_budget, engagement
    ):
        # In a flat DAO every proposal lands in front of every member:
        # interests remain (they drive whether the member *votes*), but
        # membership is universal.
        dao.add_member(member)
    return dao


def build_modular_federation(
    n_members: int,
    topics: Sequence[str],
    rng: np.random.Generator,
    attention_budget: float = 5.0,
    engagement: float = 0.8,
    quorum: float = 0.15,
) -> ModularDaoFederation:
    """Topic-scoped sub-DAOs: members only join what they follow."""
    root = DAO("root", rule=TurnoutQuorum(quorum))
    federation = ModularDaoFederation(root)
    sub_daos = {t: DAO(f"{t}-dao", rule=TurnoutQuorum(quorum)) for t in topics}
    for topic, dao in sub_daos.items():
        federation.add_sub_dao(dao, [topic])
    for member in _make_members(
        n_members, topics, rng, attention_budget, engagement
    ):
        root.add_member(
            Member(
                address=member.address,
                tokens=member.tokens,
                interests=set(member.interests),
                attention_budget=member.attention_budget,
                engagement=member.engagement,
            )
        )
        for topic in member.interests:
            sub_daos[topic].add_member(
                Member(
                    address=member.address,
                    tokens=member.tokens,
                    interests={topic},
                    attention_budget=member.attention_budget,
                    engagement=member.engagement,
                )
            )
    return federation


@dataclass
class GovernanceStressResult:
    """Outcome of a proposal-flood season."""

    proposals: int
    mean_turnout: float
    expired_fraction: float
    mean_latency: float
    ballots_cast: int


def run_governance_stress(
    target,  # DAO or ModularDaoFederation
    proposal_descriptors: List[Dict[str, str]],
    rng: np.random.Generator,
    epochs: int = 10,
    voting_period: float = 3.0,
) -> GovernanceStressResult:
    """Feed proposals evenly over ``epochs`` and run participation.

    ``target`` may be a flat :class:`DAO` or a federation; routing and
    per-DAO presentation follow automatically.
    """
    is_federation = isinstance(target, ModularDaoFederation)
    model = ParticipationModel(rng)
    per_epoch = max(1, len(proposal_descriptors) // max(1, epochs))
    queue = list(proposal_descriptors)
    ballots = 0

    for epoch in range(epochs):
        time = float(epoch)
        for descriptor in queue[:per_epoch]:
            if is_federation:
                dao = target.dao_for_topic(descriptor["topic"])
                proposer = dao.members.addresses()[0]
                dao.submit_proposal(
                    descriptor["title"],
                    proposer,
                    descriptor["topic"],
                    created_at=time,
                    voting_period=voting_period,
                )
            else:
                proposer = target.members.addresses()[0]
                target.submit_proposal(
                    descriptor["title"],
                    proposer,
                    descriptor["topic"],
                    created_at=time,
                    voting_period=voting_period,
                )
        queue = queue[per_epoch:]

        if is_federation:
            reports = model.run_federation_epoch(target, time)
            ballots += sum(r.ballots_cast for r in reports.values())
            for dao in target.all_daos():
                dao.close_due(time)
                for member in dao.members:
                    member.reset_attention()
        else:
            report = model.run_epoch(target, time)
            ballots += report.ballots_cast
            target.close_due(time)
            for member in target.members:
                member.reset_attention()

    # Flush: close anything still open at the horizon.
    horizon = float(epochs) + voting_period
    daos = target.all_daos() if is_federation else [target]
    for dao in daos:
        dao.close_due(horizon)

    stats = [d.participation_stats() for d in daos]
    closed_total = sum(s["closed"] for s in stats)
    if closed_total == 0:
        return GovernanceStressResult(0, 0.0, 0.0, 0.0, ballots)
    weighted = lambda key: sum(s[key] * s["closed"] for s in stats) / closed_total
    return GovernanceStressResult(
        proposals=int(closed_total),
        mean_turnout=weighted("mean_turnout"),
        expired_fraction=weighted("expired_fraction"),
        mean_latency=weighted("mean_latency"),
        ballots_cast=ballots,
    )


@dataclass
class MarketSeasonResult:
    """Outcome of one market season under a minting policy."""

    policy: str
    stats: Dict[str, float]
    honest_creators_locked_out: int
    scammers_locked_out: int
    sale_prices: List[float] = field(default_factory=list)


def run_market_season(
    policy_name: str,
    n_creators: int,
    scammer_fraction: float,
    rng: np.random.Generator,
    epochs: int = 12,
    buyers: int = 30,
    invited_fraction: float = 0.4,
) -> MarketSeasonResult:
    """Run a create-to-earn season under one minting policy.

    ``policy_name``: "open", "invite-only", or "reputation-vetted".
    Invite lists are drawn from the *initially known* creators, which is
    exactly how real platforms seed them — late honest creators lose out.
    """
    reputation = ReputationSystem(blend=1.0)
    collection = NFTCollection(f"season-{policy_name}")
    creator_names = [f"creator-{i:03d}" for i in range(n_creators)]
    scammers = {
        name for name in creator_names if rng.random() < scammer_fraction
    }

    policy: MintingPolicy
    if policy_name == "open":
        policy = OpenMinting()
    elif policy_name == "invite-only":
        # Platforms vet invitees manually, so the list is mostly honest —
        # but it is also fixed up front, which is what locks out honest
        # creators who arrive (or become known) later.
        honest = [n for n in creator_names if n not in scammers]
        quota = max(1, int(invited_fraction * n_creators))
        invited = honest[:quota]
        # Vetting is imperfect: a scammer occasionally slips through.
        slipped = [n for n in sorted(scammers) if rng.random() < 0.1]
        policy = InviteOnlyMinting(invited + slipped)
    elif policy_name == "reputation-vetted":
        policy = ReputationVetted(reputation, threshold=0.4)
    else:
        raise ValueError(f"unknown policy {policy_name!r}")

    market = NFTMarketplace(collection, policy=policy, reputation=reputation)
    studio = CreateToEarnStudio(market, rng)
    for name in creator_names:
        skill = 0.1 if name in scammers else float(rng.uniform(0.5, 0.95))
        studio.register_creator(name, skill=skill, is_scammer=name in scammers)
    buyer_ids = [f"buyer-{i:03d}" for i in range(buyers)]
    for buyer in buyer_ids:
        market.deposit(buyer, 500.0)

    for epoch in range(epochs):
        time = float(epoch)
        for name in creator_names:
            if rng.random() < 0.6:
                studio.produce_and_list(name, time)
        listings = sorted(market.active_listings(), key=lambda l: (l.price, l.listing_id))
        for listing in listings[: max(1, buyers // 2)]:
            buyer = buyer_ids[int(rng.integers(len(buyer_ids)))]
            if buyer == listing.seller or market.balance_of(buyer) < listing.price:
                continue
            sale = market.buy(buyer, listing.listing_id, time)
            token = collection.token(sale.token_id)
            if token.is_scam and rng.random() < 0.8:
                market.report_scam(buyer, token.token_id, time)
            elif not token.is_scam and rng.random() < 0.5:
                market.praise(buyer, token.token_id, time)

    locked = policy.refused_creators
    return MarketSeasonResult(
        policy=policy_name,
        stats=dict(market.market_stats()),
        honest_creators_locked_out=len(locked - scammers),
        scammers_locked_out=len(locked & scammers),
        sale_prices=[sale.price for sale in market.sales],
    )
