"""Workload generators and canned scenarios for experiments."""

from repro.workloads.generators import (
    LinkageWorkload,
    SensorCorpus,
    dao_proposal_load,
    evaluate_linkage,
    linkage_workload,
    sensor_corpus,
)
from repro.workloads.load import (
    LoadRunResult,
    SyntheticSignedTransaction,
    agent_address,
    run_load,
    synthetic_transfer,
)
from repro.workloads.observability import (
    ObservabilityRunResult,
    check_observability,
    run_observability_scenario,
)
from repro.workloads.scenarios import (
    GovernanceStressResult,
    MarketSeasonResult,
    build_flat_dao,
    build_modular_federation,
    run_governance_stress,
    run_market_season,
)

__all__ = [
    "LinkageWorkload",
    "SensorCorpus",
    "dao_proposal_load",
    "evaluate_linkage",
    "linkage_workload",
    "sensor_corpus",
    "GovernanceStressResult",
    "LoadRunResult",
    "MarketSeasonResult",
    "SyntheticSignedTransaction",
    "agent_address",
    "run_load",
    "synthetic_transfer",
    "ObservabilityRunResult",
    "check_observability",
    "run_observability_scenario",
    "build_flat_dao",
    "build_modular_federation",
    "run_governance_stress",
    "run_market_season",
]
