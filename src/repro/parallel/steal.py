"""Deterministic work stealing at epoch barriers.

The weighted planner (:mod:`repro.parallel.plan`) balances *expected*
cost, but the slowest shard still sets the epoch wall-clock when actual
cost lands unevenly.  This module oversplits each shard's epoch into
**chunks** — one per shard-local phase — with stable ``(shard, chunk)``
ids, and lets any idle worker pull the next chunk from a single queue.

Why this is deterministic where classic work stealing is not:

* **Stable task identity.**  Chunk ``(s, c)`` always means "phase
  ``CHUNK_PHASES[c]`` of shard ``s``"; its input is a pure function of
  the :class:`~repro.parallel.worker.ShardTask`, and its phase draws
  only the ``(seed, s, epoch, phase)`` stream.  Which process runs it
  cannot matter.
* **Deterministic steal order.**  Chunks enter one queue sorted by
  ``(shard, chunk)`` — lowest shard id first.  Workers (the pool's
  ``map`` machinery) consume the queue front-to-back, so an idle worker
  always "steals" the lowest outstanding shard's next chunk.  The order
  of *completion* still varies with scheduling — which is why it is
  never observed.
* **Ordered fold.**  The parent folds chunk results back into per-shard
  :class:`~repro.parallel.worker.ShardEpochResult` objects strictly in
  ``(shard, chunk)`` order, verifying every expected chunk arrived
  exactly once, and re-derives span payloads from the merged results —
  byte-identical to the monolithic :func:`run_shard_epoch` path.

``make steal-check`` (:mod:`repro.parallel.steal_check`) gates the
equivalence: metrics and traces must match across
``workers ∈ {1, 2, 4}`` with stealing on and off.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Sequence, Tuple

from repro.parallel.plan import Phase
from repro.parallel.worker import (
    CHUNK_PHASES,
    PHASE_NAMES,
    ShardEpochResult,
    ShardTask,
    chunk_span_payloads,
    epoch_span_payload,
    run_phase,
)

__all__ = [
    "ChunkTask",
    "ChunkResult",
    "make_chunk_tasks",
    "run_shard_chunk",
    "fold_chunk_results",
    "run_epoch_chunks",
]

# Result fields each phase writes; the fold copies exactly these from
# the chunk's partial result into the shard's merged result.
_PHASE_FIELDS: Dict[int, Tuple[str, ...]] = {
    Phase.TRANSACTIONS: (
        "tx_senders",
        "tx_recipients",
        "tx_amounts",
        "tx_fees",
        "tx_nonces",
        "tx_ids",
        "tx_precheck_failures",
    ),
    Phase.RATINGS: ("rating_raters", "rating_ratees", "rating_weights"),
    Phase.REPORTS: ("report_reporters", "report_accused", "report_severities"),
    Phase.VOTES: ("vote_voters", "vote_yes"),
    Phase.INTERACTIONS: ("interactions", "flagged_rows", "report_rows"),
    Phase.FRAMES: ("frames", "predicted_outcomes"),
    Phase.CASCADE: (
        "cascade_reach",
        "cascade_rounds",
        "cascade_timeline",
        "boundary_reached",
    ),
}


@dataclass(frozen=True)
class ChunkTask:
    """One stealable unit: phase ``CHUNK_PHASES[chunk]`` of one shard."""

    task: ShardTask
    chunk: int


@dataclass
class ChunkResult:
    """A chunk's partial result plus its measured wall seconds."""

    shard: int
    chunk: int
    partial: ShardEpochResult
    seconds: float


def _slim_task(task: ShardTask, phase: int) -> ShardTask:
    """Narrow the task to what the chunk's phase actually reads.

    The nonce state only feeds the transaction phase and the hot-spend
    state only the frames phase; shipping either with every chunk would
    multiply pickling cost by the chunk count.  Under the pickle
    transport that means dropping the materialized snapshot arrays;
    under the shared-memory transport it is *descriptor narrowing* —
    the column handles the phase never resolves are nulled, so a chunk
    task carries only the descriptors its phase attaches.  Purely a
    transport optimisation — the phase sees identical inputs.
    """
    replace: Dict[str, object] = {}
    if phase != Phase.TRANSACTIONS:
        replace["base_nonces"] = {}
        replace["base_nonce_slice"] = None
        replace["nonce_desc"] = None
    if phase != Phase.FRAMES:
        replace["hot_spent"] = ()
        replace["spent_desc"] = None
    return dataclasses.replace(task, **replace) if replace else task


def make_chunk_tasks(tasks: Sequence[ShardTask]) -> List[ChunkTask]:
    """All ``(shard, chunk)`` units for one epoch, in steal order.

    The returned list is sorted by ``(shard, chunk)`` — the pool submits
    it front-to-back, which *is* the deterministic steal order (lowest
    shard id first).
    """
    chunks: List[ChunkTask] = []
    for task in tasks:
        for chunk, phase in enumerate(CHUNK_PHASES):
            chunks.append(ChunkTask(task=_slim_task(task, phase), chunk=chunk))
    return chunks


def run_shard_chunk(chunk_task: ChunkTask) -> ChunkResult:
    """Run one chunk; a pure function of the chunk task (plus timing)."""
    task = chunk_task.task
    partial = ShardEpochResult(shard=task.shard)
    t0 = perf_counter()
    run_phase(task, partial, CHUNK_PHASES[chunk_task.chunk])
    return ChunkResult(
        shard=task.shard,
        chunk=chunk_task.chunk,
        partial=partial,
        seconds=perf_counter() - t0,
    )


def fold_chunk_results(
    tasks: Sequence[ShardTask], chunk_results: Sequence[ChunkResult]
) -> List[ShardEpochResult]:
    """Fold chunk results into per-shard results, in ``(shard, chunk)`` order.

    Verifies every expected ``(shard, chunk)`` id arrived **exactly
    once** (duplicates, gaps, and strays all raise — a stealing bug must
    never silently drop or double-count work), then copies each phase's
    fields into the shard's merged result and re-derives span payloads
    from the merge.  The output is byte-identical to running
    :func:`run_shard_epoch` per shard.
    """
    expected = {
        (task.shard, chunk)
        for task in tasks
        for chunk in range(len(CHUNK_PHASES))
    }
    by_id: Dict[Tuple[int, int], ChunkResult] = {}
    for cr in chunk_results:
        key = (cr.shard, cr.chunk)
        if key not in expected:
            raise ValueError(f"unexpected chunk result {key}")
        if key in by_id:
            raise ValueError(f"chunk {key} executed more than once")
        by_id[key] = cr
    missing = expected - set(by_id)
    if missing:
        raise ValueError(f"chunks never executed: {sorted(missing)}")

    results: List[ShardEpochResult] = []
    for task in sorted(tasks, key=lambda t: t.shard):
        merged = ShardEpochResult(shard=task.shard)
        for chunk, phase in enumerate(CHUNK_PHASES):
            cr = by_id[(task.shard, chunk)]
            for name in _PHASE_FIELDS[phase]:
                setattr(merged, name, getattr(cr.partial, name))
            merged.phase_seconds[PHASE_NAMES[phase]] = cr.seconds
        if task.trace:
            merged.span_payloads.append(epoch_span_payload(task, merged))
            merged.span_payloads.extend(chunk_span_payloads(task, merged))
        results.append(merged)
    return results


def run_epoch_chunks(pool, tasks: Sequence[ShardTask]) -> List[ShardEpochResult]:
    """Run one epoch's shard work as stolen chunks on ``pool``.

    Drop-in replacement for ``pool.map_ordered(run_shard_epoch, tasks)``
    with byte-identical results: chunks are submitted in steal order,
    gathered in submission order, and folded in ``(shard, chunk)``
    order, so neither completion order nor worker placement can leak
    into the output.
    """
    chunk_tasks = make_chunk_tasks(tasks)
    chunk_results = pool.map_ordered(run_shard_chunk, chunk_tasks)
    return fold_chunk_results(tasks, chunk_results)
