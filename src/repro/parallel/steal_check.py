"""Steal-equivalence gate: workers x stealing, byte for byte.

``python -m repro.parallel.steal_check`` runs the load workload on a
small seeded population for every cell of the matrix
``workers ∈ {1, 2, 4} × stealing ∈ {off, on}`` and asserts that the
metrics payload **and** the exported trace are byte-identical across
all six cells — i.e. neither the worker count nor the chunked stealing
schedule can change a single output byte.  It additionally checks:

* the stolen runs actually went through the chunk layer (the
  deterministic ``chunk_tasks_run`` counter equals
  ``epochs × n_shards × n_chunks``);
* the weighted planner was active (this is the default plan mode), so
  the gate covers replanned boundaries too;
* an ``"equal"``-plan run also holds the workers × stealing
  equivalence (stealing must not depend on how boundaries were cut).

Exits non-zero on any violation (the ``make steal-check`` target).
"""

from __future__ import annotations

import json
from typing import Dict

from repro.parallel.check import CHECK_CONFIG
from repro.parallel.worker import CHUNK_PHASES

__all__ = ["check_steal", "STEAL_WORKERS"]

STEAL_WORKERS = (1, 2, 4)


def _payload(result) -> str:
    return json.dumps(result.metrics, sort_keys=True)


def check_steal() -> Dict[str, object]:
    """Assert metrics+trace equivalence over workers x stealing.

    Returns a summary dict; raises AssertionError on violation.
    """
    from repro.workloads.load import run_load

    baseline = run_load(workers=1, steal=False, trace=True, **CHECK_CONFIG)
    expected_chunks = (
        baseline.epochs * baseline.n_shards * len(CHUNK_PHASES)
    )
    assert baseline.plan_mode == "weighted", (
        "steal-check expects the weighted planner to be the default"
    )

    cells = 0
    for steal in (False, True):
        for workers in STEAL_WORKERS:
            if workers == 1 and not steal:
                run = baseline
            else:
                run = run_load(
                    workers=workers, steal=steal, trace=True, **CHECK_CONFIG
                )
            assert _payload(run) == _payload(baseline), (
                f"workers={workers} steal={steal} changed the metrics "
                "payload — chunk scheduling leaked into results"
            )
            assert run.trace_jsonl == baseline.trace_jsonl, (
                f"workers={workers} steal={steal} changed the exported "
                "trace — span folding is not deterministic"
            )
            if steal:
                assert run.chunk_tasks_run == expected_chunks, (
                    f"steal run executed {run.chunk_tasks_run} chunks, "
                    f"expected {expected_chunks}"
                )
            else:
                assert run.chunk_tasks_run == 0
            cells += 1

    # The equivalence must also hold when boundaries are equal cuts.
    eq_base = run_load(
        workers=1, steal=False, plan_mode="equal", trace=True, **CHECK_CONFIG
    )
    eq_steal = run_load(
        workers=2, steal=True, plan_mode="equal", trace=True, **CHECK_CONFIG
    )
    assert _payload(eq_base) == _payload(eq_steal), (
        "equal-plan stealing changed the metrics payload"
    )
    assert eq_base.trace_jsonl == eq_steal.trace_jsonl, (
        "equal-plan stealing changed the exported trace"
    )
    cells += 2

    return {
        "workers_matrix": list(STEAL_WORKERS),
        "cells_compared": cells,
        "n_shards": baseline.n_shards,
        "chunks_per_steal_run": expected_chunks,
        "txs_included": baseline.txs_included,
        "trace_bytes": len(baseline.trace_jsonl),
        "byte_identical": True,
    }


if __name__ == "__main__":
    summary = check_steal()
    for key, value in summary.items():
        print(f"{key:22s} {value}")
    print(
        "steal-check: OK (workers x stealing matrix byte-identical, "
        "every chunk executed exactly once)"
    )
