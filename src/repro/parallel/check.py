"""Parallel-equivalence gate: serial vs. worker-pool, byte for byte.

``python -m repro.parallel.check`` runs the load workload on a small
seeded population once inline and once on a 2-process pool (plus a
serial replay), then asserts:

* **worker invariance** — metrics payloads *and* exported traces are
  byte-identical between ``workers=1`` and ``workers=2``;
* **replay determinism** — two serial runs are byte-identical (the
  pre-existing guarantee did not regress);
* **substrate invariants** — every admitted transaction was included,
  every epoch closed its proposal and refreshed trust.

Exits non-zero on any violation (the ``make parallel-check`` target).
"""

from __future__ import annotations

import json
from typing import Dict

__all__ = ["check_parallel", "CHECK_CONFIG"]

# Small enough for CI, big enough that every phase carries real traffic
# (multiple shards, binding privacy caps, live cascade boundaries).
CHECK_CONFIG = dict(
    n_agents=1_200,
    epochs=3,
    seed=2022,
    txs_per_epoch=240,
    ratings_per_epoch=120,
    reports_per_epoch=60,
    votes_per_epoch=80,
    electorate_size=400,
    interactions_per_epoch=300,
    frames_per_epoch=240,
    cascade_members=120,
)


def _payload(result) -> str:
    return json.dumps(result.metrics, sort_keys=True)


def check_parallel(workers: int = 2) -> Dict[str, object]:
    """Run serial vs. ``workers``-pool and assert byte equivalence.

    Returns a summary dict; raises AssertionError on violation.
    """
    from repro.workloads.load import run_load

    serial = run_load(workers=1, trace=True, **CHECK_CONFIG)
    replay = run_load(workers=1, trace=True, **CHECK_CONFIG)
    pooled = run_load(workers=workers, trace=True, **CHECK_CONFIG)

    assert _payload(serial) == _payload(replay), (
        "serial replay diverged: same seed, different metrics payloads"
    )
    assert _payload(serial) == _payload(pooled), (
        f"workers={workers} changed the metrics payload — the ordered "
        "reduction is not deterministic"
    )
    assert serial.trace_jsonl == pooled.trace_jsonl, (
        f"workers={workers} changed the exported trace — span merging "
        "is not deterministic"
    )
    assert serial.trace_jsonl is not None and serial.trace_jsonl
    assert serial.txs_included == serial.txs_submitted > 0
    assert serial.proposals_closed == serial.epochs
    assert serial.trust_computes == serial.epochs
    assert serial.frames_released > 0
    assert serial.frames_blocked_consent > 0

    return {
        "workers_compared": workers,
        "n_shards": serial.n_shards,
        "txs_included": serial.txs_included,
        "frames_released": serial.frames_released,
        "frames_blocked_budget": serial.frames_blocked_budget,
        "cascade_reach": serial.cascade_reach,
        "trace_bytes": len(serial.trace_jsonl),
        "byte_identical": True,
    }


if __name__ == "__main__":
    summary = check_parallel()
    for key, value in summary.items():
        print(f"{key:22s} {value}")
    print("parallel-check: OK (serial == workers pool, byte-identical)")
