"""Sharded multi-core execution for the population-scale workload.

The paper frames the metaverse as infrastructure for "millions of users
across the world"; this package is the repro's answer to serving that
scale on real hardware.  It partitions the seeded society into shards
(:mod:`~repro.parallel.plan`), runs shard-local substrate work in a
process pool (:mod:`~repro.parallel.worker`,
:mod:`~repro.parallel.pool`), and folds results back at epoch barriers
through an ordered reduction (:mod:`~repro.parallel.reduce`) — so
``run_load(workers=K)`` is **byte-identical for any K**, including the
inline serial path.

Determinism is structural, not best-effort:

* every random stream is a pure function of
  ``(seed, shard, epoch, phase)`` — never of process identity;
* workers are pure functions of their task (all mutable cross-epoch
  state ships as explicit snapshots);
* results are consumed in shard order, never completion order.
"""

from repro.parallel.plan import Phase, ShardPlan, shard_phase_rng
from repro.parallel.pool import (
    ProcessPool,
    SerialPool,
    make_pool,
    parallel_map,
)
from repro.parallel.worker import (
    ShardEpochResult,
    ShardTask,
    run_shard_epoch,
)

__all__ = [
    "Phase",
    "ShardPlan",
    "shard_phase_rng",
    "SerialPool",
    "ProcessPool",
    "make_pool",
    "parallel_map",
    "ShardTask",
    "ShardEpochResult",
    "run_shard_epoch",
]
