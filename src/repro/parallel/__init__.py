"""Sharded multi-core execution for the population-scale workload.

The paper frames the metaverse as infrastructure for "millions of users
across the world"; this package is the repro's answer to serving that
scale on real hardware.  It partitions the seeded society into shards
(:mod:`~repro.parallel.plan`), runs shard-local substrate work in a
process pool (:mod:`~repro.parallel.worker`,
:mod:`~repro.parallel.pool`), and folds results back at epoch barriers
through an ordered reduction (:mod:`~repro.parallel.reduce`) — so
``run_load(workers=K)`` is **byte-identical for any K**, including the
inline serial path.

Determinism is structural, not best-effort:

* every random stream is a pure function of
  ``(seed, shard, epoch, phase)`` — never of process identity;
* workers are pure functions of their task (all mutable cross-epoch
  state ships as explicit snapshots);
* results are consumed in shard order, never completion order.
"""

from repro.parallel.plan import (
    CostModel,
    DEFAULT_COST_MODEL,
    Phase,
    ShardPlan,
    activity_weights,
    auto_shard_count,
    blend_profile,
    shard_phase_rng,
    split_weighted,
    weighted_boundaries,
)
from repro.parallel.pool import (
    ProcessPool,
    SerialPool,
    make_pool,
    parallel_map,
    shared_pool,
    shutdown_shared_pools,
)
from repro.parallel.steal import (
    ChunkResult,
    ChunkTask,
    fold_chunk_results,
    make_chunk_tasks,
    run_epoch_chunks,
    run_shard_chunk,
)
from repro.parallel.transport import (
    ColumnDescriptor,
    ColumnPlane,
    DeltaDescriptor,
    StaleDescriptorError,
    TransportError,
    attach_column,
    leaked_segments,
    resolve_descriptor,
    shm_available,
)
from repro.parallel.worker import (
    CHUNK_PHASES,
    ShardEpochResult,
    ShardTask,
    run_shard_epoch,
)

__all__ = [
    "Phase",
    "ShardPlan",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "shard_phase_rng",
    "split_weighted",
    "activity_weights",
    "weighted_boundaries",
    "blend_profile",
    "auto_shard_count",
    "SerialPool",
    "ProcessPool",
    "make_pool",
    "shared_pool",
    "shutdown_shared_pools",
    "parallel_map",
    "ColumnPlane",
    "ColumnDescriptor",
    "DeltaDescriptor",
    "TransportError",
    "StaleDescriptorError",
    "attach_column",
    "resolve_descriptor",
    "shm_available",
    "leaked_segments",
    "ShardTask",
    "ShardEpochResult",
    "run_shard_epoch",
    "CHUNK_PHASES",
    "ChunkTask",
    "ChunkResult",
    "make_chunk_tasks",
    "run_shard_chunk",
    "fold_chunk_results",
    "run_epoch_chunks",
]
