"""Shard-local epoch work: what runs inside a worker process.

:func:`run_shard_epoch` is a **pure function** of its
:class:`ShardTask`: given the same task it returns the same
:class:`ShardEpochResult` bytes whether it runs inline, in the first of
four workers, or alone in a one-process pool.  That purity — plus the
ordered reduction in :mod:`repro.workloads.load` — is the entire
determinism argument for ``run_load(workers=K)``.

What is shard-local (runs here, in parallel):

* **transaction build + admission prechecks** — senders are shard-owned,
  so nonce chains never race; the canonical encoding and tx-id hashing
  (the CPU cost of admission) happen here, and the parent seeds its
  ``Transaction`` objects with the precomputed hashes;
* **trust-rating / report edge generation** — edge deltas may point at
  any shard (cross-shard edges are plain data; they merge at the
  barrier);
* **abuse classification + report willingness** — the vectorized
  Bernoulli passes over the shard's interaction batch;
* **privacy frame synthesis + budget admission** — hot subjects are
  shard-partitioned, so each worker charges a private snapshot of its
  subjects' spends and *predicts* exactly what the authoritative
  pipeline will decide at the barrier (the parent asserts the match —
  the "local apply" half of the two-phase protocol);
* **cascade rounds over shard-interior edges** — each shard owns a
  social subgraph; cross-shard edges are withheld from the cascade and
  exchanged at the epoch barrier by the parent.

What is **not** shard-local (runs at the parent's epoch barrier, in
shard-id order): mempool/chain state, the EigenTrust solve, DAO tally,
the moderation case queue, the privacy pipeline's authoritative
consent/PET/budget/disclosure stages, and all metric observation.

Per-process caches (agent addresses, shard social graphs) hold only
values that are pure functions of their keys, so cache state can never
make two schedules diverge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.governance.moderation import AbuseClassifier, ReportDesk
from repro.obs.context import derive_trace_id
from repro.ledger.transactions import Transaction, TxKind
from repro.parallel.plan import DEFAULT_COST_MODEL, Phase, ShardPlan
from repro.parallel.transport import ColumnDescriptor, resolve_descriptor
from repro.privacy.sensors import SensorFrame
from repro.social.graph import SocialGraph
from repro.social.misinformation import MisinformationModel
from repro.world.interactions import InteractionBatch

# NOTE: repro.workloads modules are imported lazily inside functions —
# the workloads package imports the load workload, which imports this
# package for its shard machinery (a deliberate layering: parallel is
# below workloads, except for the synthetic generators it reuses).

__all__ = [
    "ShardTask",
    "ShardEpochResult",
    "run_shard_epoch",
    "run_phase",
    "epoch_span_payload",
    "chunk_span_payloads",
    "phase_op_counts",
    "shard_graph",
    "warm_caches",
    "channel_of",
    "CHUNK_PHASES",
    "PHASE_NAMES",
    "FRAME_VALUE_DIMS",
]

# Dimensionality of synthetic sensor frames (small but non-trivial, so
# PETs have something real to obfuscate).
FRAME_VALUE_DIMS = 4


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs for one (shard, epoch) cell.

    Only plain ints/floats/tuples/dicts — cheap to pickle.  The mutable
    cross-epoch state a shard depends on arrives as explicit snapshots
    (``base_nonces``, ``hot_spent``), never via worker-process memory,
    so shard→process placement is free to change between epochs.
    """

    plan: ShardPlan
    shard: int
    epoch: int
    # Per-epoch quotas for this shard.
    tx_count: int
    rating_count: int
    report_count: int
    vote_count: int
    interaction_count: int
    frame_count: int
    # Snapshot state: sender nonce chains (global index -> next nonce;
    # senders never seen on-chain are omitted) and hot-subject spends
    # (aligned with ``plan.hot_subjects_of(shard)``).  The columnar load
    # path ships ``base_nonce_slice`` — the shard's contiguous int32
    # nonce-column slice, indexed by ``sender - lo`` — instead of the
    # per-agent dict, and ``hot_spent`` as a float64 array instead of a
    # tuple; both carry the same values, so results are byte-identical.
    base_nonces: Dict[int, int] = field(default_factory=dict)
    base_nonce_slice: Optional[np.ndarray] = None
    hot_spent: "Tuple[float, ...] | np.ndarray" = ()
    # Shared-memory transport: descriptors replace the materialized
    # snapshots above (``transport="shm"``).  ``nonce_desc`` windows the
    # nonce column on the shard's ``[lo, hi)``; ``spent_desc`` covers the
    # whole privacy-spent column (hot subjects index into it).  Workers
    # attach read-only views on demand; the values read are bit-identical
    # to the arrays the pickle path ships.
    nonce_desc: Optional[ColumnDescriptor] = None
    spent_desc: Optional[ColumnDescriptor] = None
    # Privacy-phase constants.
    privacy_cap: float = 4.0
    channels: Tuple[Tuple[str, float], ...] = ()
    consent_denied_mod: int = 10
    # Cascade-phase constants (0 members disables the phase).
    cascade_members: int = 0
    cascade_boundary: int = 0
    # Cross-shard activations routed to this shard at the previous epoch
    # barrier: each one seeds an extra member in this epoch's cascade.
    carry_seeds: int = 0
    trace: bool = False


@dataclass
class ShardEpochResult:
    """One shard's contribution to one epoch barrier."""

    shard: int
    # Transactions, columnar; tx_ids are the worker-computed hashes.
    tx_senders: List[int] = field(default_factory=list)
    tx_recipients: List[int] = field(default_factory=list)
    tx_amounts: List[int] = field(default_factory=list)
    tx_fees: List[int] = field(default_factory=list)
    tx_nonces: List[int] = field(default_factory=list)
    tx_ids: List[str] = field(default_factory=list)
    tx_precheck_failures: int = 0
    # Reputation edge deltas (indices are global).
    rating_raters: List[int] = field(default_factory=list)
    rating_ratees: List[int] = field(default_factory=list)
    rating_weights: List[float] = field(default_factory=list)
    report_reporters: List[int] = field(default_factory=list)
    report_accused: List[int] = field(default_factory=list)
    report_severities: List[float] = field(default_factory=list)
    # Governance ballots.
    vote_voters: List[int] = field(default_factory=list)
    vote_yes: List[bool] = field(default_factory=list)
    # Moderation: the shard's columnar batch plus the worker-side
    # classification / report verdict rows (indices into the batch).
    interactions: Optional[InteractionBatch] = None
    flagged_rows: Optional[np.ndarray] = None
    report_rows: Optional[np.ndarray] = None
    # Privacy: synthesized frames plus the shard-local admission
    # prediction the parent validates against the real pipeline.
    frames: List[SensorFrame] = field(default_factory=list)
    predicted_outcomes: Dict[str, int] = field(default_factory=dict)
    # Cascade over shard-interior edges.
    cascade_reach: int = 0
    cascade_rounds: int = 0
    cascade_timeline: Tuple[int, ...] = ()
    boundary_reached: Tuple[bool, ...] = ()
    # Optional span payloads for the parent tracer to merge.
    span_payloads: List[dict] = field(default_factory=list)
    # Wall seconds spent per phase, keyed by PHASE_NAMES values.  Timing
    # only — it feeds the shard-imbalance monitor and MUST never enter
    # metrics, traces, or any compared payload.
    phase_seconds: Dict[str, float] = field(default_factory=dict)


# ----------------------------------------------------------------------
# Per-process caches (pure functions of their keys)
# ----------------------------------------------------------------------
_ADDRESS_CACHE: Dict[int, List[str]] = {}
_GRAPH_CACHE: Dict[Tuple[int, int, int, int], SocialGraph] = {}


def _addresses(n_agents: int) -> List[str]:
    """The agent address table, built once per process per population."""
    table = _ADDRESS_CACHE.get(n_agents)
    if table is None:
        from repro.workloads.load import agent_addresses

        table = agent_addresses(n_agents)
        _ADDRESS_CACHE[n_agents] = table
    return table


def shard_graph(plan: ShardPlan, shard: int, members: int) -> SocialGraph:
    """The shard's social subgraph (scale-free over its first members).

    Topology depends only on ``(seed, n_shards, shard, members)`` — the
    epoch-independent :data:`Phase.GRAPH` stream — so every process that
    ever builds this shard's graph builds the same one.  Cached per
    process; on fork platforms a parent-side prebuild is inherited by
    the whole pool.
    """
    key = (plan.seed, plan.n_shards, shard, members)
    graph = _GRAPH_CACHE.get(key)
    if graph is None:
        rng = plan.rng(shard, 0, Phase.GRAPH)
        # Barabási–Albert needs attachment < members; tiny shards (2-3
        # cascade members) clamp down instead of crashing the phase.
        graph = SocialGraph.scale_free(
            members, attachment=min(3, members - 1), rng=rng,
            prefix=f"s{shard}-m",
        )
        graph.csr()  # compile once; cascades then run warm
        _GRAPH_CACHE[key] = graph
    return graph


def warm_caches(
    plan: ShardPlan, addresses: List[str], cascade_members: int
) -> None:
    """Pre-build the per-process caches in the parent.

    Called before pool creation so fork-platform workers inherit the
    warmed address table and every shard's social graph instead of each
    process rebuilding them lazily (identical results either way — this
    is purely a cost optimisation, which is why it is safe).
    """
    _ADDRESS_CACHE[plan.n_agents] = list(addresses)
    if cascade_members > 0:
        for shard in range(plan.n_shards):
            members = min(cascade_members, plan.size_of(shard))
            if members >= 2:
                shard_graph(plan, shard, members)


# ----------------------------------------------------------------------
# The worker entry point
# ----------------------------------------------------------------------

# The chunkable phases of one (shard, epoch) cell, in fold order.  A
# chunk is one phase: phases are the finest split that preserves the
# stream structure (the transaction phase's nonce chain and the privacy
# phase's per-subject budget accumulation are sequential within a shard,
# so sub-phase splits would change results).  Chunk ids are stable:
# chunk ``c`` of any shard always means ``CHUNK_PHASES[c]``.
CHUNK_PHASES: Tuple[int, ...] = (
    Phase.TRANSACTIONS,
    Phase.RATINGS,
    Phase.REPORTS,
    Phase.VOTES,
    Phase.INTERACTIONS,
    Phase.FRAMES,
    Phase.CASCADE,
)

PHASE_NAMES: Dict[int, str] = {
    Phase.TRANSACTIONS: "transactions",
    Phase.RATINGS: "ratings",
    Phase.REPORTS: "reports",
    Phase.VOTES: "votes",
    Phase.INTERACTIONS: "interactions",
    Phase.FRAMES: "frames",
    Phase.CASCADE: "cascade",
}

# Cost-model attribute charged per op of each phase (for span
# attribution and the planner's profile).
_PHASE_COST_ATTR: Dict[int, str] = {
    Phase.TRANSACTIONS: "tx",
    Phase.RATINGS: "rating",
    Phase.REPORTS: "report",
    Phase.VOTES: "vote",
    Phase.INTERACTIONS: "interaction",
    Phase.FRAMES: "frame",
    Phase.CASCADE: "cascade",
}


def run_phase(task: ShardTask, result: ShardEpochResult, phase: int) -> None:
    """Run one shard-local phase into ``result``.

    Each phase draws only its own ``(shard, epoch, phase)`` stream and
    writes only its own result fields, so phases are independent units:
    running them one-per-call (the stealing layer's chunks) or all in
    sequence (:func:`run_shard_epoch`) produces identical bytes.
    """
    plan = task.plan
    lo, hi = plan.range_of(task.shard)
    size = hi - lo
    now = float(task.epoch)
    if phase == Phase.TRANSACTIONS:
        _generate_transactions(task, result, _addresses(plan.n_agents), lo, size, now)
    elif phase == Phase.RATINGS:
        _generate_ratings(task, result, lo, size)
    elif phase == Phase.REPORTS:
        _generate_reports(task, result, lo, size)
    elif phase == Phase.VOTES:
        _generate_votes(task, result)
    elif phase == Phase.INTERACTIONS:
        _moderation_prepass(task, result, lo, size, now)
    elif phase == Phase.FRAMES:
        _privacy_prepass(task, result, _addresses(plan.n_agents), now)
    elif phase == Phase.CASCADE:
        _cascade_rounds(task, result, size)
    else:
        raise ValueError(f"not a chunkable phase: {phase}")


def phase_op_counts(result: ShardEpochResult) -> Dict[int, int]:
    """Deterministic op counts per phase, read off a (merged) result."""
    return {
        Phase.TRANSACTIONS: len(result.tx_ids) + result.tx_precheck_failures,
        Phase.RATINGS: len(result.rating_raters),
        Phase.REPORTS: len(result.report_reporters),
        Phase.VOTES: len(result.vote_voters),
        Phase.INTERACTIONS: (
            len(result.interactions) if result.interactions is not None else 0
        ),
        Phase.FRAMES: len(result.frames),
        Phase.CASCADE: result.cascade_reach,
    }


def epoch_span_payload(task: ShardTask, result: ShardEpochResult) -> dict:
    """The shard's epoch span, as a payload for the parent tracer.

    A pure function of ``(task, result)`` — both execution modes
    (monolithic shard tasks and stolen chunks) emit it from the merged
    result, so traces are byte-identical regardless of scheduling.
    """
    now = float(task.epoch)
    return {
        "source": "parallel.worker",
        "name": "shard.epoch",
        # A pure function of (seed, shard, epoch): the merged
        # span keeps the same trace id for any worker count.
        "trace_id": derive_trace_id(
            "shard", task.plan.seed, task.shard, task.epoch
        ),
        "start": now,
        "end": now + 0.9,
        "status": "ok",
        "attributes": {
            "shard": task.shard,
            "epoch": task.epoch,
            "chunks": len(CHUNK_PHASES),
            "txs": len(result.tx_ids),
            "ratings": len(result.rating_raters),
            "reports": len(result.report_reporters),
            "votes": len(result.vote_voters),
            "interactions": (
                len(result.interactions)
                if result.interactions is not None
                else 0
            ),
            "frames": len(result.frames),
            "cascade_reach": result.cascade_reach,
        },
    }


def chunk_span_payloads(
    task: ShardTask, result: ShardEpochResult
) -> List[dict]:
    """Per-chunk attribution spans under the shard's epoch trace.

    One span per ``(shard, chunk)``, carrying the chunk's deterministic
    op count and cost units (:data:`~repro.parallel.plan.DEFAULT_COST_MODEL`
    prices).  Start/end are simulated-time offsets — pure functions of
    the epoch and chunk id, never wall clock — so the emitted trace
    bytes cannot depend on which worker ran the chunk or whether
    stealing was on.
    """
    now = float(task.epoch)
    trace_id = derive_trace_id(
        "shard", task.plan.seed, task.shard, task.epoch
    )
    ops = phase_op_counts(result)
    costs = DEFAULT_COST_MODEL.as_dict()
    payloads = []
    for chunk, phase in enumerate(CHUNK_PHASES):
        start = now + chunk / 10.0
        payloads.append(
            {
                "source": "parallel.worker",
                "name": "shard.chunk",
                "trace_id": trace_id,
                "start": start,
                "end": start + 0.1,
                "status": "ok",
                "attributes": {
                    "shard": task.shard,
                    "epoch": task.epoch,
                    "chunk": chunk,
                    "phase": PHASE_NAMES[phase],
                    "ops": ops[phase],
                    "cost_units": ops[phase] * costs[_PHASE_COST_ATTR[phase]],
                },
            }
        )
    return payloads


def run_shard_epoch(task: ShardTask) -> ShardEpochResult:
    """Run every shard-local phase of one epoch; see the module docstring."""
    result = ShardEpochResult(shard=task.shard)
    for phase in CHUNK_PHASES:
        t0 = perf_counter()
        run_phase(task, result, phase)
        result.phase_seconds[PHASE_NAMES[phase]] = perf_counter() - t0

    if task.trace:
        result.span_payloads.append(epoch_span_payload(task, result))
        result.span_payloads.extend(chunk_span_payloads(task, result))
    return result


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------
def _generate_transactions(
    task: ShardTask,
    result: ShardEpochResult,
    addresses: List[str],
    lo: int,
    size: int,
    now: float,
) -> None:
    """Build + precheck this shard's transfers; hashing happens here.

    Senders are shard-local (the shard owns their nonce chains);
    recipients are drawn over the whole population, so a transfer may
    credit another shard — the debit is validated locally, the credit is
    applied by the parent ledger at the barrier (two-phase).
    """
    if task.tx_count <= 0:
        return
    from repro.workloads.load import SyntheticSignedTransaction

    rng = task.plan.rng(task.shard, task.epoch, Phase.TRANSACTIONS)
    if task.nonce_desc is not None or task.base_nonce_slice is not None:
        # Columnar shipping: the shard's contiguous nonce-column slice,
        # indexed by sender - lo — either materialized in the task
        # (pickle transport) or attached through the shared-memory plane
        # (a descriptor window on the nonce column).  Same values either
        # way, so the generated transactions are byte-identical.
        base_slice = (
            resolve_descriptor(task.nonce_desc)
            if task.nonce_desc is not None
            else task.base_nonce_slice
        )
        nonce_slice = np.array(base_slice, dtype=np.int64)

        def nonce_get(sender: int) -> int:
            return int(nonce_slice[sender - lo])

        def nonce_set(sender: int, value: int) -> None:
            nonce_slice[sender - lo] = value

    else:
        nonces = dict(task.base_nonces)

        def nonce_get(sender: int) -> int:
            return nonces.get(sender, 0)

        def nonce_set(sender: int, value: int) -> None:
            nonces[sender] = value

    for _ in range(task.tx_count):
        sender = lo + int(rng.integers(size))
        recipient = int(rng.integers(task.plan.n_agents))
        if recipient == sender:
            recipient = (recipient + 1) % task.plan.n_agents
        amount = int(rng.integers(1, 51))
        fee = int(rng.integers(1, 101))
        nonce = nonce_get(sender)
        tx = Transaction(
            sender=addresses[sender],
            recipient=addresses[recipient],
            amount=amount,
            fee=fee,
            nonce=nonce,
            kind=TxKind.TRANSFER,
        )
        tx_id = tx.tx_id  # the sha256 hot path, paid in the worker
        # Admission prechecks (signature pinned by the synthetic wallet,
        # nonce contiguity by construction); a failure is counted and the
        # transaction withheld from the barrier merge.
        stx = SyntheticSignedTransaction(tx)
        if not stx.verify() or nonce != nonce_get(sender):
            result.tx_precheck_failures += 1
            continue
        nonce_set(sender, nonce + 1)
        result.tx_senders.append(sender)
        result.tx_recipients.append(recipient)
        result.tx_amounts.append(amount)
        result.tx_fees.append(fee)
        result.tx_nonces.append(nonce)
        result.tx_ids.append(tx_id)


def _generate_ratings(
    task: ShardTask, result: ShardEpochResult, lo: int, size: int
) -> None:
    if task.rating_count <= 0:
        return
    rng = task.plan.rng(task.shard, task.epoch, Phase.RATINGS)
    n = task.plan.n_agents
    for _ in range(task.rating_count):
        rater = lo + int(rng.integers(size))
        ratee = int(rng.integers(n))
        if ratee == rater:
            ratee = (ratee + 1) % n
        result.rating_raters.append(rater)
        result.rating_ratees.append(ratee)
        result.rating_weights.append(float(rng.uniform(0.1, 1.0)))


def _generate_reports(
    task: ShardTask, result: ShardEpochResult, lo: int, size: int
) -> None:
    if task.report_count <= 0:
        return
    rng = task.plan.rng(task.shard, task.epoch, Phase.REPORTS)
    n = task.plan.n_agents
    for _ in range(task.report_count):
        reporter = lo + int(rng.integers(size))
        accused = int(rng.integers(n))
        if accused == reporter:
            accused = (accused + 1) % n
        result.report_reporters.append(reporter)
        result.report_accused.append(accused)
        result.report_severities.append(float(rng.uniform(0.2, 1.0)))


def _generate_votes(task: ShardTask, result: ShardEpochResult) -> None:
    mlo, mhi = task.plan.member_range_of(task.shard)
    if task.vote_count <= 0 or mhi <= mlo:
        return
    rng = task.plan.rng(task.shard, task.epoch, Phase.VOTES)
    for _ in range(task.vote_count):
        result.vote_voters.append(mlo + int(rng.integers(mhi - mlo)))
        result.vote_yes.append(bool(rng.random() < 0.6))


def _moderation_prepass(
    task: ShardTask,
    result: ShardEpochResult,
    lo: int,
    size: int,
    now: float,
) -> None:
    """Generate the shard-interior interaction batch and classify it.

    Classification and report-willingness draws (the vectorized hot
    paths) run here on the shard's own stream; the stateful case queue,
    capacity-bounded review, and sanctions stay with the parent.
    """
    if task.interaction_count <= 0 or size < 2:
        return
    from repro.workloads.generators import synthetic_interaction_batch
    from repro.workloads.load import agent_address

    rng = task.plan.rng(task.shard, task.epoch, Phase.INTERACTIONS)
    batch = synthetic_interaction_batch(
        size,
        task.interaction_count,
        time=now,
        rng=rng,
        id_of=agent_address,
    )
    # Lift shard-local indices to global agent indices (the batch was
    # generated shard-interior: both endpoints stay inside the shard).
    batch.initiators += lo
    batch.targets += lo

    delivered_rows = np.flatnonzero(batch.delivered)
    flagged_rows = np.empty(0, dtype=np.int64)
    if delivered_rows.size:
        flags = AbuseClassifier(rng).flag_array(batch.abusive[delivered_rows])
        flagged_rows = delivered_rows[flags]
    report_rows = ReportDesk(rng).collect_batch(batch)

    result.interactions = batch
    result.flagged_rows = flagged_rows
    result.report_rows = report_rows


def _privacy_prepass(
    task: ShardTask,
    result: ShardEpochResult,
    addresses: List[str],
    now: float,
) -> None:
    """Synthesize the shard's sensor frames and charge a local budget.

    The worker replays the authoritative pipeline's admission logic —
    per-channel grouping, consent gate, then sequential budget charges
    against the shipped spend snapshot — so its predicted outcome counts
    must match the parent's ``PrivacyPipeline.ingest_all`` exactly.  A
    mismatch means the two-phase protocol lost determinism and the
    parent raises.

    Each hot subject streams on exactly **one** channel (fixed by hot
    rank).  That pins the relative order of a subject's charges to its
    offered order alone, so the parent's channel grouping over the
    *merged* frame list — whose channel first-occurrence order the
    worker cannot see — can never reorder any subject's budget
    accumulation relative to this prediction.
    """
    hot = task.plan.hot_subjects_of(task.shard)
    if task.frame_count <= 0 or not hot or not task.channels:
        return
    from repro.workloads.generators import synthetic_frame_burst

    rng = task.plan.rng(task.shard, task.epoch, Phase.FRAMES)
    channel_eps = dict(task.channels)

    frames, subject_indices = synthetic_frame_burst(
        hot,
        task.frame_count,
        time=now,
        rng=rng,
        channel_of=lambda subject: channel_of(task, subject),
        subject_id_of=lambda subject: addresses[subject],
        value_dims=FRAME_VALUE_DIMS,
    )

    # --- local apply: replicate ingest_all's admission, stage by stage.
    if task.spent_desc is not None:
        # Shared-memory transport: fancy-index the shard's hot subjects
        # out of the attached spent column — the same float64 values the
        # pickle path ships materialized.
        hot_spent = resolve_descriptor(task.spent_desc)[
            np.asarray(hot, dtype=np.int64)
        ]
    else:
        hot_spent = task.hot_spent
    spent = {
        agent: float(used)
        for agent, used in zip(hot, hot_spent)
    }
    by_channel: Dict[str, List[int]] = {}
    for i, frame in enumerate(frames):
        by_channel.setdefault(frame.channel, []).append(i)

    outcomes = {"released": 0, "blocked_consent": 0, "blocked_budget": 0}
    for channel, idxs in by_channel.items():
        eps = channel_eps[channel]
        for i in idxs:
            subject = subject_indices[i]
            if not _consented(task, subject):
                outcomes["blocked_consent"] += 1
                continue
            used = spent.get(subject, 0.0)
            if eps > max(0.0, task.privacy_cap - used) + 1e-12:
                outcomes["blocked_budget"] += 1
                continue
            spent[subject] = used + eps
            outcomes["released"] += 1

    result.frames = frames
    result.predicted_outcomes = outcomes


def channel_of(task: ShardTask, subject: int) -> str:
    """The one channel hot ``subject`` streams on (fixed by hot rank)."""
    rank = subject // task.plan.hot_stride
    return task.channels[rank % len(task.channels)][0]


def _consented(task: ShardTask, subject: int) -> bool:
    """The static consent rule: every ``consent_denied_mod``-th hot
    subject (by hot rank) never opted in — so the consent gate carries
    real refusal traffic at any scale."""
    if task.consent_denied_mod <= 0:
        return True
    rank = subject // task.plan.hot_stride
    return rank % task.consent_denied_mod != 0


def _cascade_rounds(
    task: ShardTask, result: ShardEpochResult, size: int
) -> None:
    """One misinformation cascade over the shard's interior edges.

    Cross-shard social ties are *not* in this graph; they are exchanged
    at the epoch barrier (the parent draws the boundary activations in
    global shard order).  ``boundary_reached`` reports which designated
    boundary members this cascade reached, i.e. which cross-shard edges
    have a live source; ``carry_seeds`` activations routed *to* this
    shard at the previous barrier seed extra members now.
    """
    members = min(task.cascade_members, size)
    if members < 2:
        return
    graph = shard_graph(task.plan, task.shard, members)
    rng = task.plan.rng(task.shard, task.epoch, Phase.CASCADE)
    model = MisinformationModel(graph, rng)
    ordered = graph.sorted_members()
    n_seeds = min(2 + max(0, task.carry_seeds), len(ordered))
    seeds = list(ordered[:n_seeds])
    spread = model.spread(seeds)

    boundary = max(0, min(task.cascade_boundary, members))
    boundary_members = ordered[len(ordered) - boundary :] if boundary else ()
    result.cascade_reach = spread.reach
    result.cascade_rounds = spread.rounds
    result.cascade_timeline = tuple(spread.timeline)
    result.boundary_reached = tuple(
        member in spread.reached for member in boundary_members
    )
