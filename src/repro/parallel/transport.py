"""Zero-copy shard transport: the shared-memory column plane.

Before this module, every epoch re-pickled shard state into each
:class:`~repro.parallel.worker.ShardTask`: the shard's nonce-column
slice, the hot-subject spend snapshot — serialization cost growing with
``agents x epochs x shards`` even though the columns never leave the
parent's address space.  The plane moves those columns into
``multiprocessing.shared_memory`` segments **once** and ships tasks
that carry only :class:`ColumnDescriptor` handles (segment name, dtype,
``(lo, hi)`` window, generation) — a few hundred bytes regardless of
population size.  Workers attach read-only views on demand and cache
the attachment per process.

Generations make stale reads impossible:

* the base publish is **generation 0** — an immutable segment the
  parent never writes again;
* each epoch's changed entries are re-published as a new **delta
  segment** (``int64`` indices followed by values), bumping the
  column's generation; a full re-publish (``kind="full"``) resets the
  chain;
* a descriptor names the exact generation its task must read, plus the
  delta chain needed to reach it; the worker-side cache applies deltas
  it has not seen, in order, onto a private materialized copy;
* a descriptor *older* than what a process already holds raises
  :class:`StaleDescriptorError` — generations only move forward, so a
  scheduling layer can never hand a worker yesterday's state.

Values read through a descriptor are bit-identical to the arrays the
pickle path ships, so the byte-identical-for-any-scheduling contract is
untouched: ``transport`` joins ``workers`` and ``steal`` as a pure
transport/scheduling knob (``make shm-check`` gates it).

Lifecycle: a :class:`ColumnPlane` owns its segments and unlinks them on
``close()`` (context-manager exit, ``run_load``'s ``finally``, or the
pid-guarded ``atexit`` hook — forked children inherit the registry but
never unlink the parent's planes).  If the parent is killed before any
of those run, the stdlib resource tracker — which every segment stays
registered with — unlinks the segments at its own shutdown: the crash
net.  :func:`leaked_segments` lists plane segments still visible in
``/dev/shm`` so gates can assert none survived.
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

try:  # pragma: no cover - stdlib on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - minimal builds
    _shm = None  # type: ignore[assignment]

__all__ = [
    "SEGMENT_PREFIX",
    "TransportError",
    "StaleDescriptorError",
    "DeltaDescriptor",
    "ColumnDescriptor",
    "ColumnPlane",
    "shm_available",
    "attach_column",
    "resolve_descriptor",
    "attach_cache_stats",
    "evict_plane",
    "clear_attach_cache",
    "leaked_segments",
    "unlink_all_planes",
]

# Every segment name starts with this prefix, so /dev/shm leak checks
# can scan for plane segments without false positives.
SEGMENT_PREFIX = "rtp"


class TransportError(RuntimeError):
    """A shared-memory transport invariant was violated."""


class StaleDescriptorError(TransportError):
    """A descriptor referenced an older generation than this process
    already holds — generations only move forward."""


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` is usable here."""
    return _shm is not None


@dataclass(frozen=True)
class DeltaDescriptor:
    """One re-publish step in a column's generation chain.

    ``kind="delta"`` segments hold ``count`` int64 indices followed by
    ``count`` values of the column dtype; ``kind="full"`` segments hold
    the whole column and reset the chain.
    """

    segment: str
    generation: int
    count: int
    kind: str  # "delta" | "full"


@dataclass(frozen=True)
class ColumnDescriptor:
    """A small, picklable handle to one column window at one generation.

    This is what ships inside a :class:`~repro.parallel.worker.ShardTask`
    instead of a materialized array copy: a few hundred bytes whatever
    the population size.  ``deltas`` is the chain needed to advance a
    generation-0 attach to ``generation``.
    """

    plane: str
    column: str
    segment: str  # the generation-0 base segment ("" when length == 0)
    dtype: str
    length: int
    generation: int
    lo: int
    hi: int
    deltas: Tuple[DeltaDescriptor, ...] = ()


# ----------------------------------------------------------------------
# Parent side: the plane publisher
# ----------------------------------------------------------------------


@dataclass
class _ColumnState:
    dtype: np.dtype
    length: int
    generation: int
    base_segment: str
    deltas: List[DeltaDescriptor] = field(default_factory=list)


_PLANE_SEQ = 0
# Live planes by id; forked children inherit entries but the owner-pid
# guard keeps them from ever unlinking the parent's segments.
_LIVE_PLANES: Dict[str, "ColumnPlane"] = {}
_ATEXIT_PID: Optional[int] = None


def unlink_all_planes() -> None:
    """Close (and unlink) every plane this process created."""
    for plane in list(_LIVE_PLANES.values()):
        if plane.owner_pid == os.getpid():
            plane.close()


class ColumnPlane:
    """Publishes columns into shared memory; owns the segments.

    Published segments are **immutable**: updates always create a new
    delta/full segment under the next generation, never write an
    existing one — that is what lets workers hold zero-copy read-only
    views of generation 0 without any locking.
    """

    def __init__(self) -> None:
        if _shm is None:
            raise TransportError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform; use transport='pickle'"
            )
        global _PLANE_SEQ, _ATEXIT_PID
        _PLANE_SEQ += 1
        self.plane_id = f"{SEGMENT_PREFIX}-{os.getpid()}-{_PLANE_SEQ}"
        self.owner_pid = os.getpid()
        self._columns: Dict[str, _ColumnState] = {}
        self._segments: List["_shm.SharedMemory"] = []
        self._closed = False
        _LIVE_PLANES[self.plane_id] = self
        if _ATEXIT_PID != os.getpid():
            _ATEXIT_PID = os.getpid()
            atexit.register(unlink_all_planes)

    # -- publishing ----------------------------------------------------

    def publish(self, column: str, array: np.ndarray) -> int:
        """Publish ``array`` as ``column``'s generation-0 base segment.

        Returns the bytes written to shared memory (0 for an empty
        column, which gets no segment at all).
        """
        self._check_open()
        if column in self._columns:
            raise TransportError(
                f"column {column!r} already published on {self.plane_id}"
            )
        arr = np.ascontiguousarray(array)
        if arr.ndim != 1:
            raise TransportError(
                f"plane columns must be 1-D, got shape {arr.shape}"
            )
        segment = ""
        nbytes = int(arr.nbytes)
        if nbytes:
            segment = f"{self.plane_id}-{column}-g0"
            shm = _shm.SharedMemory(name=segment, create=True, size=nbytes)
            self._segments.append(shm)
            np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)[:] = arr
        self._columns[column] = _ColumnState(
            dtype=arr.dtype,
            length=int(arr.shape[0]),
            generation=0,
            base_segment=segment,
        )
        return nbytes

    def republish_delta(
        self, column: str, indices: np.ndarray, values: np.ndarray
    ) -> int:
        """Publish changed entries as the column's next generation.

        ``indices`` are positions into the full column; ``values`` their
        new contents.  An empty delta is a no-op (the generation does
        not move — every generation has exactly one segment behind it).
        Returns the bytes written.
        """
        state = self._state(column)
        idx = np.ascontiguousarray(indices, dtype=np.int64)
        vals = np.ascontiguousarray(values, dtype=state.dtype)
        if idx.shape != vals.shape:
            raise TransportError(
                f"delta shape mismatch: {idx.shape} indices vs "
                f"{vals.shape} values"
            )
        if idx.size == 0:
            return 0
        if idx.min() < 0 or idx.max() >= state.length:
            raise TransportError(
                f"delta indices out of range for column {column!r} "
                f"(length {state.length})"
            )
        generation = state.generation + 1
        segment = f"{self.plane_id}-{column}-g{generation}"
        nbytes = int(idx.nbytes + vals.nbytes)
        shm = _shm.SharedMemory(name=segment, create=True, size=nbytes)
        self._segments.append(shm)
        np.ndarray(idx.shape, dtype=np.int64, buffer=shm.buf)[:] = idx
        np.ndarray(
            vals.shape, dtype=state.dtype, buffer=shm.buf, offset=idx.nbytes
        )[:] = vals
        state.generation = generation
        state.deltas.append(
            DeltaDescriptor(
                segment=segment,
                generation=generation,
                count=int(idx.size),
                kind="delta",
            )
        )
        return nbytes

    def republish_full(self, column: str, array: np.ndarray) -> int:
        """Publish the whole column again as its next generation.

        The ablation baseline for delta shipping (``transport=
        "shm-full"``): correctness-equivalent, cost-heavier.  Resets the
        delta chain — an attacher catching up from any generation applies
        just this segment.  Returns the bytes written.
        """
        state = self._state(column)
        arr = np.ascontiguousarray(array, dtype=state.dtype)
        if arr.shape != (state.length,):
            raise TransportError(
                f"full republish shape {arr.shape} != ({state.length},)"
            )
        generation = state.generation + 1
        nbytes = int(arr.nbytes)
        segment = ""
        if nbytes:
            segment = f"{self.plane_id}-{column}-g{generation}"
            shm = _shm.SharedMemory(name=segment, create=True, size=nbytes)
            self._segments.append(shm)
            np.ndarray(arr.shape, dtype=state.dtype, buffer=shm.buf)[:] = arr
        state.generation = generation
        state.deltas = [
            DeltaDescriptor(
                segment=segment,
                generation=generation,
                count=state.length,
                kind="full",
            )
        ]
        return nbytes

    # -- descriptors ---------------------------------------------------

    def generation_of(self, column: str) -> int:
        return self._state(column).generation

    def descriptor(
        self,
        column: str,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
    ) -> ColumnDescriptor:
        """A handle to ``column[lo:hi]`` at the current generation."""
        state = self._state(column)
        lo = 0 if lo is None else int(lo)
        hi = state.length if hi is None else int(hi)
        if not (0 <= lo <= hi <= state.length):
            raise TransportError(
                f"window [{lo}, {hi}) outside column {column!r} "
                f"(length {state.length})"
            )
        return ColumnDescriptor(
            plane=self.plane_id,
            column=column,
            segment=state.base_segment,
            dtype=str(state.dtype),
            length=state.length,
            generation=state.generation,
            lo=lo,
            hi=hi,
            deltas=tuple(state.deltas),
        )

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unlink every segment this plane created (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - defensive
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        _LIVE_PLANES.pop(self.plane_id, None)

    def __enter__(self) -> "ColumnPlane":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _check_open(self) -> None:
        if self._closed:
            raise TransportError(f"plane {self.plane_id} is closed")

    def _state(self, column: str) -> _ColumnState:
        self._check_open()
        state = self._columns.get(column)
        if state is None:
            raise TransportError(
                f"column {column!r} was never published on {self.plane_id}"
            )
        return state


# ----------------------------------------------------------------------
# Worker side: the per-process attach cache
# ----------------------------------------------------------------------


@dataclass
class _Attached:
    generation: int
    array: np.ndarray  # full column at `generation`, read-only
    base: Optional["_shm.SharedMemory"]  # held open while a view lives
    zero_copy: bool


# Keyed by (plane, column).  Entries from other planes are evicted on
# first attach to a new plane, so persistent workers serving many runs
# hold at most one plane's attachments.
_ATTACH_CACHE: Dict[Tuple[str, str], _Attached] = {}


def attach_column(desc: ColumnDescriptor) -> np.ndarray:
    """The full column at ``desc.generation``, read-only, cached.

    Generation 0 with no deltas is zero-copy — a read-only ndarray view
    straight onto the shared segment.  Any delta catch-up materializes a
    private copy once and applies only the deltas this process has not
    seen.  A descriptor older than the cached generation raises
    :class:`StaleDescriptorError`.
    """
    if _shm is None:
        raise TransportError(
            "multiprocessing.shared_memory is unavailable in this process"
        )
    key = (desc.plane, desc.column)
    entry = _ATTACH_CACHE.get(key)
    if entry is not None:
        if entry.generation > desc.generation:
            raise StaleDescriptorError(
                f"descriptor for {key} names generation {desc.generation} "
                f"but this process already holds {entry.generation}"
            )
        if entry.generation == desc.generation:
            return entry.array
    else:
        _evict_other_planes(desc.plane)

    if desc.length == 0:
        arr = np.empty(0, dtype=np.dtype(desc.dtype))
        arr.flags.writeable = False
        _ATTACH_CACHE[key] = _Attached(desc.generation, arr, None, False)
        return arr

    dtype = np.dtype(desc.dtype)
    pending = [
        d
        for d in desc.deltas
        if entry is None or d.generation > entry.generation
    ]
    # A full republish supersedes everything before it.
    for i in range(len(pending) - 1, -1, -1):
        if pending[i].kind == "full":
            pending = pending[i:]
            break

    if entry is None:
        base = _shm.SharedMemory(name=desc.segment)
        view = np.ndarray((desc.length,), dtype=dtype, buffer=base.buf)
        if desc.generation == 0:
            view.flags.writeable = False
            cached = _Attached(0, view, base, True)
            _ATTACH_CACHE[key] = cached
            return view
        if pending and pending[0].kind == "full":
            # The chain starts with a full segment: skip reading base.
            local = np.empty(desc.length, dtype=dtype)
        else:
            local = np.array(view)
        base.close()
        entry = _Attached(0, local, None, False)
    elif entry.zero_copy:
        # Promote the shared view to a private copy before applying
        # deltas (published segments are immutable, never written).
        local = np.array(entry.array)
        if entry.base is not None:
            entry.base.close()
        entry = _Attached(entry.generation, local, None, False)

    if not pending or pending[-1].generation != desc.generation:
        raise TransportError(
            f"broken delta chain for {key}: cannot advance from "
            f"generation {entry.generation} to {desc.generation}"
        )

    local = entry.array
    local.flags.writeable = True
    for d in pending:
        seg = _shm.SharedMemory(name=d.segment)
        try:
            if d.kind == "full":
                vals = np.ndarray((desc.length,), dtype=dtype, buffer=seg.buf)
                local[:] = vals
            else:
                idx = np.ndarray((d.count,), dtype=np.int64, buffer=seg.buf)
                vals = np.ndarray(
                    (d.count,), dtype=dtype, buffer=seg.buf, offset=idx.nbytes
                )
                local[idx] = vals
        finally:
            seg.close()
    local.flags.writeable = False
    _ATTACH_CACHE[key] = _Attached(desc.generation, local, None, False)
    return local


def resolve_descriptor(desc: ColumnDescriptor) -> np.ndarray:
    """The descriptor's ``[lo, hi)`` window of its column (read-only)."""
    return attach_column(desc)[desc.lo : desc.hi]


def attach_cache_stats() -> Dict[Tuple[str, str], int]:
    """(plane, column) -> cached generation, for tests/diagnostics."""
    return {key: entry.generation for key, entry in _ATTACH_CACHE.items()}


def evict_plane(plane_id: str) -> None:
    """Drop this process's cached attachments for one plane."""
    for key in [k for k in _ATTACH_CACHE if k[0] == plane_id]:
        entry = _ATTACH_CACHE.pop(key)
        if entry.base is not None:
            entry.base.close()


def clear_attach_cache() -> None:
    """Drop every cached attachment (tests and pool recycling)."""
    for key in list(_ATTACH_CACHE):
        evict_plane(key[0])


def _evict_other_planes(plane_id: str) -> None:
    """Keep the cache bounded: one plane's attachments at a time."""
    for key in [k for k in _ATTACH_CACHE if k[0] != plane_id]:
        entry = _ATTACH_CACHE.pop(key)
        if entry.base is not None:
            entry.base.close()


# ----------------------------------------------------------------------
# Leak detection
# ----------------------------------------------------------------------


def leaked_segments() -> List[str]:
    """Plane segments still visible in ``/dev/shm`` (sorted names).

    Empty after every clean run: planes unlink their segments in
    ``run_load``'s ``finally`` (and the atexit hook covers paths that
    never reach it).  ``make shm-check`` asserts this.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    prefix = SEGMENT_PREFIX + "-"
    try:
        return sorted(n for n in os.listdir(shm_dir) if n.startswith(prefix))
    except OSError:  # pragma: no cover - defensive
        return []
