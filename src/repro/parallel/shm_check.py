"""Transport-equivalence gate: pickle vs shared memory, byte for byte.

``python -m repro.parallel.shm_check`` runs the load workload on a
small seeded population across the matrix
``transport ∈ {pickle, shm} × workers ∈ {1, 2, 4} × stealing ∈ {off,
on}`` (plus ``shm-full`` republish cells and the ``"auto"`` default)
and asserts that the metrics payload **and** the exported trace are
byte-identical in every cell — i.e. how shard state reaches workers
can never change a single output byte.  It additionally checks:

* ``transport="auto"`` resolves to the shared-memory plane on this
  platform (the acceptance default) and ``"pickle"`` stays available as
  the escape hatch;
* shm runs actually shipped descriptors: their total pickled task bytes
  (``ShipCost``) are strictly below the pickle path's, and the plane
  published real bytes (the >=10x *ship-bytes* gate needs population
  scale for snapshots to dominate task framing — it lives in the
  scaling suite's transport tier at 100k);
* delta shipping converged: the ``shm`` cells moved fewer plane bytes
  than the ``shm-full`` ablation cells;
* **no leaked segments**: every ``/dev/shm`` plane segment created by
  the matrix is unlinked by the time the check returns.

Exits non-zero on any violation (the ``make shm-check`` target).
"""

from __future__ import annotations

import json
from typing import Dict

from repro.parallel.check import CHECK_CONFIG
from repro.parallel.transport import leaked_segments, shm_available

__all__ = ["check_shm", "SHM_WORKERS"]

SHM_WORKERS = (1, 2, 4)


def _payload(result) -> str:
    return json.dumps(result.metrics, sort_keys=True)


def check_shm() -> Dict[str, object]:
    """Assert metrics+trace equivalence over transport x workers x steal.

    Returns a summary dict; raises AssertionError on violation.
    """
    from repro.workloads.load import run_load

    assert shm_available(), (
        "shm-check needs multiprocessing.shared_memory; on platforms "
        "without it the transport stays 'pickle' and this gate is moot"
    )
    leaked_before = set(leaked_segments())

    baseline = run_load(
        transport="pickle", workers=1, steal=False, trace=True,
        **CHECK_CONFIG,
    )
    assert baseline.transport == "pickle"
    base_payload = _payload(baseline)
    pickle_task_bytes = baseline.ship_cost["task_bytes_total"]

    cells = 1
    shm_task_bytes = None
    shm_plane_bytes = None
    full_plane_bytes = None
    for transport in ("pickle", "shm", "shm-full"):
        for steal in (False, True):
            for workers in SHM_WORKERS:
                if transport == "pickle" and workers == 1 and not steal:
                    continue  # that cell *is* the baseline
                if transport == "shm-full" and (steal or workers > 1):
                    # The full-republish ablation is about plane bytes,
                    # not scheduling; one cell pins its equivalence.
                    continue
                run = run_load(
                    transport=transport,
                    workers=workers,
                    steal=steal,
                    trace=True,
                    **CHECK_CONFIG,
                )
                assert run.transport == transport
                assert _payload(run) == base_payload, (
                    f"transport={transport} workers={workers} "
                    f"steal={steal} changed the metrics payload"
                )
                assert run.trace_jsonl == baseline.trace_jsonl, (
                    f"transport={transport} workers={workers} "
                    f"steal={steal} changed the exported trace"
                )
                ship = run.ship_cost
                if transport == "shm":
                    assert ship["plane_bytes_total"] > 0, (
                        "shm run published no plane bytes — the "
                        "descriptor path never engaged"
                    )
                    if not steal:
                        # Monolithic tasks: descriptors must beat the
                        # materialized snapshots they replace (chunk
                        # tasks are already slimmed per phase, so their
                        # framing dominates at this tiny scale).
                        assert (
                            ship["task_bytes_total"] < pickle_task_bytes
                        ), (
                            "shm tasks did not shrink: "
                            f"{ship['task_bytes_total']} vs pickle "
                            f"{pickle_task_bytes}"
                        )
                    if workers == 1 and not steal:
                        shm_task_bytes = ship["task_bytes_total"]
                        shm_plane_bytes = ship["plane_bytes_total"]
                elif transport == "shm-full":
                    full_plane_bytes = ship["plane_bytes_total"]
                cells += 1

    # Delta shipping must beat whole-column republishing on plane bytes.
    assert shm_plane_bytes is not None and full_plane_bytes is not None
    assert shm_plane_bytes < full_plane_bytes, (
        f"delta republish moved {shm_plane_bytes} plane bytes, the "
        f"full-republish ablation only {full_plane_bytes}"
    )

    # The default must resolve to the plane here (and stay identical).
    auto = run_load(workers=2, trace=True, **CHECK_CONFIG)
    assert auto.transport == "shm", (
        f"transport='auto' resolved to {auto.transport!r}; expected "
        "'shm' on a platform with shared_memory"
    )
    assert _payload(auto) == base_payload
    assert auto.trace_jsonl == baseline.trace_jsonl
    cells += 1

    leaked = sorted(set(leaked_segments()) - leaked_before)
    assert not leaked, f"leaked /dev/shm plane segments: {leaked}"

    return {
        "workers_matrix": list(SHM_WORKERS),
        "cells_compared": cells,
        "n_shards": baseline.n_shards,
        "auto_transport": auto.transport,
        "pickle_task_bytes": int(pickle_task_bytes),
        "shm_task_bytes": int(shm_task_bytes),
        "delta_plane_bytes": int(shm_plane_bytes),
        "full_plane_bytes": int(full_plane_bytes),
        "leaked_segments": 0,
        "trace_bytes": len(baseline.trace_jsonl),
        "byte_identical": True,
    }


if __name__ == "__main__":
    summary = check_shm()
    for key, value in summary.items():
        print(f"{key:26s} {value}")
    print(
        "shm-check: OK (transport x workers x stealing matrix "
        "byte-identical, no leaked segments)"
    )
