"""Execution pools: run shard tasks inline or across processes.

The determinism story of :mod:`repro.parallel` rests on one invariant:
**results are consumed in task-submission order, never in completion
order**.  Both pools guarantee it — :class:`SerialPool` trivially,
:class:`ProcessPool` by filling a result slot per task index — so a
reduction that folds results in order is byte-identical for any worker
count, including the inline path.

On platforms with ``fork`` (Linux), worker processes inherit the
parent's warmed module caches (agent addresses, shard social graphs) at
pool-creation time for free; on ``spawn`` platforms workers rebuild
those caches deterministically on first use.  Either way the *results*
are identical — only the warm-up cost differs.

Two transport-era behaviours live here:

* **Bounded in-flight submission.**  ``map_ordered`` keeps at most a
  small window of tasks pickled-and-pending instead of submitting the
  whole list eagerly — long chunk lists no longer double peak memory,
  and the first worker exception surfaces as soon as its future
  completes instead of after every earlier task has been gathered.
* **Persistent workers.**  :func:`shared_pool` hands out long-lived
  pools keyed by worker count: processes (and their warmed caches +
  shared-memory attachments) survive across ``run_load`` calls, so the
  per-run cost is task dispatch, not pool churn.  ``close()`` on a
  shared pool is a no-op; real shutdown happens at interpreter exit.
"""

from __future__ import annotations

import atexit
import multiprocessing
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

__all__ = [
    "SerialPool",
    "ProcessPool",
    "make_pool",
    "shared_pool",
    "shutdown_shared_pools",
    "parallel_map",
]

T = TypeVar("T")
R = TypeVar("R")


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """Prefer fork so workers inherit warmed caches; None if unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _ensure_resource_tracker() -> None:
    """Start the stdlib resource tracker *before* forking workers.

    Shared-memory segments register with the resource tracker.  If the
    tracker first starts inside a forked worker, that worker gets a
    private tracker which "cleans up" (warns about) segments the parent
    still owns at worker exit.  Starting it in the parent first means
    every forked worker shares the parent's tracker, where a worker's
    attach-registration is an idempotent no-op.
    """
    try:  # pragma: no cover - trivial on POSIX, absent elsewhere
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:
        pass


class SerialPool:
    """Inline execution with the pool interface (workers <= 1)."""

    workers = 1

    def map_ordered(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return [fn(task) for task in tasks]

    def close(self) -> None:
        return None

    def __enter__(self) -> "SerialPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class ProcessPool:
    """A ``ProcessPoolExecutor`` that returns results in task order.

    One pool serves a whole run (or, via :func:`shared_pool`, many
    runs), so process start-up and per-process cache warm-up are paid
    once, not per barrier.

    ``window`` bounds in-flight submissions: at most that many tasks are
    pickled and queued at once (default ``2 * workers + 2`` — enough to
    keep every worker fed while the parent gathers).  Results still fill
    slots by task index, so the window size can never reorder — or
    otherwise change — a single output byte.
    """

    def __init__(self, workers: int, window: Optional[int] = None):
        if workers < 2:
            raise ValueError(f"ProcessPool needs workers >= 2, got {workers}")
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.workers = workers
        self.window = window if window is not None else 2 * workers + 2
        _ensure_resource_tracker()
        context = _fork_context()
        self._executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        )

    @property
    def broken(self) -> bool:
        """Whether the underlying executor died (worker crash)."""
        return bool(getattr(self._executor, "_broken", False))

    def map_ordered(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Run ``fn`` over ``tasks``; results in submission order.

        Submission is windowed (backpressure): tasks are pickled at most
        ``window`` ahead of the slowest outstanding result.  The first
        worker exception is raised as soon as its future completes —
        remaining pending futures are cancelled, not gathered.
        """
        n = len(tasks)
        results: List[R] = [None] * n  # type: ignore[list-item]
        pending: Dict[Future, int] = {}
        next_idx = 0
        try:
            while next_idx < n or pending:
                while next_idx < n and len(pending) < self.window:
                    future = self._executor.submit(fn, tasks[next_idx])
                    pending[future] = next_idx
                    next_idx += 1
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                # Lowest task index first, so which exception surfaces
                # is deterministic when several complete together.
                for future in sorted(done, key=pending.__getitem__):
                    idx = pending.pop(future)
                    results[idx] = future.result()  # raises fail-fast
        except BaseException:
            for future in pending:
                future.cancel()
            raise
        return results

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class _SharedProcessPool(ProcessPool):
    """A :class:`ProcessPool` that outlives its callers.

    ``close()`` is deliberately a no-op — callers treat shared pools
    exactly like owned ones (``finally: pool.close()``), and the
    processes stay warm for the next run.  :func:`shutdown_shared_pools`
    (registered atexit) does the real shutdown.
    """

    def close(self) -> None:
        return None

    def shutdown(self) -> None:
        super().close()


# Long-lived pools by worker count; created on first use, shut down at
# interpreter exit.
_SHARED_POOLS: Dict[int, _SharedProcessPool] = {}
_SHARED_ATEXIT = False


def shared_pool(workers: Optional[int]):
    """A persistent pool for ``workers`` (inline when <= 1).

    Worker processes — with their warmed per-process caches and
    shared-memory column attachments — persist across calls, so
    back-to-back runs pay dispatch cost only.  A pool whose executor
    broke (a worker crashed) is discarded and rebuilt fresh.
    """
    global _SHARED_ATEXIT
    if workers is None or workers <= 1:
        return SerialPool()
    pool = _SHARED_POOLS.get(workers)
    if pool is not None and pool.broken:
        pool.shutdown()
        _SHARED_POOLS.pop(workers, None)
        pool = None
    if pool is None:
        pool = _SharedProcessPool(workers)
        _SHARED_POOLS[workers] = pool
        if not _SHARED_ATEXIT:
            _SHARED_ATEXIT = True
            atexit.register(shutdown_shared_pools)
    return pool


def shutdown_shared_pools() -> None:
    """Shut down every persistent pool (atexit hook; tests call it too)."""
    for pool in list(_SHARED_POOLS.values()):
        pool.shutdown()
    _SHARED_POOLS.clear()


def make_pool(workers: Optional[int]):
    """A **caller-owned** pool for a requested worker count.

    ``None``, 0, and 1 all mean inline execution — the serial path *is*
    the one-worker path, which is what makes ``workers=K`` a pure
    scheduling knob rather than a semantics switch.  The caller must
    ``close()`` it; for the long-lived variant see :func:`shared_pool`.
    """
    if workers is None or workers <= 1:
        return SerialPool()
    return ProcessPool(workers)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    pool=None,
    chunk_size: Optional[int] = None,
) -> List[R]:
    """Chunked ordered map: the kernel helper behind shard dispatch.

    Splits ``items`` into contiguous chunks, maps ``fn`` over each item
    of each chunk on ``pool`` (inline when None), and concatenates in
    item order.  The chunking changes *scheduling granularity only* —
    results are positionally identical to ``[fn(x) for x in items]`` for
    any pool and any chunk size, provided ``fn`` is pure.  Batched
    classification and PET benchmarking reuse this to fan their chunk
    kernels out over the same pools the load workload uses.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if pool is None:
        pool = SerialPool()
    if not items:
        return []
    if chunk_size is None:
        chunk_size = max(1, len(items) // (pool.workers * 4) or 1)
    chunks = [
        list(items[i : i + chunk_size])
        for i in range(0, len(items), chunk_size)
    ]
    chunk_results = pool.map_ordered(_MapChunk(fn), chunks)
    out: List[R] = []
    for result in chunk_results:
        out.extend(result)
    return out


class _MapChunk:
    """Picklable 'map fn over a chunk' callable (lambdas cannot cross
    process boundaries)."""

    def __init__(self, fn: Callable[[Any], Any]):
        self._fn = fn

    def __call__(self, chunk: Iterable[Any]) -> List[Any]:
        return [self._fn(item) for item in chunk]
