"""Execution pools: run shard tasks inline or across processes.

The determinism story of :mod:`repro.parallel` rests on one invariant:
**results are consumed in task-submission order, never in completion
order**.  Both pools guarantee it — :class:`SerialPool` trivially,
:class:`ProcessPool` by indexing futures — so a reduction that folds
results in order is byte-identical for any worker count, including the
inline path.

On platforms with ``fork`` (Linux), worker processes inherit the
parent's warmed module caches (agent addresses, shard social graphs) at
pool-creation time for free; on ``spawn`` platforms workers rebuild
those caches deterministically on first use.  Either way the *results*
are identical — only the warm-up cost differs.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["SerialPool", "ProcessPool", "make_pool", "parallel_map"]

T = TypeVar("T")
R = TypeVar("R")


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """Prefer fork so workers inherit warmed caches; None if unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


class SerialPool:
    """Inline execution with the pool interface (workers <= 1)."""

    workers = 1

    def map_ordered(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        return [fn(task) for task in tasks]

    def close(self) -> None:
        return None

    def __enter__(self) -> "SerialPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class ProcessPool:
    """A ``ProcessPoolExecutor`` that returns results in task order.

    One pool is created per run and reused across epochs, so process
    start-up (and any per-process cache warm-up) is paid once, not per
    barrier.
    """

    def __init__(self, workers: int):
        if workers < 2:
            raise ValueError(f"ProcessPool needs workers >= 2, got {workers}")
        self.workers = workers
        context = _fork_context()
        self._executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        )

    def map_ordered(self, fn: Callable[[T], R], tasks: Sequence[T]) -> List[R]:
        """Run ``fn`` over ``tasks``; results in submission order.

        Futures are submitted eagerly and gathered by index — a worker
        finishing early or late cannot reorder the reduction.
        """
        futures = [self._executor.submit(fn, task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def make_pool(workers: Optional[int]):
    """The pool for a requested worker count.

    ``None``, 0, and 1 all mean inline execution — the serial path *is*
    the one-worker path, which is what makes ``workers=K`` a pure
    scheduling knob rather than a semantics switch.
    """
    if workers is None or workers <= 1:
        return SerialPool()
    return ProcessPool(workers)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    pool=None,
    chunk_size: Optional[int] = None,
) -> List[R]:
    """Chunked ordered map: the kernel helper behind shard dispatch.

    Splits ``items`` into contiguous chunks, maps ``fn`` over each item
    of each chunk on ``pool`` (inline when None), and concatenates in
    item order.  The chunking changes *scheduling granularity only* —
    results are positionally identical to ``[fn(x) for x in items]`` for
    any pool and any chunk size, provided ``fn`` is pure.  Batched
    classification and PET benchmarking reuse this to fan their chunk
    kernels out over the same pools the load workload uses.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if pool is None:
        pool = SerialPool()
    if not items:
        return []
    if chunk_size is None:
        chunk_size = max(1, len(items) // (pool.workers * 4) or 1)
    chunks = [
        list(items[i : i + chunk_size])
        for i in range(0, len(items), chunk_size)
    ]
    chunk_results = pool.map_ordered(_MapChunk(fn), chunks)
    out: List[R] = []
    for result in chunk_results:
        out.extend(result)
    return out


class _MapChunk:
    """Picklable 'map fn over a chunk' callable (lambdas cannot cross
    process boundaries)."""

    def __init__(self, fn: Callable[[Any], Any]):
        self._fn = fn

    def __call__(self, chunk: Iterable[Any]) -> List[Any]:
        return [self._fn(item) for item in chunk]
