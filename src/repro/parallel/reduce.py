"""Ordered reduction: folding shard results into one epoch barrier.

Workers finish in whatever order the scheduler likes; nothing here may
depend on that.  Every helper consumes a list of
:class:`~repro.parallel.worker.ShardEpochResult` **already sorted by
shard id** (the pool returns them in submission order, which is shard
order) and folds in that order — so the merged streams are identical
for any worker count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.worker import ShardEpochResult
from repro.world.interactions import InteractionBatch

__all__ = [
    "check_shard_order",
    "merge_interaction_batches",
    "sum_predicted_outcomes",
    "merge_boundary_activations",
]


def check_shard_order(results: Sequence[ShardEpochResult]) -> None:
    """Assert the reduction input is shard-id sorted (0..n-1).

    The pool contract already guarantees this; the assert turns a future
    scheduling bug into a loud failure instead of a silent determinism
    break.
    """
    for i, result in enumerate(results):
        if result.shard != i:
            raise AssertionError(
                f"shard results out of order: position {i} holds shard "
                f"{result.shard} — ordered reduction violated"
            )


def merge_interaction_batches(
    results: Sequence[ShardEpochResult],
) -> Optional[Tuple[InteractionBatch, np.ndarray, np.ndarray]]:
    """Concatenate per-shard interaction batches into one epoch batch.

    Returns ``(batch, flagged_rows, report_rows)`` with the worker-side
    verdict rows re-based onto the merged batch (each shard's rows are
    offset by the lengths of the shards before it), or None when no
    shard produced interactions.  Merging in shard order keeps the
    moderation queue's FIFO arrival order — and therefore case ids,
    review order, and sanction escalation — independent of scheduling.
    """
    parts = [r for r in results if r.interactions is not None]
    if not parts:
        return None
    first = parts[0].interactions
    flagged: List[np.ndarray] = []
    reported: List[np.ndarray] = []
    offset = 0
    for part in parts:
        batch = part.interactions
        if part.flagged_rows is not None and part.flagged_rows.size:
            flagged.append(part.flagged_rows + offset)
        if part.report_rows is not None and part.report_rows.size:
            reported.append(part.report_rows + offset)
        offset += len(batch)
    merged = InteractionBatch(
        time=first.time,
        initiators=np.concatenate([p.interactions.initiators for p in parts]),
        targets=np.concatenate([p.interactions.targets for p in parts]),
        abusive=np.concatenate([p.interactions.abusive for p in parts]),
        delivered=np.concatenate([p.interactions.delivered for p in parts]),
        kind=first.kind,
        id_of=first.id_of,
    )
    empty = np.empty(0, dtype=np.int64)
    return (
        merged,
        np.concatenate(flagged) if flagged else empty,
        np.concatenate(reported) if reported else empty,
    )


def sum_predicted_outcomes(
    results: Sequence[ShardEpochResult],
) -> Dict[str, int]:
    """Total worker-predicted privacy admissions across shards."""
    totals: Dict[str, int] = {}
    for result in results:
        for outcome, count in result.predicted_outcomes.items():
            totals[outcome] = totals.get(outcome, 0) + count
    return totals


def merge_boundary_activations(
    results: Sequence[ShardEpochResult],
    rng: np.random.Generator,
    transmissibility: float = 0.5,
    max_carry: int = 4,
) -> List[int]:
    """The boundary-exchange half of the cross-shard cascade protocol.

    Workers report which of their designated boundary members the
    shard-interior cascade reached; the cross-shard edges hanging off
    those members are resolved *here*, at the barrier, with one
    parent-owned stream: each live boundary member transmits to the next
    shard (ring order) with probability ``transmissibility``.  Returns
    the per-shard carry-in counts (capped at ``max_carry``) that seed
    extra cascade members next epoch.

    Draws happen in shard order, then boundary-member order — fixed by
    the reduction input, never by scheduling — so the carries are
    byte-identical for any worker count.
    """
    n = len(results)
    carries = [0] * n
    if n == 0:
        return carries
    for result in results:
        for reached in result.boundary_reached:
            if not reached:
                continue
            if rng.random() < transmissibility:
                target = (result.shard + 1) % n
                carries[target] = min(max_carry, carries[target] + 1)
    return carries
