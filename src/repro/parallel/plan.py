"""Shard planning: deterministic partition of a seeded society.

The population-scale workload serves "millions of users" (the paper's
framing); one process cannot.  A :class:`ShardPlan` partitions the
``n_agents`` synthetic society into ``n_shards`` contiguous index
ranges, each with its own family of random streams, so shard-local
substrate work (transaction admission, trust accumulation, abuse
classification, privacy charging, cascade rounds) can run anywhere —
inline, or on any number of worker processes — and still reproduce the
exact same bytes.

Determinism contract
--------------------
* The partition is a pure function of ``(n_agents, n_shards)`` plus an
  optional explicit ``boundaries`` tuple.  Without boundaries the
  ranges are contiguous and equal (remainder spread over the lowest
  shard ids); with boundaries they are contiguous but *unequal* —
  cost-weighted plans place the cuts so every shard carries roughly the
  same work, and because the boundaries are themselves pure functions
  of ``(seed, epoch, profile)`` the plan stays replay-deterministic.
* Randomness is rooted in ``numpy.random.SeedSequence(seed)``; each
  shard owns the child sequence ``root.spawn(n_shards)[shard]``, and
  every *(epoch, phase)* of a shard derives a grandchild by extending
  the shard's ``spawn_key`` — so streams depend only on
  ``(seed, shard, epoch, phase)``, never on which process runs them or
  how many workers exist.
* Nothing here reads the clock, the host, or global state.

The plan is a small frozen dataclass of ints, cheap to pickle into
every worker task.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Phase",
    "ShardPlan",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "shard_phase_rng",
    "split_weighted",
    "activity_weights",
    "weighted_boundaries",
    "blend_profile",
    "auto_shard_count",
]


def split_weighted(total: int, weights: List[int]) -> List[int]:
    """Split ``total`` units proportionally to integer ``weights``.

    Largest-remainder apportionment in pure integer arithmetic: floors
    first, then the leftover units go to the largest fractional parts
    (ties to the lowest index).  Deterministic, and the parts always sum
    to ``total``.  Used to spread e.g. ballot quotas over shards in
    proportion to how much electorate each shard actually owns.

    Weights must be non-negative: a negative weight would silently
    produce a negative quota (``split_weighted(10, [-1, 3]) == [-5, 15]``
    before this guard), which downstream load generators would feed into
    range()/array sizing as a nonsense per-shard count.

    An all-zero weight vector falls back to an *even* split (as if every
    weight were 1): zero total weight means "no information", and the
    caller still needs the ``total`` units placed somewhere.  The old
    behaviour — returning ``[0] * len(weights)`` — silently dropped the
    units, so ``sum(parts) == total`` held for every input *except* this
    edge.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    for weight in weights:
        if weight < 0:
            raise ValueError(f"weights must be >= 0, got {weight}")
    weight_sum = sum(weights)
    if weight_sum <= 0:
        if not weights:
            return []
        weights = [1] * len(weights)
        weight_sum = len(weights)
    parts = [total * w // weight_sum for w in weights]
    remainders = [total * w % weight_sum for w in weights]
    leftover = total - sum(parts)
    for i in sorted(
        range(len(weights)), key=lambda j: (-remainders[j], j)
    )[:leftover]:
        parts[i] += 1
    return parts


class Phase:
    """Stable phase indices for per-(shard, epoch, phase) streams.

    These are part of the determinism contract: renumbering a phase
    changes every derived stream, so new phases must append.
    """

    TRANSACTIONS = 0
    RATINGS = 1
    REPORTS = 2
    VOTES = 3
    INTERACTIONS = 4
    FRAMES = 5
    CASCADE = 6
    # Per-shard, epoch-independent stream (social subgraph topology).
    GRAPH = 7


def shard_phase_rng(
    seed: int, n_shards: int, shard: int, epoch: int, phase: int
) -> np.random.Generator:
    """The stream for one (shard, epoch, phase) cell.

    Children hang off the shard's ``SeedSequence.spawn`` child by
    extending its spawn key with ``(epoch, phase)`` — equivalent to the
    shard sequence spawning its own grandchildren, but stateless, so any
    process can derive any cell without coordination.
    """
    root = np.random.SeedSequence(seed)
    shard_seq = root.spawn(n_shards)[shard]
    cell = np.random.SeedSequence(
        entropy=shard_seq.entropy,
        spawn_key=tuple(shard_seq.spawn_key) + (int(epoch), int(phase)),
    )
    return np.random.default_rng(cell)


# ----------------------------------------------------------------------
# Activity model: the heavy-tailed per-agent traffic prior
# ----------------------------------------------------------------------

# Spawn-key domain for the activity stream — disjoint from the per-shard
# children that `shard_phase_rng` derives (those use spawn_key (shard,)
# with shard < n_shards <= n_agents; this uses a large fixed constant).
_ACTIVITY_DOMAIN = 0x5AC7
ACTIVITY_BLOCKS = 64


def activity_weights(
    seed: int, n_agents: int, n_blocks: int = ACTIVITY_BLOCKS
) -> np.ndarray:
    """Per-agent integer activity weights, heavy-tailed and contiguous.

    Real metaverse traffic is Zipf-shaped — a few communities generate
    most of the interaction volume — and *spatially correlated*: hot
    agents cluster (guilds, venues, flash crowds), they are not sprinkled
    uniformly over the index space.  This model captures both: the agent
    range splits into ``n_blocks`` contiguous blocks, each block drawing
    a Zipf-ranked multiplier (``1 + 99 // (1 + rank)``: the hottest block
    is 100x the coldest) from a seeded permutation.  Equal-range shard
    plans land unlucky shards on hot blocks and measure real skew;
    contiguous *weighted* plans can still balance because the weights are
    blockwise-constant.

    Pure function of ``(seed, n_agents, n_blocks)``.  Returns an int64
    array of length ``n_agents`` with every entry >= 1.
    """
    if n_agents < 1:
        raise ValueError(f"n_agents must be >= 1, got {n_agents}")
    blocks = max(1, min(int(n_blocks), n_agents))
    seq = np.random.SeedSequence(
        entropy=seed, spawn_key=(_ACTIVITY_DOMAIN,)
    )
    rng = np.random.default_rng(seq)
    ranks = rng.permutation(blocks)
    multipliers = (1 + 99 // (1 + ranks)).astype(np.int64)
    sizes = split_weighted(n_agents, [1] * blocks)
    return np.repeat(multipliers, sizes)


def weighted_boundaries(
    weights: Sequence[int], n_shards: int
) -> Tuple[int, ...]:
    """Contiguous cut points giving each shard ~equal total weight.

    Returns an ``n_shards``-tuple of exclusive upper bounds
    ``(hi_0, hi_1, ..., n_agents)``: shard ``s`` owns
    ``[hi_{s-1}, hi_s)``.  The cuts are placed where the running weight
    mass crosses the largest-remainder targets from
    :func:`split_weighted`, then clamped so every shard keeps at least
    one agent.  Pure integer arithmetic — a pure function of
    ``(weights, n_shards)``.
    """
    w = np.asarray(weights, dtype=np.int64)
    n = int(w.shape[0])
    if n < 1:
        raise ValueError("weights must be non-empty")
    if not 1 <= n_shards <= n:
        raise ValueError(
            f"n_shards must be in [1, {n}], got {n_shards}"
        )
    if (w < 0).any():
        raise ValueError("weights must be >= 0")
    total = int(w.sum())
    if total <= 0:
        w = np.ones(n, dtype=np.int64)
        total = n
    masses = split_weighted(total, [1] * n_shards)
    targets = np.cumsum(masses[:-1])
    cum = np.cumsum(w)
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds: List[int] = []
    prev = 0
    for k, cut in enumerate(cuts):
        lo_ok = prev + 1
        hi_ok = n - (n_shards - 1 - k)
        c = int(min(max(int(cut), lo_ok), hi_ok))
        bounds.append(c)
        prev = c
    bounds.append(n)
    return tuple(bounds)


# ----------------------------------------------------------------------
# Cost model: deterministic per-op units for profiling shard cost
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CostModel:
    """Integer cost units per substrate operation.

    Profiled shard costs must never come from wall-clock measurements —
    timing noise would leak into the next epoch's boundaries and break
    byte-identity across worker counts.  Instead the planner charges a
    fixed unit price per *observed op count* (op counts are themselves
    deterministic), so the profile is a pure function of the run.  Only
    the ratios matter; the absolute scale cancels in the apportionment.
    """

    # Ratios calibrated offline against measured per-op phase seconds
    # (benchmarks/scaling.py balance tier); deterministic constants, so
    # every worker count prices an epoch identically.
    tx: int = 20  # ledger: sig-check + nonce + balance + tx-id hash
    rating: int = 3  # reputation accumulate
    report: int = 3  # moderation report row
    vote: int = 1  # ballot record
    interaction: int = 1  # moderation classifier row (batched)
    frame: int = 3  # biometric frame: consent + budget predict
    cascade: int = 2  # per member reached in cascade rounds

    def as_dict(self) -> Dict[str, int]:
        return {
            "tx": self.tx,
            "rating": self.rating,
            "report": self.report,
            "vote": self.vote,
            "interaction": self.interaction,
            "frame": self.frame,
            "cascade": self.cascade,
        }


DEFAULT_COST_MODEL = CostModel()

# Relative blend weights: activity prior vs observed cost profile.  The
# two live in unrelated units (abstract activity mass vs cost-model
# units), so the blend cross-normalizes each side by the other's total
# mass — only this ratio matters, never the absolute scales.  Observed
# cost dominates 3:1 once available: it is the deterministic ground
# truth of where last epoch's work landed, the prior only smooths
# agents that happened to draw nothing.
PRIOR_WEIGHT = 1
OBSERVED_WEIGHT = 3


def blend_profile(
    prior: np.ndarray,
    observed: Optional[np.ndarray],
    prior_weight: int = PRIOR_WEIGHT,
    observed_weight: int = OBSERVED_WEIGHT,
) -> np.ndarray:
    """Blend the activity prior with last epoch's observed cost units.

    ``prior * (prior_weight * mass(observed)) + observed *
    (observed_weight * mass(prior))`` — the cross-scaling makes the mix
    scale-free, so a population change or a cost-model retune cannot
    silently shift the prior/observed balance.  Degenerate masses fall
    back to whichever profile carries signal.  Pure function of its
    arguments (both are deterministic), int64 out.
    """
    p = np.asarray(prior, dtype=np.int64)
    if observed is None:
        return p.copy()
    o = np.asarray(observed, dtype=np.int64)
    p_mass = int(p.sum())
    o_mass = int(o.sum())
    if o_mass <= 0:
        return p.copy()
    if p_mass <= 0:
        return o.copy()
    return p * (int(prior_weight) * o_mass) + o * (int(observed_weight) * p_mass)


# ----------------------------------------------------------------------
# Auto-tuned shard counts
# ----------------------------------------------------------------------

AUTO_CHUNKS_PER_WORKER = 4  # oversplit factor: stealable slack per worker
AUTO_MIN_OPS_PER_SHARD = 250  # below this, per-task overhead dominates
AUTO_MAX_SHARDS = 64


def auto_shard_count(
    n_agents: int, workers: int, ops_per_epoch: int
) -> Tuple[int, Dict[str, int]]:
    """Pick ``n_shards`` from worker count and per-epoch op volume.

    Policy: oversplit to ``AUTO_CHUNKS_PER_WORKER`` shards per worker so
    the stealing layer has slack to rebalance, but never shard so finely
    that a shard carries fewer than ``AUTO_MIN_OPS_PER_SHARD`` ops
    (per-task pickling overhead would dominate), never fewer shards than
    workers (idle cores), and never more than ``AUTO_MAX_SHARDS`` or
    ``n_agents``.  Returns ``(n_shards, decision)`` where ``decision``
    records every input and intermediate so the choice is auditable in
    the run's decision trace.

    Pure function of its arguments.  Note the result *does* depend on
    ``workers`` — callers opting into ``n_shards="auto"`` trade the
    cross-worker-count byte-identity of a pinned shard count for a
    hardware-shaped one (still byte-identical between runs with the same
    ``(seed, workers)``).
    """
    if n_agents < 1:
        raise ValueError(f"n_agents must be >= 1, got {n_agents}")
    w = max(1, int(workers))
    oversplit = AUTO_CHUNKS_PER_WORKER * w
    by_ops = max(1, int(ops_per_epoch) // AUTO_MIN_OPS_PER_SHARD)
    chosen = max(w, min(oversplit, by_ops))
    chosen = max(1, min(chosen, int(n_agents), AUTO_MAX_SHARDS))
    decision = {
        "n_agents": int(n_agents),
        "workers": w,
        "ops_per_epoch": int(ops_per_epoch),
        "chunks_per_worker": AUTO_CHUNKS_PER_WORKER,
        "min_ops_per_shard": AUTO_MIN_OPS_PER_SHARD,
        "max_shards": AUTO_MAX_SHARDS,
        "oversplit_target": oversplit,
        "ops_ceiling": by_ops,
        "n_shards": chosen,
    }
    return chosen, decision


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of ``n_agents`` into ``n_shards``.

    Shard ``s`` owns the contiguous agent-index range
    ``[lo(s), hi(s))``.  With ``boundaries=None`` the ranges are equal
    (the first ``n_agents % n_shards`` shards one agent larger); with an
    explicit ``boundaries`` tuple (exclusive upper bounds, strictly
    increasing, last equal to ``n_agents``) the ranges are cost-weighted
    cuts from :func:`weighted_boundaries`.  ``n_members`` bounds the DAO
    electorate (member indices are ``[0, n_members)`` — a *prefix* of
    the population, so a shard's member range is the overlap of its
    range with that prefix).  ``hot_stride`` spaces the privacy-hot
    subjects (agent indices ``0, stride, 2*stride, ...``) so every shard
    owns its share of hot subjects — privacy budgets stay shard-local by
    construction.

    ``boundaries`` deliberately does **not** feed the random streams:
    ``rng(shard, epoch, phase)`` depends only on
    ``(seed, n_shards, shard, epoch, phase)``, so replanning boundaries
    between epochs moves *which agents* a stream's ops land on without
    invalidating the stream derivation itself.
    """

    seed: int
    n_agents: int
    n_shards: int
    n_members: int
    hot_stride: int
    boundaries: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.n_agents < 1:
            raise ValueError(f"n_agents must be >= 1, got {self.n_agents}")
        if not 1 <= self.n_shards <= self.n_agents:
            raise ValueError(
                f"n_shards must be in [1, n_agents], got {self.n_shards}"
            )
        if not 0 <= self.n_members <= self.n_agents:
            raise ValueError(
                f"n_members must be in [0, n_agents], got {self.n_members}"
            )
        if self.hot_stride < 1:
            raise ValueError(f"hot_stride must be >= 1, got {self.hot_stride}")
        if self.boundaries is not None:
            b = tuple(int(x) for x in self.boundaries)
            if len(b) != self.n_shards:
                raise ValueError(
                    f"boundaries must have n_shards={self.n_shards} entries, "
                    f"got {len(b)}"
                )
            if b[-1] != self.n_agents:
                raise ValueError(
                    f"last boundary must equal n_agents={self.n_agents}, "
                    f"got {b[-1]}"
                )
            prev = 0
            for x in b:
                if x <= prev:
                    raise ValueError(
                        f"boundaries must be strictly increasing and leave "
                        f"every shard non-empty, got {b}"
                    )
                prev = x
            object.__setattr__(self, "boundaries", b)

    # ------------------------------------------------------------------
    # Partition geometry
    # ------------------------------------------------------------------
    def range_of(self, shard: int) -> Tuple[int, int]:
        """Agent-index range ``[lo, hi)`` owned by ``shard``."""
        self._check_shard(shard)
        if self.boundaries is not None:
            lo = self.boundaries[shard - 1] if shard > 0 else 0
            return lo, self.boundaries[shard]
        base, rem = divmod(self.n_agents, self.n_shards)
        lo = shard * base + min(shard, rem)
        hi = lo + base + (1 if shard < rem else 0)
        return lo, hi

    def size_of(self, shard: int) -> int:
        lo, hi = self.range_of(shard)
        return hi - lo

    def shard_of(self, agent_index: int) -> int:
        """The shard owning ``agent_index``."""
        if not 0 <= agent_index < self.n_agents:
            raise ValueError(
                f"agent_index must be in [0, {self.n_agents}), got {agent_index}"
            )
        if self.boundaries is not None:
            return bisect.bisect_right(self.boundaries, agent_index)
        base, rem = divmod(self.n_agents, self.n_shards)
        boundary = rem * (base + 1)
        if agent_index < boundary:
            return agent_index // (base + 1)
        return rem + (agent_index - boundary) // base

    def member_range_of(self, shard: int) -> Tuple[int, int]:
        """The shard's overlap with the DAO electorate prefix."""
        lo, hi = self.range_of(shard)
        return min(lo, self.n_members), min(hi, self.n_members)

    def hot_subjects_of(self, shard: int) -> List[int]:
        """Agent indices of the shard's privacy-hot subjects (sorted)."""
        lo, hi = self.range_of(shard)
        first = ((lo + self.hot_stride - 1) // self.hot_stride) * self.hot_stride
        return list(range(first, hi, self.hot_stride))

    def with_boundaries(
        self, boundaries: Optional[Tuple[int, ...]]
    ) -> "ShardPlan":
        """This plan with different cut points (streams unchanged)."""
        return ShardPlan(
            seed=self.seed,
            n_agents=self.n_agents,
            n_shards=self.n_shards,
            n_members=self.n_members,
            hot_stride=self.hot_stride,
            boundaries=boundaries,
        )

    # ------------------------------------------------------------------
    # Work splitting
    # ------------------------------------------------------------------
    def count_for(self, total: int, shard: int) -> int:
        """Shard's slice of ``total`` per-epoch operations.

        Quota split mirrors an *equal* agent split: ``total // n_shards``
        each, remainder to the lowest shard ids.  Sums to ``total``
        exactly.  Weighted plans instead apportion quotas with
        :func:`split_weighted` over per-shard activity mass.
        """
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self._check_shard(shard)
        base, rem = divmod(total, self.n_shards)
        return base + (1 if shard < rem else 0)

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def rng(self, shard: int, epoch: int, phase: int) -> np.random.Generator:
        """Stream for one (shard, epoch, phase) cell of this plan."""
        self._check_shard(shard)
        return shard_phase_rng(self.seed, self.n_shards, shard, epoch, phase)

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard must be in [0, {self.n_shards}), got {shard}"
            )
