"""Shard planning: deterministic partition of a seeded society.

The population-scale workload serves "millions of users" (the paper's
framing); one process cannot.  A :class:`ShardPlan` partitions the
``n_agents`` synthetic society into ``n_shards`` contiguous index
ranges, each with its own family of random streams, so shard-local
substrate work (transaction admission, trust accumulation, abuse
classification, privacy charging, cascade rounds) can run anywhere —
inline, or on any number of worker processes — and still reproduce the
exact same bytes.

Determinism contract
--------------------
* The partition is a pure function of ``(n_agents, n_shards)``:
  contiguous ranges, remainder spread over the lowest shard ids.
* Randomness is rooted in ``numpy.random.SeedSequence(seed)``; each
  shard owns the child sequence ``root.spawn(n_shards)[shard]``, and
  every *(epoch, phase)* of a shard derives a grandchild by extending
  the shard's ``spawn_key`` — so streams depend only on
  ``(seed, shard, epoch, phase)``, never on which process runs them or
  how many workers exist.
* Nothing here reads the clock, the host, or global state.

The plan is a small frozen dataclass of ints, cheap to pickle into
every worker task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["Phase", "ShardPlan", "shard_phase_rng", "split_weighted"]


def split_weighted(total: int, weights: List[int]) -> List[int]:
    """Split ``total`` units proportionally to integer ``weights``.

    Largest-remainder apportionment in pure integer arithmetic: floors
    first, then the leftover units go to the largest fractional parts
    (ties to the lowest index).  Deterministic, and the parts always sum
    to ``total``.  Used to spread e.g. ballot quotas over shards in
    proportion to how much electorate each shard actually owns.

    Weights must be non-negative: a negative weight would silently
    produce a negative quota (``split_weighted(10, [-1, 3]) == [-5, 15]``
    before this guard), which downstream load generators would feed into
    range()/array sizing as a nonsense per-shard count.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    for weight in weights:
        if weight < 0:
            raise ValueError(f"weights must be >= 0, got {weight}")
    weight_sum = sum(weights)
    if weight_sum <= 0:
        return [0] * len(weights)
    parts = [total * w // weight_sum for w in weights]
    remainders = [total * w % weight_sum for w in weights]
    leftover = total - sum(parts)
    for i in sorted(
        range(len(weights)), key=lambda j: (-remainders[j], j)
    )[:leftover]:
        parts[i] += 1
    return parts


class Phase:
    """Stable phase indices for per-(shard, epoch, phase) streams.

    These are part of the determinism contract: renumbering a phase
    changes every derived stream, so new phases must append.
    """

    TRANSACTIONS = 0
    RATINGS = 1
    REPORTS = 2
    VOTES = 3
    INTERACTIONS = 4
    FRAMES = 5
    CASCADE = 6
    # Per-shard, epoch-independent stream (social subgraph topology).
    GRAPH = 7


def shard_phase_rng(
    seed: int, n_shards: int, shard: int, epoch: int, phase: int
) -> np.random.Generator:
    """The stream for one (shard, epoch, phase) cell.

    Children hang off the shard's ``SeedSequence.spawn`` child by
    extending its spawn key with ``(epoch, phase)`` — equivalent to the
    shard sequence spawning its own grandchildren, but stateless, so any
    process can derive any cell without coordination.
    """
    root = np.random.SeedSequence(seed)
    shard_seq = root.spawn(n_shards)[shard]
    cell = np.random.SeedSequence(
        entropy=shard_seq.entropy,
        spawn_key=tuple(shard_seq.spawn_key) + (int(epoch), int(phase)),
    )
    return np.random.default_rng(cell)


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of ``n_agents`` into ``n_shards``.

    Shard ``s`` owns the contiguous agent-index range
    ``[lo(s), hi(s))``; the first ``n_agents % n_shards`` shards are one
    agent larger.  ``n_members`` bounds the DAO electorate (member
    indices are ``[0, n_members)`` — a *prefix* of the population, so a
    shard's member range is the overlap of its range with that prefix).
    ``hot_stride`` spaces the privacy-hot subjects (agent indices
    ``0, stride, 2*stride, ...``) so every shard owns its share of hot
    subjects — privacy budgets stay shard-local by construction.
    """

    seed: int
    n_agents: int
    n_shards: int
    n_members: int
    hot_stride: int

    def __post_init__(self) -> None:
        if self.n_agents < 1:
            raise ValueError(f"n_agents must be >= 1, got {self.n_agents}")
        if not 1 <= self.n_shards <= self.n_agents:
            raise ValueError(
                f"n_shards must be in [1, n_agents], got {self.n_shards}"
            )
        if not 0 <= self.n_members <= self.n_agents:
            raise ValueError(
                f"n_members must be in [0, n_agents], got {self.n_members}"
            )
        if self.hot_stride < 1:
            raise ValueError(f"hot_stride must be >= 1, got {self.hot_stride}")

    # ------------------------------------------------------------------
    # Partition geometry
    # ------------------------------------------------------------------
    def range_of(self, shard: int) -> Tuple[int, int]:
        """Agent-index range ``[lo, hi)`` owned by ``shard``."""
        self._check_shard(shard)
        base, rem = divmod(self.n_agents, self.n_shards)
        lo = shard * base + min(shard, rem)
        hi = lo + base + (1 if shard < rem else 0)
        return lo, hi

    def size_of(self, shard: int) -> int:
        lo, hi = self.range_of(shard)
        return hi - lo

    def shard_of(self, agent_index: int) -> int:
        """The shard owning ``agent_index``."""
        if not 0 <= agent_index < self.n_agents:
            raise ValueError(
                f"agent_index must be in [0, {self.n_agents}), got {agent_index}"
            )
        base, rem = divmod(self.n_agents, self.n_shards)
        boundary = rem * (base + 1)
        if agent_index < boundary:
            return agent_index // (base + 1)
        return rem + (agent_index - boundary) // base

    def member_range_of(self, shard: int) -> Tuple[int, int]:
        """The shard's overlap with the DAO electorate prefix."""
        lo, hi = self.range_of(shard)
        return min(lo, self.n_members), min(hi, self.n_members)

    def hot_subjects_of(self, shard: int) -> List[int]:
        """Agent indices of the shard's privacy-hot subjects (sorted)."""
        lo, hi = self.range_of(shard)
        first = ((lo + self.hot_stride - 1) // self.hot_stride) * self.hot_stride
        return list(range(first, hi, self.hot_stride))

    # ------------------------------------------------------------------
    # Work splitting
    # ------------------------------------------------------------------
    def count_for(self, total: int, shard: int) -> int:
        """Shard's slice of ``total`` per-epoch operations.

        Quota split mirrors the agent split: ``total // n_shards`` each,
        remainder to the lowest shard ids.  Sums to ``total`` exactly.
        """
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self._check_shard(shard)
        base, rem = divmod(total, self.n_shards)
        return base + (1 if shard < rem else 0)

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def rng(self, shard: int, epoch: int, phase: int) -> np.random.Generator:
        """Stream for one (shard, epoch, phase) cell of this plan."""
        self._check_shard(shard)
        return shard_phase_rng(self.seed, self.n_shards, shard, epoch, phase)

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard must be in [0, {self.n_shards}), got {shard}"
            )
